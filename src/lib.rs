//! # OrpheusDB in Rust — effective data versioning for collaborative data analytics
//!
//! This crate is the facade of a workspace that reproduces Silu Huang's
//! dissertation *"Effective Data Versioning for Collaborative Data
//! Analytics"* (UIUC 2019; OrpheusDB, VLDB'17). It re-exports the public
//! APIs of each subsystem:
//!
//! * [`relstore`] — the embedded relational storage engine substrate,
//! * [`benchgen`] — the SCI/CUR versioning benchmark generators,
//! * [`orpheus`] ([`orpheus_core`]) — CVDs, data models, checkout/commit,
//! * [`partition`] — the LyreSplit partition optimizer and baselines,
//! * [`vquel`] — the generalized versioning query language,
//! * [`deltastore`] — the compact delta-based storage engine (Chapter 7),
//! * [`provenance`] — lineage inference for untracked repositories,
//! * [`orpheus_server`] — the multi-session TCP front end (snapshot-
//!   isolated readers, group-commit writers).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use benchgen;
pub use deltastore;
pub use obs;
pub use orpheus_core as orpheus;
pub use orpheus_core;
pub use orpheus_server;
pub use partition;
pub use provenance;
pub use relstore;
pub use vquel;
