//! The OrpheusDB command-line interface (§3.3): an interactive shell over
//! the middleware, in the spirit of the SIGMOD'17 demo — plus the network
//! front end (`serve`) and its line client (`client`).
//!
//! ```text
//! cargo run --release
//! orpheus> create_user alice
//! orpheus> config alice
//! orpheus> init mydata -f data.csv -s id:int,name:text,score:int -k id
//! orpheus> checkout mydata -v 0 -t work
//! orpheus> commit -t work -m first pass
//! orpheus> run SELECT vid, count(*) FROM CVD mydata GROUP BY vid
//! orpheus> optimize mydata -g 2.0
//! ```
//!
//! Multi-session mode:
//!
//! ```text
//! orpheusdb serve --port 7077 --data-dir ./data     # one shared engine
//! orpheusdb client --port 7077 --user alice         # N of these
//! ```

use orpheusdb::orpheus::{commands, CommandOutput, OrpheusDb};
use orpheusdb::orpheus_server::{self, EngineConfig, ServerConfig};
use std::io::{BufRead, Write};

fn print_table(t: &orpheusdb::orpheus::query::QueryResult) {
    let names: Vec<&str> = t.schema.columns().iter().map(|c| c.name.as_str()).collect();
    println!("{}", names.join(" | "));
    println!("{}", "-".repeat(names.join(" | ").len().max(8)));
    for row in t.rows.iter().take(50) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    if t.rows.len() > 50 {
        println!("… ({} rows total)", t.rows.len());
    }
}

fn show(out: CommandOutput) {
    match out {
        CommandOutput::Message(m) => println!("{m}"),
        CommandOutput::Version(v) => println!("committed {v}"),
        CommandOutput::Listing(l) => {
            for item in l {
                println!("{item}");
            }
        }
        CommandOutput::Table(t) => print_table(&t),
        CommandOutput::Csv(c) => print!("{c}"),
    }
}

/// `init <cvd> -f <path.csv> -s <schema-spec> -k <pk[,pk…]>` — the one
/// command that touches the filesystem, handled in the CLI rather than the
/// library.
fn handle_init(db: &mut OrpheusDb, line: &str) -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<&str> = line.split_whitespace().collect();
    let name = args
        .get(1)
        .ok_or("usage: init <cvd> -f <csv> -s <schema> -k <pk>")?;
    let flag = |f: &str| -> Option<&str> {
        args.iter()
            .position(|&a| a == f)
            .and_then(|i| args.get(i + 1).copied())
    };
    let path = flag("-f").ok_or("init needs -f <csv path>")?;
    let spec = flag("-s").ok_or("init needs -s <schema spec>")?;
    let pk: Vec<String> = flag("-k")
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_default();
    let schema = commands::parse_schema_spec(spec)?;
    let csv = std::fs::read_to_string(path)?;
    let rows = commands::from_csv(&schema, &csv)?;
    let v0 = db.init_cvd(name, schema, pk, rows)?;
    println!("initialized {name} at {v0} ({path})");
    Ok(())
}

fn help() {
    println!(
        "commands:\n  \
         create_user <name> | config <name> | whoami\n  \
         init <cvd> -f <csv> -s <name:type,…> [-k pk,…]\n  \
         checkout <cvd> -v <vid…> -t <table>\n  \
         commit -t <table> -m <message…>\n  \
         diff <cvd> -v <a> <b>\n  \
         run <SELECT … FROM VERSION i OF CVD c | SELECT vid, agg(col) FROM CVD c GROUP BY vid>\n  \
         optimize <cvd> [-g <gamma>]\n  \
         plan_storage <cvd> [-b <factor>]   (materialization plan under a storage budget)\n  \
         explain analyze [--json] <query>   (instrumented plan: estimated vs actual)\n  \
         stats [reset]   (buffer-pool I/O counters)\n  \
         metrics [--json|reset]   (counters, gauges, latency histograms)\n  \
         spans [--json|reset]     (aggregated trace-span tree)\n  \
         trace dump [--json]      (per-request event journal; --json = Chrome trace JSONL)\n  \
         trace reset              (clear the event journal)\n  \
         checkpoint      (flush dirty pages; atomic when --data-dir is set)\n  \
         recover         (replay the write-ahead log, as after a crash)\n  \
         threads [n]     (show or set morsel workers; 1 = sequential plans)\n  \
         log <cvd> | ls | drop <cvd> | help | quit\n\
         modes:\n  \
         orpheusdb                      interactive single-session shell\n  \
         orpheusdb serve --port <p> [--data-dir <d>] [--threads <n>] [--workers <n>] [--admission <n>]\n  \
         orpheusdb client --port <p> [--user <name>]   (extra: pin/unpin <cvd> for snapshot reads)\n\
         storage flags (any mode):\n  \
         --page-format <flat|delta>  tuple codec for new tables (delta: varint + bitpacked arrays + dict)\n  \
         --mat-budget <factor>       materialization budget as a multiple of minimum storage (≥ 1.0)\n\
         env:\n  \
         ORPHEUS_TRACE_SAMPLE=<n>   journal 1-in-n requests (default 1; 0 disables the journal)\n  \
         ORPHEUS_SLOW_MS=<n>        slow-query log threshold in ms (default 100; 0 logs every command)\n  \
         ORPHEUS_PAGE_FORMAT=<f>    flat | delta — same as --page-format\n  \
         ORPHEUS_MAT_BUDGET=<f>     same as --mat-budget (default 2.0)"
    );
}

/// Print a usage error and exit non-zero. Bad flags must never fall
/// through to a half-configured process.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The value of `flag`, if present. A flag with a missing value (end of
/// argv, or another `--flag` where the value should be) is a hard error —
/// `--threads --data-dir x` must not silently ignore `--threads`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v),
        _ => fail(&format!("{flag} needs a value")),
    }
}

/// Parse `flag` as a count with a minimum (e.g. `--threads`, min 1).
fn count_flag(args: &[String], flag: &str, min: usize) -> Option<usize> {
    let raw = flag_value(args, flag)?;
    match raw.parse::<usize>() {
        Ok(n) if n >= min => Some(n),
        _ => fail(&format!(
            "invalid {flag} value: {raw} (expected an integer ≥ {min})"
        )),
    }
}

/// Parse `--port`. `allow_zero` is for `serve`, where 0 means "pick a
/// free port and print it".
fn port_flag(args: &[String], allow_zero: bool) -> Option<u16> {
    let raw = flag_value(args, "--port")?;
    match raw.parse::<u16>() {
        Ok(0) if !allow_zero => fail("invalid --port value: 0 (expected 1..=65535)"),
        Ok(p) => Some(p),
        Err(_) => fail(&format!(
            "invalid --port value: {raw} (expected an integer in 0..=65535)"
        )),
    }
}

/// `--data-dir <dir>`: open a durable instance (page file + write-ahead
/// log in `dir`) instead of the default in-memory one.
/// `--threads <n>`: morsel workers for checkout and version queries.
/// Defaults to the machine's available cores; `--threads 1` reproduces the
/// sequential engine's plans bit-for-bit.
fn open_db(args: &[String]) -> OrpheusDb {
    let mut db = match flag_value(args, "--data-dir") {
        Some(dir) => match OrpheusDb::open_durable(dir, 512) {
            Ok((db, report)) => {
                if report.did_work() {
                    println!("crash recovery: {report}");
                }
                println!("durable store at {dir} (write-ahead logged)");
                db
            }
            Err(e) => {
                eprintln!("cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => OrpheusDb::new(),
    };
    match count_flag(args, "--threads", 1) {
        Some(n) => db.set_threads(n),
        // No flag and no ORPHEUS_THREADS override: use every core.
        None if std::env::var_os("ORPHEUS_THREADS").is_none() => {
            db.set_threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            );
        }
        None => {}
    }
    db
}

/// `serve --port <p> [--data-dir <d>] [--threads <n>] [--workers <n>]
/// [--admission <n>]`: the multi-session front end. Prints the bound
/// address, then serves until killed.
fn serve(args: &[String]) {
    let Some(port) = port_flag(args, true) else {
        fail("serve needs --port <p> (0 picks a free port)");
    };
    let engine = EngineConfig {
        data_dir: flag_value(args, "--data-dir").map(Into::into),
        threads: count_flag(args, "--threads", 1).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        admission_capacity: count_flag(args, "--admission", 1).unwrap_or(64),
        ..EngineConfig::default()
    };
    let workers = count_flag(args, "--workers", 1).unwrap_or(8);
    let server = match orpheus_server::Server::start(ServerConfig {
        port,
        workers,
        engine,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    // Serve until the process is killed; the WAL makes a hard kill safe.
    loop {
        std::thread::park();
    }
}

/// `client --port <p> [--user <name>]`: a line-oriented client. Reads
/// query lines from stdin, prints each reply's canonical rendering.
fn client(args: &[String]) {
    let Some(port) = port_flag(args, false) else {
        fail("client needs --port <p>");
    };
    let user = flag_value(args, "--user").unwrap_or("cli");
    let mut c = match orpheus_server::Client::connect(("127.0.0.1", port), user) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        match c.query(line) {
            Ok(reply) => print!("{}", reply.render()),
            Err(e) => {
                eprintln!("connection lost: {e}");
                std::process::exit(1);
            }
        }
        std::io::stdout().flush().ok();
    }
    if let Err(e) = c.terminate() {
        eprintln!("error closing session: {e}");
        std::process::exit(1);
    }
}

fn shell(args: &[String]) {
    let mut db = open_db(args);
    println!("OrpheusDB shell — type 'help' for commands, 'quit' to exit.");
    let stdin = std::io::stdin();
    loop {
        print!("orpheus> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_whitespace().next() {
            Some("quit") | Some("exit") => break,
            Some("help") => help(),
            Some("init") => {
                if let Err(e) = handle_init(&mut db, line) {
                    eprintln!("error: {e}");
                }
            }
            _ => match db.execute(line) {
                Ok(out) => show(out),
                Err(e) => eprintln!("error: {e}"),
            },
        }
    }
}

fn main() {
    // Validate the env knobs up front, in every mode: a typo'd
    // ORPHEUS_TRACE_SAMPLE, ORPHEUS_SLOW_MS, ORPHEUS_PAGE_FORMAT, or
    // ORPHEUS_MAT_BUDGET must fail loudly (exit 2, like a bad --flag)
    // instead of silently falling back to defaults.
    if let Err(msg) = obs::journal::check_env() {
        fail(&msg);
    }
    if let Err(msg) = relstore::codec::check_env() {
        fail(&msg);
    }
    if let Err(msg) = deltastore::budget::check_env() {
        fail(&msg);
    }
    let args: Vec<String> = std::env::args().collect();
    // The flags are spellings of the env knobs (validated the same way);
    // they must take effect before any database is constructed, so export
    // them for the engine to pick up wherever it opens.
    if let Some(fmt) = flag_value(&args, "--page-format") {
        match relstore::codec::PageFormatKind::parse(fmt) {
            Some(_) => std::env::set_var(relstore::codec::PAGE_FORMAT_ENV, fmt),
            None => fail(&format!(
                "invalid --page-format value: {fmt} (expected flat | delta)"
            )),
        }
    }
    if let Some(b) = flag_value(&args, "--mat-budget") {
        match deltastore::budget::parse_mat_budget(b) {
            Ok(_) => std::env::set_var(deltastore::budget::ENV, b),
            Err(m) => fail(&format!("invalid --mat-budget value: {m}")),
        }
    }
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("help") | Some("--help") => help(),
        Some(mode) if !mode.starts_with("--") => {
            fail(&format!("unknown mode: {mode} (expected serve | client)"))
        }
        _ => shell(&args),
    }
}
