//! The OrpheusDB command-line interface (§3.3): an interactive shell over
//! the middleware, in the spirit of the SIGMOD'17 demo.
//!
//! ```text
//! cargo run --release
//! orpheus> create_user alice
//! orpheus> config alice
//! orpheus> init mydata -f data.csv -s id:int,name:text,score:int -k id
//! orpheus> checkout mydata -v 0 -t work
//! orpheus> commit -t work -m first pass
//! orpheus> run SELECT vid, count(*) FROM CVD mydata GROUP BY vid
//! orpheus> optimize mydata -g 2.0
//! ```

use orpheusdb::orpheus::{commands, CommandOutput, OrpheusDb};
use std::io::{BufRead, Write};

fn print_table(t: &orpheusdb::orpheus::query::QueryResult) {
    let names: Vec<&str> = t.schema.columns().iter().map(|c| c.name.as_str()).collect();
    println!("{}", names.join(" | "));
    println!("{}", "-".repeat(names.join(" | ").len().max(8)));
    for row in t.rows.iter().take(50) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    if t.rows.len() > 50 {
        println!("… ({} rows total)", t.rows.len());
    }
}

fn show(out: CommandOutput) {
    match out {
        CommandOutput::Message(m) => println!("{m}"),
        CommandOutput::Version(v) => println!("committed {v}"),
        CommandOutput::Listing(l) => {
            for item in l {
                println!("{item}");
            }
        }
        CommandOutput::Table(t) => print_table(&t),
        CommandOutput::Csv(c) => print!("{c}"),
    }
}

/// `init <cvd> -f <path.csv> -s <schema-spec> -k <pk[,pk…]>` — the one
/// command that touches the filesystem, handled in the CLI rather than the
/// library.
fn handle_init(db: &mut OrpheusDb, line: &str) -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<&str> = line.split_whitespace().collect();
    let name = args
        .get(1)
        .ok_or("usage: init <cvd> -f <csv> -s <schema> -k <pk>")?;
    let flag = |f: &str| -> Option<&str> {
        args.iter()
            .position(|&a| a == f)
            .and_then(|i| args.get(i + 1).copied())
    };
    let path = flag("-f").ok_or("init needs -f <csv path>")?;
    let spec = flag("-s").ok_or("init needs -s <schema spec>")?;
    let pk: Vec<String> = flag("-k")
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_default();
    let schema = commands::parse_schema_spec(spec)?;
    let csv = std::fs::read_to_string(path)?;
    let rows = commands::from_csv(&schema, &csv)?;
    let v0 = db.init_cvd(name, schema, pk, rows)?;
    println!("initialized {name} at {v0} ({path})");
    Ok(())
}

fn help() {
    println!(
        "commands:\n  \
         create_user <name> | config <name> | whoami\n  \
         init <cvd> -f <csv> -s <name:type,…> [-k pk,…]\n  \
         checkout <cvd> -v <vid…> -t <table>\n  \
         commit -t <table> -m <message…>\n  \
         diff <cvd> -v <a> <b>\n  \
         run <SELECT … FROM VERSION i OF CVD c | SELECT vid, agg(col) FROM CVD c GROUP BY vid>\n  \
         optimize <cvd> [-g <gamma>]\n  \
         explain analyze [--json] <query>   (instrumented plan: estimated vs actual)\n  \
         stats [reset]   (buffer-pool I/O counters)\n  \
         metrics [--json|reset]   (counters, gauges, latency histograms)\n  \
         spans [--json|reset]     (aggregated trace-span tree)\n  \
         checkpoint      (flush dirty pages; atomic when --data-dir is set)\n  \
         recover         (replay the write-ahead log, as after a crash)\n  \
         threads [n]     (show or set morsel workers; 1 = sequential plans)\n  \
         log <cvd> | ls | drop <cvd> | help | quit"
    );
}

/// `--data-dir <dir>`: open a durable instance (page file + write-ahead
/// log in `dir`) instead of the default in-memory one.
/// `--threads <n>`: morsel workers for checkout and version queries.
/// Defaults to the machine's available cores; `--threads 1` reproduces the
/// sequential engine's plans bit-for-bit.
fn open_db() -> OrpheusDb {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .and_then(|i| args.get(i + 1));
    let mut db = match dir {
        Some(dir) => match OrpheusDb::open_durable(dir, 512) {
            Ok((db, report)) => {
                if report.did_work() {
                    println!("crash recovery: {report}");
                }
                println!("durable store at {dir} (write-ahead logged)");
                db
            }
            Err(e) => {
                eprintln!("cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => OrpheusDb::new(),
    };
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1));
    match threads {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => db.set_threads(n),
            _ => {
                eprintln!("invalid --threads value: {n}");
                std::process::exit(1);
            }
        },
        // No flag and no ORPHEUS_THREADS override: use every core.
        None if std::env::var_os("ORPHEUS_THREADS").is_none() => {
            db.set_threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            );
        }
        None => {}
    }
    db
}

fn main() {
    let mut db = open_db();
    println!("OrpheusDB shell — type 'help' for commands, 'quit' to exit.");
    let stdin = std::io::stdin();
    loop {
        print!("orpheus> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_whitespace().next() {
            Some("quit") | Some("exit") => break,
            Some("help") => help(),
            Some("init") => {
                if let Err(e) = handle_init(&mut db, line) {
                    eprintln!("error: {e}");
                }
            }
            _ => match db.execute(line) {
                Ok(out) => show(out),
                Err(e) => eprintln!("error: {e}"),
            },
        }
    }
}
