//! CLI startup validation of the tracing env knobs: an invalid
//! `ORPHEUS_TRACE_SAMPLE` or `ORPHEUS_SLOW_MS` must exit 2 with a clear
//! message naming the variable, in every mode — before any database or
//! socket is opened. Valid values (including the boundary `0`) must not
//! trip the check.

use std::process::{Command, Stdio};

fn orpheusdb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orpheusdb"))
}

/// Run the binary with one env override and empty stdin; return
/// (exit code, stderr).
fn run_with(var: &str, value: &str, args: &[&str]) -> (i32, String) {
    let out = orpheusdb()
        .args(args)
        .env(var, value)
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn invalid_trace_sample_exits_2_with_a_clear_message() {
    for bad in ["nope", "-1", "1.5", ""] {
        let (code, stderr) = run_with("ORPHEUS_TRACE_SAMPLE", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_TRACE_SAMPLE"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn invalid_slow_ms_exits_2_with_a_clear_message() {
    for bad in ["fast", "-5", "10ms"] {
        let (code, stderr) = run_with("ORPHEUS_SLOW_MS", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_SLOW_MS"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
    }
}

#[test]
fn invalid_knobs_fail_before_serve_mode_opens_a_socket() {
    let (code, stderr) = run_with("ORPHEUS_TRACE_SAMPLE", "many", &["serve", "--port", "0"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("ORPHEUS_TRACE_SAMPLE"), "{stderr}");
}

#[test]
fn valid_knobs_reach_the_shell() {
    // `0` is valid for both knobs (journal off; log every command). Empty
    // stdin makes the shell exit immediately with status 0.
    let out = orpheusdb()
        .env("ORPHEUS_TRACE_SAMPLE", "0")
        .env("ORPHEUS_SLOW_MS", "0")
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OrpheusDB shell"), "{stdout}");
}

#[test]
fn help_documents_the_tracing_surface() {
    let out = orpheusdb()
        .arg("help")
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "trace dump [--json]",
        "ORPHEUS_TRACE_SAMPLE",
        "ORPHEUS_SLOW_MS",
    ] {
        assert!(
            stdout.contains(needle),
            "help is missing {needle:?}:\n{stdout}"
        );
    }
}
