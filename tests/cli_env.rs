//! CLI startup validation of the env knobs: an invalid
//! `ORPHEUS_TRACE_SAMPLE`, `ORPHEUS_SLOW_MS`, `ORPHEUS_PAGE_FORMAT`, or
//! `ORPHEUS_MAT_BUDGET` must exit 2 with a clear message naming the
//! variable, in every mode — before any database or socket is opened.
//! Valid values (including boundaries like `0` and `1.0`) must not trip
//! the check.

use std::process::{Command, Stdio};

fn orpheusdb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orpheusdb"))
}

/// Run the binary with one env override and empty stdin; return
/// (exit code, stderr).
fn run_with(var: &str, value: &str, args: &[&str]) -> (i32, String) {
    let out = orpheusdb()
        .args(args)
        .env(var, value)
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn invalid_trace_sample_exits_2_with_a_clear_message() {
    for bad in ["nope", "-1", "1.5", ""] {
        let (code, stderr) = run_with("ORPHEUS_TRACE_SAMPLE", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_TRACE_SAMPLE"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn invalid_slow_ms_exits_2_with_a_clear_message() {
    for bad in ["fast", "-5", "10ms"] {
        let (code, stderr) = run_with("ORPHEUS_SLOW_MS", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_SLOW_MS"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
    }
}

#[test]
fn invalid_page_format_exits_2_with_a_clear_message() {
    for bad in ["zip", "DELTA2", "flat,delta", ""] {
        let (code, stderr) = run_with("ORPHEUS_PAGE_FORMAT", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_PAGE_FORMAT"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn invalid_mat_budget_exits_2_with_a_clear_message() {
    // The bugfix this suite pins: a typo'd budget used to be silently
    // ignored in favour of the default factor.
    for bad in ["nope", "-1", "0", "0.5", "inf", "nan", ""] {
        let (code, stderr) = run_with("ORPHEUS_MAT_BUDGET", bad, &[]);
        assert_eq!(code, 2, "value {bad:?} must exit 2; stderr: {stderr}");
        assert!(
            stderr.contains("ORPHEUS_MAT_BUDGET"),
            "stderr must name the variable for {bad:?}: {stderr}"
        );
        assert!(stderr.starts_with("error: "), "{stderr}");
    }
}

#[test]
fn invalid_storage_flags_exit_2() {
    for (flag, bad) in [("--page-format", "zip"), ("--mat-budget", "0.5")] {
        let out = orpheusdb()
            .args([flag, bad])
            .stdin(Stdio::null())
            .output()
            .expect("spawn orpheusdb");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{flag} {bad}: {stderr}");
        assert!(stderr.contains(flag), "{stderr}");
    }
}

#[test]
fn valid_storage_knobs_reach_the_shell() {
    let out = orpheusdb()
        .args(["--page-format", "delta", "--mat-budget", "1.5"])
        .env("ORPHEUS_PAGE_FORMAT", "delta")
        .env("ORPHEUS_MAT_BUDGET", "1.0")
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OrpheusDB shell"), "{stdout}");
}

#[test]
fn invalid_knobs_fail_before_serve_mode_opens_a_socket() {
    let (code, stderr) = run_with("ORPHEUS_TRACE_SAMPLE", "many", &["serve", "--port", "0"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("ORPHEUS_TRACE_SAMPLE"), "{stderr}");
}

#[test]
fn valid_knobs_reach_the_shell() {
    // `0` is valid for both knobs (journal off; log every command). Empty
    // stdin makes the shell exit immediately with status 0.
    let out = orpheusdb()
        .env("ORPHEUS_TRACE_SAMPLE", "0")
        .env("ORPHEUS_SLOW_MS", "0")
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OrpheusDB shell"), "{stdout}");
}

#[test]
fn help_documents_the_tracing_surface() {
    let out = orpheusdb()
        .arg("help")
        .stdin(Stdio::null())
        .output()
        .expect("spawn orpheusdb");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "trace dump [--json]",
        "ORPHEUS_TRACE_SAMPLE",
        "ORPHEUS_SLOW_MS",
        "plan_storage",
        "--page-format",
        "ORPHEUS_PAGE_FORMAT",
        "ORPHEUS_MAT_BUDGET",
    ] {
        assert!(
            stdout.contains(needle),
            "help is missing {needle:?}:\n{stdout}"
        );
    }
}
