//! Property-based tests on the core invariants, spanning crates:
//! commit/checkout roundtrips, model agreement, LyreSplit's Theorem 5.2
//! bounds, storage-solution validity, delta roundtrips, and CSV I/O.

use orpheusdb::deltastore::{self, GenConfig, GraphShape};
use orpheusdb::orpheus::commands::{from_csv, to_csv};
use orpheusdb::orpheus::cvd::Cvd;
use orpheusdb::orpheus::models::{load_cvd, ModelKind};
use orpheusdb::partition::{lyresplit, Partitioning, VersionTree, Vid};
use orpheusdb::relstore::{Column, DataType, Database, ExecContext, Schema, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random edit histories for CVDs
// ---------------------------------------------------------------------------

/// One user action against the current tip of a branch.
#[derive(Debug, Clone)]
enum Edit {
    Insert(i64),
    Update(usize),
    Delete(usize),
    /// Branch from an earlier version (index modulo history length).
    BranchFrom(usize),
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0..10_000i64).prop_map(Edit::Insert),
        any::<usize>().prop_map(Edit::Update),
        any::<usize>().prop_map(Edit::Delete),
        any::<usize>().prop_map(Edit::BranchFrom),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int64),
        Column::new("x", DataType::Int64),
    ])
}

/// Apply a random script, returning the CVD and every committed row set.
fn build_cvd(script: &[Vec<Edit>]) -> (Cvd, Vec<Vec<Vec<Value>>>) {
    let init: Vec<Vec<Value>> = (0..20i64)
        .map(|i| vec![Value::Int64(i), Value::Int64(i * 2)])
        .collect();
    let (mut cvd, v0) = Cvd::init("prop", schema(), vec!["k".into()], init.clone(), "p").unwrap();
    let mut histories = vec![init];
    let mut next_key = 10_000i64;
    let mut tip = v0;
    for commit in script {
        let mut parent = tip;
        let mut rows: Vec<Vec<Value>> = histories[parent.idx()].clone();
        for e in commit {
            match e {
                Edit::BranchFrom(i) => {
                    parent = Vid((i % histories.len()) as u32);
                    rows = histories[parent.idx()].clone();
                }
                Edit::Insert(x) => {
                    next_key += 1;
                    rows.push(vec![Value::Int64(next_key), Value::Int64(*x)]);
                }
                Edit::Update(i) if !rows.is_empty() => {
                    let i = i % rows.len();
                    let bump = rows[i][1].as_i64().unwrap() + 1;
                    rows[i][1] = Value::Int64(bump);
                }
                Edit::Delete(i) if !rows.is_empty() => {
                    let i = i % rows.len();
                    rows.remove(i);
                }
                _ => {}
            }
        }
        let res = cvd.commit(&[parent], rows.clone(), "prop", "p").unwrap();
        tip = res.vid;
        histories.push(rows);
    }
    (cvd, histories)
}

fn normalize(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by_key(|r| r[0].as_i64().unwrap());
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Committed rows come back exactly from every checkout, on every model.
    #[test]
    fn commit_checkout_roundtrip(script in prop::collection::vec(
        prop::collection::vec(edit_strategy(), 1..6), 1..8)) {
        let (cvd, histories) = build_cvd(&script);
        // Logical roundtrip.
        for (i, rows) in histories.iter().enumerate() {
            let got: Vec<Vec<Value>> = cvd
                .checkout_rows(&[Vid(i as u32)])
                .unwrap()
                .into_iter()
                .map(|(_, r)| r)
                .collect();
            prop_assert_eq!(normalize(got), normalize(rows.clone()));
        }
        // Physical models agree (drop the leading rid column).
        for kind in ModelKind::all() {
            let mut db = Database::new();
            let mut model = kind.build(cvd.name());
            load_cvd(model.as_mut(), &mut db, &cvd).unwrap();
            for (i, rows) in histories.iter().enumerate() {
                let mut ctx = ExecContext::new();
                let got: Vec<Vec<Value>> = model
                    .checkout(&db, &cvd, Vid(i as u32), &mut ctx)
                    .unwrap()
                    .into_iter()
                    .map(|r| r[1..].to_vec())
                    .collect();
                prop_assert_eq!(
                    normalize(got),
                    normalize(rows.clone()),
                    "model {} version {}", kind.name(), i
                );
            }
        }
    }

    /// Eq. 5.4: the CVD's record count equals Σ|R(v)| − Σ w(edges) on its
    /// version tree.
    #[test]
    fn record_count_satisfies_eq_5_4(script in prop::collection::vec(
        prop::collection::vec(edit_strategy(), 1..5), 1..10)) {
        let (cvd, _) = build_cvd(&script);
        let tree = cvd.tree();
        prop_assert_eq!(tree.num_records(), cvd.num_records() as u64 + tree.rhat);
    }
}

// ---------------------------------------------------------------------------
// LyreSplit bounds on random version trees
// ---------------------------------------------------------------------------

/// A random version tree: parent links plus sizes/weights with w ≤ min
/// of both endpoint sizes.
fn tree_strategy() -> impl Strategy<Value = VersionTree> {
    prop::collection::vec((any::<u32>(), 10..500u64, 0..100u64), 1..40).prop_map(|nodes| {
        let n = nodes.len();
        let mut parent = vec![None];
        let mut weight = vec![0u64];
        let mut sizes = vec![nodes[0].1];
        for (i, &(psel, size, wsel)) in nodes.iter().enumerate().skip(1) {
            let p = (psel as usize) % i;
            parent.push(Some(Vid(p as u32)));
            let w = 1 + wsel % sizes[p].min(size);
            weight.push(w);
            sizes.push(size);
        }
        let _ = n;
        VersionTree::from_parts(parent, weight, sizes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.2: LyreSplit is a ((1+δ)^ℓ, 1/δ)-approximation.
    #[test]
    fn lyresplit_theorem_5_2(tree in tree_strategy(), delta in 0.05f64..1.0) {
        let res = lyresplit(&tree, delta);
        // Valid partitioning: every version in exactly one partition.
        prop_assert_eq!(res.partitioning.num_versions(), tree.num_versions());
        let r = tree.num_records() as f64;
        let storage_bound = (1.0 + delta).powi(res.levels as i32) * r;
        prop_assert!(
            res.est_storage as f64 <= storage_bound + 1e-6,
            "storage {} > bound {}", res.est_storage, storage_bound
        );
        let checkout_bound =
            tree.bipartite_edges() as f64 / tree.num_versions() as f64 / delta;
        prop_assert!(
            res.est_checkout_avg <= checkout_bound + 1e-6,
            "checkout {} > bound {}", res.est_checkout_avg, checkout_bound
        );
    }

    /// Partitioning cost summary sits between the extremes of
    /// Observations 5.1/5.2.
    #[test]
    fn partitioning_extremes(tree in tree_strategy(), delta in 0.05f64..1.0) {
        let res = lyresplit(&tree, delta);
        prop_assert!(res.est_storage >= tree.num_records());
        prop_assert!(res.est_storage <= tree.bipartite_edges());
        let floor = tree.bipartite_edges() as f64 / tree.num_versions() as f64;
        prop_assert!(res.est_checkout_avg + 1e-9 >= floor);
    }

    /// Partitioning::from_assignment compaction keeps groups intact.
    #[test]
    fn partition_assignment_compaction(assign in prop::collection::vec(0..20usize, 1..50)) {
        let p = Partitioning::from_assignment(assign.clone());
        prop_assert_eq!(p.num_versions(), assign.len());
        for (i, &a) in assign.iter().enumerate() {
            for (j, &b) in assign.iter().enumerate() {
                prop_assert_eq!(
                    a == b,
                    p.partition_of(Vid(i as u32)) == p.partition_of(Vid(j as u32))
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deltastore invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All solvers produce valid, graph-consistent trees that respect
    /// their constraints, on random instances.
    #[test]
    fn deltastore_solvers_valid(
        versions in 3usize..30,
        seed in 0u64..500,
        directed in any::<bool>(),
        shape_sel in 0usize..4,
    ) {
        let shape = [
            GraphShape::Chain,
            GraphShape::Flat,
            GraphShape::Random,
            GraphShape::Tree { branching: 3 },
        ][shape_sel];
        let g = GenConfig {
            versions,
            shape,
            base_items: 200,
            adds_per_step: 25,
            removes_per_step: 8,
            extra_edges: versions,
            directed,
            decouple_phi: false,
            seed,
        }
        .build();
        let mst = deltastore::p1_min_storage(&g);
        prop_assert!(mst.is_valid());
        prop_assert!(mst.consistent_with(&g));
        let spt = deltastore::p2_min_recreation(&g);
        prop_assert!(spt.is_valid());
        prop_assert!(mst.storage_cost() <= spt.storage_cost());
        prop_assert!(spt.sum_recreation() <= mst.sum_recreation());

        let theta = spt.sum_recreation() * 2;
        let p5 = deltastore::p5_min_storage_sum(&g, theta);
        prop_assert!(p5.is_valid() && p5.consistent_with(&g));
        prop_assert!(p5.sum_recreation() <= theta);
        prop_assert!(p5.storage_cost() >= mst.storage_cost());

        let beta = mst.storage_cost() * 2;
        let p3 = deltastore::p3_min_sum_recreation(&g, beta);
        prop_assert!(p3.is_valid() && p3.consistent_with(&g));
        prop_assert!(p3.storage_cost() <= beta);

        let theta = spt.max_recreation() * 2;
        if let Some(p6) = deltastore::p6_min_storage_max(&g, theta) {
            prop_assert!(p6.is_valid() && p6.consistent_with(&g));
            prop_assert!(p6.max_recreation() <= theta);
        }
    }

    /// Undirected generated instances satisfy the triangle inequality
    /// (Eq. 7.3) by construction.
    #[test]
    fn undirected_triangle_inequality(versions in 3usize..15, seed in 0u64..200) {
        let g = GenConfig {
            versions,
            directed: false,
            extra_edges: versions * 3,
            seed,
            ..GenConfig::default()
        }
        .build();
        prop_assert!(g.satisfies_triangle_inequality());
    }

    /// Delta encode/apply/reverse roundtrip for arbitrary item sets.
    #[test]
    fn delta_roundtrip(
        a in prop::collection::btree_set(0u64..1000, 0..200),
        b in prop::collection::btree_set(0u64..1000, 0..200),
    ) {
        let ca = deltastore::VersionContent::new(a.into_iter().collect(), 10);
        let cb = deltastore::VersionContent::new(b.into_iter().collect(), 10);
        let d = deltastore::Delta::between(&ca, &cb);
        prop_assert_eq!(&d.apply(&ca), &cb);
        prop_assert_eq!(&d.reversed().apply(&cb), &ca);
        // Empty delta ⇔ equal contents.
        prop_assert_eq!(d.is_empty(), ca == cb);
    }
}

// ---------------------------------------------------------------------------
// CSV roundtrip
// ---------------------------------------------------------------------------

fn value_strategy(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int64 => any::<i64>().prop_map(Value::Int64).boxed(),
        DataType::Text => "[a-zA-Z0-9 ,\"']{0,12}"
            .prop_map(|s: String| Value::Text(s))
            .boxed(),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// to_csv/from_csv roundtrip with quoting, commas, and empty strings.
    /// (NULLs and empty text both serialize to the empty field; we only
    /// test non-null values here and cover NULL in unit tests.)
    #[test]
    fn csv_roundtrip(rows in prop::collection::vec(
        (value_strategy(DataType::Int64), value_strategy(DataType::Text)), 0..20)) {
        let schema = Schema::new(vec![
            Column::new("n", DataType::Int64),
            Column::new("s", DataType::Text),
        ]);
        let rows: Vec<Vec<Value>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let csv = to_csv(&schema, rows.iter().map(|r| r.as_slice()));
        let parsed = from_csv(&schema, &csv).unwrap();
        // Empty strings read back as NULL; map them for comparison.
        let expect: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|v| match v {
                        Value::Text(s) if s.is_empty() => Value::Null,
                        other => other,
                    })
                    .collect()
            })
            .collect();
        prop_assert_eq!(parsed, expect);
    }

    /// The VQuel lexer and parser never panic on arbitrary input.
    #[test]
    fn vquel_parser_total(input in ".{0,80}") {
        let _ = orpheusdb::vquel::parse(&input);
    }
}
