//! Cross-crate integration tests: the full pipeline from generated
//! benchmark datasets through OrpheusDB's physical models, the partition
//! optimizer, the delta storage engine, VQuel, and lineage inference.

use orpheusdb::benchgen::{generate, DatasetSpec};
use orpheusdb::deltastore;
use orpheusdb::orpheus::cvd::Cvd;
use orpheusdb::orpheus::models::{load_cvd, ModelKind};
use orpheusdb::orpheus::partitioned::PartitionedStore;
use orpheusdb::partition::{lyresplit_for_budget, Vid};
use orpheusdb::provenance;
use orpheusdb::relstore::{Column, DataType, Database, ExecContext, Schema, Value};
use orpheusdb::vquel;

/// Replay a generated dataset into a CVD (same logic the bench harness
/// uses, duplicated here so the integration test stands alone).
fn dataset_to_cvd(d: &orpheusdb::benchgen::VersionedDataset) -> Cvd {
    let mut cols = vec![Column::new("k", DataType::Int64)];
    for i in 1..d.spec.num_attrs {
        cols.push(Column::new(format!("a{i}"), DataType::Int64));
    }
    let to_rows = |v: Vid| -> Vec<Vec<Value>> {
        d.version_records(v)
            .iter()
            .map(|&rid| d.record(rid).iter().map(|&x| Value::Int64(x)).collect())
            .collect()
    };
    let (mut cvd, _) = Cvd::init(
        d.spec.name.clone(),
        Schema::new(cols),
        vec!["k".into()],
        to_rows(Vid(0)),
        "gen",
    )
    .unwrap();
    for v in d.versions().skip(1) {
        let parents: Vec<Vid> = d.graph.parents(v).to_vec();
        cvd.commit(&parents, to_rows(v), "replay", "gen").unwrap();
    }
    cvd
}

#[test]
fn all_models_agree_on_generated_history() {
    for spec in [
        DatasetSpec::sci("SCI_E2E", 60, 8, 12),
        DatasetSpec::cur("CUR_E2E", 60, 8, 12),
    ] {
        let d = generate(&spec);
        let cvd = dataset_to_cvd(&d);
        // Reference record sets per version from the logical CVD.
        let reference: Vec<Vec<i64>> = cvd
            .graph()
            .versions()
            .map(|v| {
                let mut rids: Vec<i64> = cvd
                    .version_records(v)
                    .unwrap()
                    .iter()
                    .map(|r| r.0 as i64)
                    .collect();
                rids.sort_unstable();
                rids
            })
            .collect();
        for kind in ModelKind::all() {
            let mut db = Database::new();
            let mut model = kind.build(cvd.name());
            load_cvd(model.as_mut(), &mut db, &cvd).unwrap();
            for v in cvd.graph().versions() {
                let mut ctx = ExecContext::new();
                let mut got: Vec<i64> = model
                    .checkout(&db, &cvd, v, &mut ctx)
                    .unwrap()
                    .iter()
                    .map(|r| r[0].as_i64().unwrap())
                    .collect();
                got.sort_unstable();
                assert_eq!(
                    got,
                    reference[v.idx()],
                    "{} diverges on {v} of {}",
                    kind.name(),
                    spec.name
                );
            }
        }
    }
}

#[test]
fn partitioned_store_serves_identical_checkouts() {
    let d = generate(&DatasetSpec::sci("SCI_PART", 120, 10, 15));
    let cvd = dataset_to_cvd(&d);
    let res = lyresplit_for_budget(&cvd.tree(), 2 * cvd.num_records() as u64);
    assert!(res.partitioning.num_partitions() >= 1);
    let mut db = Database::new();
    let store = PartitionedStore::build(&mut db, &cvd, res.partitioning).unwrap();
    for v in cvd.graph().versions() {
        let mut ctx = ExecContext::new();
        let mut got: Vec<i64> = store
            .checkout(&db, v, &mut ctx)
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        got.sort_unstable();
        let want: Vec<i64> = cvd
            .version_records(v)
            .unwrap()
            .iter()
            .map(|r| r.0 as i64)
            .collect();
        assert_eq!(got, want, "partitioned checkout diverges on {v}");
    }
    // Storage matches the partitioning's model-level evaluation.
    let expected = store
        .partitioning()
        .evaluate(&cvd.bipartite())
        .storage_records;
    assert_eq!(store.storage_records(&db), expected);
}

#[test]
fn deltastore_plans_storage_for_cvd_versions() {
    // Bridge Chapter 4's CVD to Chapter 7's storage planner: treat each
    // version's rid set as version content and plan delta storage.
    let d = generate(&DatasetSpec::sci("SCI_DELTA", 40, 5, 20));
    let cvd = dataset_to_cvd(&d);
    let contents: Vec<deltastore::VersionContent> = cvd
        .graph()
        .versions()
        .map(|v| {
            deltastore::VersionContent::new(
                cvd.version_records(v)
                    .unwrap()
                    .iter()
                    .map(|r| r.0)
                    .collect(),
                64,
            )
        })
        .collect();
    // Reveal version-graph edges plus materialization of everything.
    let mut pairs = Vec::new();
    for v in cvd.graph().versions() {
        for &p in cvd.graph().parents(v) {
            pairs.push((p.idx() + 1, v.idx() + 1));
        }
    }
    let g = deltastore::delta::graph_from_contents(&contents, &pairs);
    assert!(g.is_connected());
    let mst = deltastore::p1_min_storage(&g);
    assert!(mst.is_valid());
    let all_mat: u64 = contents.iter().map(|c| c.materialized_bytes()).sum();
    // Delta storage must crush full materialization on versioned data.
    assert!(mst.storage_cost() < all_mat / 5);
    // A recreation-bounded plan stays feasible and valid.
    let spt = deltastore::p2_min_recreation(&g);
    let plan = deltastore::p5_min_storage_sum(&g, spt.sum_recreation() * 2);
    assert!(plan.is_valid());
    assert!(plan.sum_recreation() <= spt.sum_recreation() * 2);
    assert!(plan.storage_cost() <= mst.storage_cost() * 3);
}

#[test]
fn vquel_queries_cvd_metadata() {
    // Export a CVD's version graph + metadata into the VQuel conceptual
    // model and query it.
    let d = generate(&DatasetSpec::sci("SCI_VQ", 25, 4, 8));
    let cvd = dataset_to_cvd(&d);
    let mut repo = vquel::Repository::new();
    let author = repo.add_author("gen", "gen@lab");
    let mut vids = Vec::new();
    for meta in cvd.metas() {
        let parents: Vec<usize> = meta.parents.iter().map(|p| p.idx()).collect();
        let v = repo.add_version(
            &format!("v{:02}", meta.vid.0),
            &meta.message,
            meta.commit_t as i64,
            author,
            &parents,
        );
        let rel = repo.add_relation(v, "Data", &["rid"], true);
        for &rid in cvd.version_records(meta.vid).unwrap().iter().take(20) {
            repo.add_record(rel, vec![Value::Int64(rid.0 as i64)], &[]);
        }
        vids.push(v);
    }
    // Every version is found; the root has no ancestors; some version has
    // at least 2 descendants.
    let rs = vquel::execute(
        &repo,
        "range of V is Version retrieve V.commit_id sort by V.creation_ts",
    )
    .unwrap();
    assert_eq!(rs.rows.len(), cvd.num_versions());
    let rs = vquel::execute(
        &repo,
        r#"
        range of V is Version(commit_id = "v00")
        range of D is V.D()
        retrieve unique V.commit_id, count(D)
        "#,
    )
    .unwrap();
    let descendants = rs.rows[0][1].as_i64().unwrap();
    assert_eq!(descendants as usize, cvd.num_versions() - 1);
}

#[test]
fn provenance_recovers_generated_lineage_direction() {
    // Export a few CVD versions as untracked artifacts; inference should
    // link children to ancestors (timestamp-oriented).
    let d = generate(&DatasetSpec::sci("SCI_PROV", 12, 2, 30));
    let cvd = dataset_to_cvd(&d);
    let mut repo = provenance::UntrackedRepository::new();
    for meta in cvd.metas() {
        let rows: Vec<Vec<i64>> = cvd
            .version_records(meta.vid)
            .unwrap()
            .iter()
            .map(|&rid| {
                let r = cvd.record(rid);
                vec![r[0].as_i64().unwrap(), r[1].as_i64().unwrap()]
            })
            .collect();
        repo.add(provenance::Artifact::new(
            format!("v{}.csv", meta.vid.0),
            vec!["k".into(), "a1".into()],
            rows,
            meta.commit_t as i64,
        ));
    }
    let lineage = provenance::infer_lineage(&repo, provenance::InferConfig::default());
    // Every non-root version gets a parent, and the parent is one of its
    // true ancestors in the version graph (siblings can be more similar
    // than the direct parent, which the paper accepts).
    for v in cvd.graph().versions().skip(1) {
        let e = lineage
            .parent_of(v.idx())
            .unwrap_or_else(|| panic!("no parent inferred for {v}"));
        assert!(e.from < v.idx(), "edge must respect timestamps");
    }
}

#[test]
fn online_maintenance_tracks_streamed_dataset() {
    let d = generate(&DatasetSpec::sci("SCI_ONLINE", 150, 15, 10));
    let mut m = orpheusdb::partition::OnlineMaintainer::new(orpheusdb::partition::OnlineConfig {
        gamma_factor: 2.0,
        mu: 1.5,
        delta_star: 0.05,
        check_every: 10,
    });
    for v in d.versions() {
        let parents: Vec<Vid> = d.graph.parents(v).to_vec();
        m.commit(d.version_records(v).to_vec(), &parents);
    }
    assert_eq!(m.num_versions(), 150);
    // Storage respects the budget and Cavg stays within µ of best.
    assert!(m.storage_records() <= 2 * d.num_records() + d.version_records(Vid(149)).len() as u64);
    assert!(m.checkout_avg() <= 1.5 * m.best_checkout_avg() + 1.0);
}
