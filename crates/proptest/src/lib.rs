//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, [`any`],
//! [`Just`](strategy::Just), `prop_oneof!`, `prop::collection::vec`, the
//! `proptest!` test macro with `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, chosen for a hermetic offline build:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim
//!   (every generator is seeded deterministically from the test name and
//!   case index, so failures replay exactly).
//! * **No persistence files** and no environment-variable configuration.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A boxed generator function — the type-erased form of a strategy.
    pub type GenFn<V> = Box<dyn Fn(&mut StdRng) -> V>;

    /// A deterministic value generator.
    pub trait Strategy: Sized {
        type Value: Debug;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn into_fn(self) -> GenFn<Self::Value>
        where
            Self: 'static,
        {
            Box::new(move |rng| self.generate(rng))
        }

        /// Type-erased strategy, for heterogeneous returns.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(self.into_fn())
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<GenFn<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<GenFn<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.random_range(0..self.options.len());
            (self.options[i])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// String literals act as regex-ish string strategies, as in real
    /// proptest. Supported subset: literal chars, `.` (printable ASCII),
    /// `[...]` classes with ranges, `\x` escapes, and the quantifiers
    /// `{n}`, `{m,n}`, `*`, `+`, `?` (unbounded ones capped at 8).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_regexish(self, rng)
        }
    }

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Lit(char),
    }

    fn generate_regexish(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed {} quantifier")
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = rng.random_range(*lo..=*hi);
            for _ in 0..n {
                let c = match atom {
                    Atom::Any => rng.random_range(0x20u8..0x7f) as char,
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.random_range(0..ranges.len())];
                        char::from_u32(rng.random_range(a as u32..=b as u32))
                            .expect("class range spans invalid chars")
                    }
                    Atom::Lit(c) => *c,
                };
                out.push(c);
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                // Macro binds tuple elements to their type-parameter names.
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Internal helper so generated tests can seed their generator.
    pub fn rng_for_case(test_name: &str, case: u64) -> StdRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy for the full domain of `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy for ordered sets with *up to* `size.end - 1` elements
    /// (duplicates generated by the element strategy collapse).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            let mut set = std::collections::BTreeSet::new();
            // Bounded attempts: a narrow element domain may not be able to
            // produce `target` distinct values.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }

    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property invocation (from a `prop_assert*` macro).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub reason: String,
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }
}

/// Path alias so `prop::collection::vec(..)` works as it does with the
/// real crate's prelude.
pub use crate as prop;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::into_fn($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests: each `#[test] fn name(binding in strategy, …)`
/// runs `cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            { $crate::test_runner::ProptestConfig::default() }
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::strategy::rng_for_case(stringify!($name), case);
                let mut inputs = String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    inputs.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($arg),
                        &value
                    ));
                    let $arg = value;
                )+
                // An IIFE gives `prop_assert*` a `?`-compatible scope per case.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = i64> {
        (0..50i64).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_values_hold(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 100, "v was {}", v);
        }

        #[test]
        fn oneof_and_vec(xs in prop::collection::vec(
            prop_oneof![Just(1i64), 5..10i64, (20..30i64, 0..2i64).prop_map(|(a, b)| a + b)],
            0..16,
        )) {
            for x in xs {
                prop_assert!(x == 1 || (5..10).contains(&x) || (20..32).contains(&x));
            }
        }

        #[test]
        fn any_values(a in any::<i64>(), flag in any::<bool>()) {
            let _ = (a, flag);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::strategy::rng_for_case("x", 3);
        let mut b = crate::strategy::rng_for_case("x", 3);
        let s = 0..1000i64;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(v in 0..10i64) {
                prop_assert!(v < 0, "v={} is not negative", v);
            }
        }
        always_fails();
    }
}
