//! # exec-pool — morsel-driven work-stealing worker pool
//!
//! The parallel executor splits work into *morsels* (page ranges, row
//! chunks, partitions) and runs them on a fixed-degree worker pool. This
//! crate is the only place in the workspace allowed to create threads
//! (enforced by `orpheus-lint` rule L007): routing every spawn through
//! the pool means joins, panics, and per-worker accounting can never be
//! forgotten at a call site.
//!
//! Design:
//!
//! * **Fixed degree.** A [`WorkerPool`] is configured with a thread
//!   count once; every [`WorkerPool::run`] call uses at most that many
//!   workers (fewer when there are fewer tasks than threads).
//! * **Scoped workers.** Threads are spawned inside
//!   [`std::thread::scope`] per `run` call, so tasks may borrow from the
//!   caller's stack — the coordinator hands workers references to
//!   build-side hash tables and predicates without `Arc`ing the world.
//!   Spawn cost (~tens of µs) is negligible against the
//!   multi-millisecond scans the pool exists for.
//! * **Owned `Send` payloads.** A task closure may also *own* `Send`
//!   data moved into it — the parallel operators move zero-copy page
//!   leases (`Arc`-backed frame references) into their morsel tasks.
//!   `run` consumes each task exactly once, on exactly one worker, and
//!   drops it there, so a payload's drop side effects (a lease releasing
//!   its frame pin) happen before `run` returns.
//! * **Chunked queues + stealing.** Task indices are dealt to per-worker
//!   queues in contiguous chunks (morsel locality); a worker that drains
//!   its own queue steals from the *back* of a victim's queue, so the
//!   steal takes the work farthest from what the victim touches next.
//! * **Panic-safe joins.** Each task runs under
//!   [`std::panic::catch_unwind`]; the first panic stops the pool and
//!   surfaces as [`PoolError::WorkerPanic`] — the pool never deadlocks
//!   and never aborts the process on a worker panic.
//! * **Deterministic results.** Results are reassembled in task order,
//!   so for pure tasks the output is identical at every thread count —
//!   the property the CI determinism gate checks end to end.
//!
//! Per-run metrics land in an optional [`obs::Registry`] under
//! `exec.pool.*`: total tasks, steals, runs, panics, per-worker task
//! counts (`exec.pool.worker{w}.tasks`), and a task-latency histogram
//! (`exec.pool.task.latency_us`, accumulated per worker off the registry
//! lock and folded in with [`obs::Histogram::merge`]).
//!
//! With an [`obs::Recorder`] attached ([`WorkerPool::with_observability`]),
//! every task also runs under an `exec.pool.task` span re-attached — via
//! the [`obs::TraceCtx`] captured on the submitting thread — to the
//! *submitting request's* trace and tree position, so morsel work done on
//! worker threads shows up under the query's span instead of as a
//! detached root, and journaled task events carry the request's trace id.
//!
//! Besides the scoped [`WorkerPool`], the crate provides
//! [`ServiceThread`]: a *named, long-lived, joined-on-shutdown* thread for
//! subsystems that genuinely need one resident thread (a TCP acceptor, a
//! storage-engine loop). It is the sanctioned L007 escape hatch — the
//! thread still gets a name, a panic-capturing join, and an owner that
//! cannot forget to join it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use obs::TraceCtx;

/// Histogram name for per-task wall-clock latency in microseconds.
const TASK_LATENCY: &str = "exec.pool.task.latency_us";

/// Span name tasks run under when a recorder is attached.
const TASK_SPAN: &str = "exec.pool.task";

/// Errors surfaced by [`WorkerPool::run`] and [`ServiceThread`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A task panicked; the payload's message is preserved.
    WorkerPanic(String),
    /// A task result went missing — a pool invariant was broken.
    Internal(String),
    /// The OS refused to spawn a service thread.
    Spawn(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            PoolError::Internal(msg) => write!(f, "pool invariant broken: {msg}"),
            PoolError::Spawn(msg) => write!(f, "cannot spawn service thread: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Lock a mutex, recovering from poisoning: a panicking task leaves the
/// slot it held in a consistent state (`Option` take/put), and the pool
/// must keep operating to report that panic as an `Err`.
fn locked<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-degree worker pool. Cheap to construct; holds no threads
/// between [`run`](WorkerPool::run) calls.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    threads: usize,
    registry: Option<obs::Registry>,
    recorder: Option<obs::Recorder>,
}

impl WorkerPool {
    /// A pool that uses up to `threads` workers (`0` is treated as `1`).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            registry: None,
            recorder: None,
        }
    }

    /// Like [`new`](WorkerPool::new), with `exec.pool.*` metrics
    /// recorded into `registry` on every run.
    pub fn with_registry(threads: usize, registry: obs::Registry) -> Self {
        WorkerPool {
            threads: threads.max(1),
            registry: Some(registry),
            recorder: None,
        }
    }

    /// Like [`with_registry`](WorkerPool::with_registry), additionally
    /// running every task under an `exec.pool.task` span on `recorder`,
    /// attached to the trace context of the thread that calls
    /// [`run`](WorkerPool::run) — worker subtrees and journal events
    /// re-attach to the submitting request.
    pub fn with_observability(
        threads: usize,
        registry: obs::Registry,
        recorder: obs::Recorder,
    ) -> Self {
        WorkerPool {
            threads: threads.max(1),
            registry: Some(registry),
            recorder: Some(recorder),
        }
    }

    /// Configured parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Degree a run over `tasks` morsels would actually use.
    pub fn degree_for(&self, tasks: usize) -> usize {
        self.threads.min(tasks).max(1)
    }

    /// Run every task, returning results in task order.
    ///
    /// Each task receives the id (0-based) of the worker that ran it.
    /// With one worker (or one task) everything runs inline on the
    /// calling thread — no threads are spawned, so `--threads 1`
    /// executes exactly the code a sequential engine would.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        F: FnOnce(usize) -> T + Send,
        T: Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.degree_for(n);
        if workers == 1 {
            return self.run_inline(tasks);
        }
        // Capture the submitting thread's trace context once, before any
        // worker exists; each task re-opens it as its span parent. The
        // untraced fallback keeps the span-tree shape identical across
        // thread counts (inline and scoped paths wrap tasks the same way).
        let ctx = self
            .recorder
            .as_ref()
            .map(|r| r.current_ctx().unwrap_or_else(|| TraceCtx::from_wire(0)));

        // Task slots: taken exactly once, under the slot's own lock, so a
        // stolen index can never run twice.
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Deal contiguous chunks: worker w owns [w*n/W, (w+1)*n/W).
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
            .collect();
        let stop = AtomicBool::new(false);
        let panic_msg: Mutex<Option<String>> = Mutex::new(None);
        let worker_tasks: Vec<Mutex<u64>> = (0..workers).map(|_| Mutex::new(0)).collect();
        let steals: Mutex<u64> = Mutex::new(0);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let results = &results;
                let queues = &queues;
                let stop = &stop;
                let panic_msg = &panic_msg;
                let worker_tasks = &worker_tasks;
                let steals = &steals;
                let recorder = &self.recorder;
                let registry = &self.registry;
                scope.spawn(move || {
                    let mut ran = 0u64;
                    let mut stolen = 0u64;
                    // Task latencies accumulate into a worker-local
                    // histogram, folded into the registry once per run —
                    // no shared lock on the per-task path.
                    let mut latency = obs::Histogram::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Own queue first (front: preserves chunk order),
                        // then steal from the back of the other queues.
                        let mut idx = locked(&queues[w]).pop_front();
                        if idx.is_none() {
                            for v in 1..workers {
                                let victim = (w + v) % workers;
                                if let Some(i) = locked(&queues[victim]).pop_back() {
                                    idx = Some(i);
                                    stolen += 1;
                                    break;
                                }
                            }
                        }
                        let Some(idx) = idx else { break };
                        let Some(task) = locked(&slots[idx]).take() else {
                            continue;
                        };
                        let started = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| {
                            // The guard closes (and journals its End
                            // event) even when `task` panics: it drops
                            // during the unwind caught just below.
                            let _span = match (recorder, ctx) {
                                (Some(r), Some(c)) => Some(r.enter_with(TASK_SPAN, c)),
                                _ => None,
                            };
                            task(w)
                        })) {
                            Ok(value) => {
                                latency.observe(
                                    started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                                );
                                *locked(&results[idx]) = Some(value);
                                ran += 1;
                            }
                            Err(payload) => {
                                let mut msg = locked(panic_msg);
                                if msg.is_none() {
                                    *msg = Some(panic_message(payload.as_ref()));
                                }
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    *locked(&worker_tasks[w]) += ran;
                    *locked(steals) += stolen;
                    if let Some(reg) = registry {
                        if latency.count() > 0 {
                            reg.merge_histogram(TASK_LATENCY, &latency);
                        }
                    }
                });
            }
        });

        if let Some(msg) = locked(&panic_msg).take() {
            self.record(workers, &worker_tasks, *locked(&steals), true);
            return Err(PoolError::WorkerPanic(msg));
        }
        self.record(workers, &worker_tasks, *locked(&steals), false);
        let mut out = Vec::with_capacity(n);
        for (i, slot) in results.iter().enumerate() {
            match locked(slot).take() {
                Some(v) => out.push(v),
                None => {
                    return Err(PoolError::Internal(format!("task {i} produced no result")));
                }
            }
        }
        Ok(out)
    }

    /// Sequential path: run every task on the calling thread, worker 0.
    fn run_inline<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        F: FnOnce(usize) -> T,
    {
        let ctx = self
            .recorder
            .as_ref()
            .map(|r| r.current_ctx().unwrap_or_else(|| TraceCtx::from_wire(0)));
        let n = tasks.len() as u64;
        let mut out = Vec::with_capacity(tasks.len());
        let mut latency = obs::Histogram::new();
        for task in tasks {
            let started = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| {
                let _span = match (&self.recorder, ctx) {
                    (Some(r), Some(c)) => Some(r.enter_with(TASK_SPAN, c)),
                    _ => None,
                };
                task(0)
            })) {
                Ok(v) => {
                    latency.observe(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    out.push(v);
                }
                Err(payload) => {
                    if let Some(reg) = &self.registry {
                        reg.counter_add("exec.pool.panics", 1);
                        reg.counter_add("exec.pool.runs", 1);
                    }
                    return Err(PoolError::WorkerPanic(panic_message(payload.as_ref())));
                }
            }
        }
        if let Some(reg) = &self.registry {
            reg.counter_add("exec.pool.runs", 1);
            reg.counter_add("exec.pool.tasks", n);
            reg.counter_add("exec.pool.worker0.tasks", n);
            if latency.count() > 0 {
                reg.merge_histogram(TASK_LATENCY, &latency);
            }
        }
        Ok(out)
    }

    fn record(&self, workers: usize, worker_tasks: &[Mutex<u64>], steals: u64, panicked: bool) {
        let Some(reg) = &self.registry else { return };
        reg.counter_add("exec.pool.runs", 1);
        reg.counter_add("exec.pool.steals", steals);
        if panicked {
            reg.counter_add("exec.pool.panics", 1);
        }
        let mut total = 0u64;
        for (w, t) in worker_tasks.iter().enumerate().take(workers) {
            let t = *locked(t);
            total += t;
            reg.counter_add(&format!("exec.pool.worker{w}.tasks"), t);
        }
        reg.counter_add("exec.pool.tasks", total);
    }
}

/// A named, long-lived service thread: the one sanctioned way (lint rule
/// L007) to hold a resident thread for the lifetime of a subsystem —
/// network acceptors, single-threaded engine loops, background daemons.
///
/// Contract:
///
/// * **Named.** The OS thread carries `name`, so stack traces, debuggers,
///   and `/proc` attribute work to the right subsystem.
/// * **Joined on shutdown.** [`join`](ServiceThread::join) blocks until
///   the body returns and surfaces a body panic as
///   [`PoolError::WorkerPanic`]. Dropping the handle also joins (panics
///   are swallowed there — call `join` to observe them), so a running
///   service thread can never be leaked by an early return.
/// * **Cooperative exit.** Because the owner always joins, the body must
///   observe some shutdown signal (a closed channel, an [`AtomicBool`])
///   and return; a body that loops forever turns `join` into a hang,
///   which is a bug at the spawn site, not in the pool.
#[derive(Debug)]
pub struct ServiceThread {
    name: String,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServiceThread {
    /// Spawn `body` on a new thread named `name`.
    pub fn spawn<F>(name: impl Into<String>, body: F) -> Result<Self, PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        let name = name.into();
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(body)
            .map_err(|e| PoolError::Spawn(format!("{name}: {e}")))?;
        Ok(ServiceThread {
            name,
            handle: Some(handle),
        })
    }

    /// The thread's name, as given to [`spawn`](ServiceThread::spawn).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the body has returned (the join would not block).
    pub fn is_finished(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
    }

    /// Block until the body returns. A panicking body surfaces as
    /// [`PoolError::WorkerPanic`] with the panic message and thread name.
    pub fn join(mut self) -> Result<(), PoolError> {
        match self.handle.take() {
            None => Ok(()),
            Some(h) => h.join().map_err(|payload| {
                PoolError::WorkerPanic(format!(
                    "service thread {}: {}",
                    self.name,
                    panic_message(payload.as_ref())
                ))
            }),
        }
    }
}

impl Drop for ServiceThread {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            // Joining on drop keeps the no-leaked-threads invariant even on
            // early-return paths; a panic in the body was either already
            // reported via `join` or is deliberately swallowed here.
            drop(h.join());
        }
    }
}

/// Best-effort panic payload rendering (`&str` and `String` payloads
/// cover everything `panic!`/`assert!` produce).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_task_list_is_a_noop() {
        let pool = WorkerPool::new(4);
        let out: Vec<i32> = pool
            .run(Vec::<Box<dyn FnOnce(usize) -> i32 + Send>>::new())
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..100).map(|i| move |_w: usize| i * 2).collect();
        let out = pool.run(tasks).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline_and_identically() {
        let seq = WorkerPool::new(1);
        let par = WorkerPool::new(8);
        let make = || (0..57).map(|i| move |_w: usize| i * i).collect::<Vec<_>>();
        assert_eq!(seq.run(make()).unwrap(), par.run(make()).unwrap());
    }

    #[test]
    fn more_workers_than_tasks() {
        let pool = WorkerPool::new(16);
        let out = pool
            .run(vec![|w: usize| w < 16, |w: usize| w < 16])
            .unwrap();
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::new(4);
        let chunks: Vec<_> = data.chunks(1000).collect();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|c| {
                let c = *c;
                move |_w: usize| c.iter().sum::<u64>()
            })
            .collect();
        let out = pool.run(tasks).unwrap();
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn owned_send_payloads_are_consumed_and_dropped_by_run() {
        // Models the lease lifetime contract: each task owns a payload
        // whose Drop releases a shared count (like a PageLease unpinning
        // its frame). After `run` returns, every payload must be dropped
        // exactly once — no payload may outlive the run.
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;

        struct Payload {
            live: Arc<AtomicU32>,
        }
        impl Drop for Payload {
            fn drop(&mut self) {
                self.live.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let live = Arc::new(AtomicU32::new(0));
        let tasks: Vec<_> = (0..48u32)
            .map(|i| {
                live.fetch_add(1, Ordering::SeqCst);
                let payload = Payload {
                    live: Arc::clone(&live),
                };
                move |_w: usize| {
                    // The payload is alive while the task runs...
                    assert!(payload.live.load(Ordering::SeqCst) > 0);
                    i
                }
            })
            .collect();
        let pool = WorkerPool::new(4);
        let out = pool.run(tasks).unwrap();
        assert_eq!(out, (0..48).collect::<Vec<_>>());
        // ...and dropped (exactly once each) by the time run returns.
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn worker_panic_surfaces_as_err_without_deadlock() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce(usize) -> u32 + Send>> = (0..32u32)
            .map(|i| {
                Box::new(move |_w: usize| {
                    if i == 17 {
                        panic!("morsel {i} exploded");
                    }
                    i
                }) as Box<dyn FnOnce(usize) -> u32 + Send>
            })
            .collect();
        match pool.run(tasks) {
            Err(PoolError::WorkerPanic(msg)) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn inline_panic_also_surfaces_as_err() {
        let pool = WorkerPool::new(1);
        let tasks: Vec<Box<dyn FnOnce(usize) -> u32 + Send>> =
            vec![Box::new(|_| panic!("inline boom"))];
        match pool.run(tasks) {
            Err(PoolError::WorkerPanic(msg)) => assert!(msg.contains("inline boom")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn metrics_account_for_every_task() {
        let reg = obs::Registry::new();
        let pool = WorkerPool::with_registry(4, reg.clone());
        let tasks: Vec<_> = (0..64).map(|i| move |_w: usize| i).collect();
        pool.run(tasks).unwrap();
        assert_eq!(reg.counter("exec.pool.tasks"), 64);
        assert_eq!(reg.counter("exec.pool.runs"), 1);
        let per_worker: u64 = (0..4)
            .map(|w| reg.counter(&format!("exec.pool.worker{w}.tasks")))
            .sum();
        assert_eq!(per_worker, 64, "per-worker task counts must reconcile");
    }

    #[test]
    fn task_latency_histogram_accounts_for_every_task() {
        for threads in [1, 4] {
            let reg = obs::Registry::new();
            let pool = WorkerPool::with_registry(threads, reg.clone());
            let tasks: Vec<_> = (0..32).map(|i| move |_w: usize| i).collect();
            pool.run(tasks).unwrap();
            let h = reg.histogram(TASK_LATENCY).unwrap();
            assert_eq!(h.count(), 32, "threads={threads}");
        }
    }

    #[test]
    fn worker_spans_reattach_to_the_submitting_request_exactly_once() {
        for threads in [1, 4] {
            let reg = obs::Registry::new();
            let rec = obs::Recorder::with_journal(4096, 1);
            let pool = WorkerPool::with_observability(threads, reg, rec.clone());
            let trace = {
                let req = rec.enter_request("request");
                let tasks: Vec<_> = (0..16).map(|i| move |_w: usize| i * 3).collect();
                let out = pool.run(tasks).unwrap();
                assert_eq!(out.len(), 16);
                req.trace_id()
            };
            let report = rec.report();
            let request = report.find("request").unwrap();
            // Exactly one worker subtree under the request, holding all
            // 16 task closes — and no detached exec.pool.task root.
            assert_eq!(request.children.len(), 1, "threads={threads}");
            assert_eq!(request.children[0].name, TASK_SPAN);
            assert_eq!(request.children[0].count, 16);
            assert!(report.roots.iter().all(|r| r.name != TASK_SPAN));
            // Every journaled task event carries the request's trace id.
            let ends: Vec<_> = rec
                .journal()
                .trace_events(trace)
                .into_iter()
                .filter(|e| e.phase == obs::Phase::End && e.name.as_ref() == TASK_SPAN)
                .collect();
            assert_eq!(ends.len(), 16, "threads={threads}");
            // And no cursor entry survives the run (leak regression).
            assert_eq!(rec.open_cursors(), 0);
        }
    }

    #[test]
    fn untraced_runs_produce_no_journal_events() {
        let reg = obs::Registry::new();
        let rec = obs::Recorder::with_journal(4096, 1);
        let pool = WorkerPool::with_observability(4, reg, rec.clone());
        // No request span open on the submitting thread: tasks aggregate
        // but are untraced, so nothing reaches the journal.
        let tasks: Vec<_> = (0..8).map(|i| move |_w: usize| i).collect();
        pool.run(tasks).unwrap();
        assert_eq!(rec.report().find(TASK_SPAN).unwrap().count, 8);
        assert!(rec.journal().is_empty());
        assert_eq!(rec.journal().allocs(), 0);
    }

    #[test]
    fn panicking_worker_closes_its_span_and_journals_the_end_event() {
        for threads in [1, 4] {
            let reg = obs::Registry::new();
            let rec = obs::Recorder::with_journal(4096, 1);
            let pool = WorkerPool::with_observability(threads, reg, rec.clone());
            let trace = {
                let req = rec.enter_request("request");
                let tasks: Vec<Box<dyn FnOnce(usize) -> u32 + Send>> = (0..8u32)
                    .map(|i| {
                        Box::new(move |_w: usize| {
                            if i == 3 {
                                panic!("morsel {i} exploded");
                            }
                            i
                        }) as Box<dyn FnOnce(usize) -> u32 + Send>
                    })
                    .collect();
                match pool.run(tasks) {
                    Err(PoolError::WorkerPanic(msg)) => assert!(msg.contains("exploded")),
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
                req.trace_id()
            };
            // The panicking task's guard closed during unwind: its close
            // is in the aggregate tree and its End event in the journal.
            let report = rec.report();
            let task_node = report.find(TASK_SPAN).unwrap();
            assert!(task_node.count >= 1, "threads={threads}");
            let events = rec.journal().trace_events(trace);
            let (begins, ends): (Vec<_>, Vec<_>) = events
                .iter()
                .filter(|e| e.name.as_ref() == TASK_SPAN)
                .partition(|e| e.phase == obs::Phase::Begin);
            assert!(!ends.is_empty(), "threads={threads}");
            // Unwound guards still close: every opened task span ended.
            assert_eq!(begins.len(), ends.len(), "threads={threads}");
            assert_eq!(rec.open_cursors(), 0);
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|w: usize| w]).unwrap(), vec![0]);
    }

    #[test]
    fn degree_for_caps_at_task_count() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.degree_for(3), 3);
        assert_eq!(pool.degree_for(100), 8);
        assert_eq!(pool.degree_for(0), 1);
    }

    #[test]
    fn service_thread_runs_named_and_joins() {
        let (tx, rx) = std::sync::mpsc::channel();
        let t = ServiceThread::spawn("svc-test", move || {
            let name = std::thread::current().name().map(str::to_owned);
            tx.send(name).unwrap();
        })
        .unwrap();
        assert_eq!(t.name(), "svc-test");
        assert_eq!(rx.recv().unwrap().as_deref(), Some("svc-test"));
        t.join().unwrap();
    }

    #[test]
    fn service_thread_panic_surfaces_on_join() {
        let t = ServiceThread::spawn("svc-boom", || panic!("service exploded")).unwrap();
        match t.join() {
            Err(PoolError::WorkerPanic(msg)) => {
                assert!(msg.contains("svc-boom"), "{msg}");
                assert!(msg.contains("service exploded"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn service_thread_drop_joins_the_body() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        {
            let _t = ServiceThread::spawn("svc-drop", move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.store(true, Ordering::SeqCst);
            })
            .unwrap();
            // Dropping here must block until the body has run to completion.
        }
        assert!(done.load(Ordering::SeqCst), "drop must join the thread");
    }

    #[test]
    fn service_thread_observes_shutdown_via_closed_channel() {
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let t = ServiceThread::spawn("svc-loop", move || {
            let mut seen = 0;
            while rx.recv().is_ok() {
                seen += 1;
            }
            assert_eq!(seen, 3);
        })
        .unwrap();
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        drop(tx); // closing the channel is the shutdown signal
        t.join().unwrap();
        // `is_finished` on a consumed handle is unobservable; spawn another
        // to check the accessor.
        let t = ServiceThread::spawn("svc-done", || {}).unwrap();
        while !t.is_finished() {
            std::thread::yield_now();
        }
        t.join().unwrap();
    }
}
