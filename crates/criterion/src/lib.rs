//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of criterion's API the workspace benches use: [`Criterion`],
//! `benchmark_group` / `bench_function` / `iter` / `iter_batched`,
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a warm-up pass and
//! a fixed number of timed samples, reporting min/mean/median per benchmark
//! to stdout. That keeps `cargo bench` functional (and comparable run to
//! run on one machine) without any external dependency.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How much setup output to hold per batch in [`Bencher::iter_batched`].
/// All variants behave identically here (one setup per measured run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up pass (also primes caches and lazy statics).
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    if per_iter.is_empty() {
        println!("{label:<40} (no iterations)");
        return;
    }
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to each benchmark closure; measures the routine it is given.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a fixed batch of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        const ITERS: u64 = 8;
        let start = Instant::now();
        for _ in 0..ITERS {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Time `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        const ITERS: u64 = 4;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
