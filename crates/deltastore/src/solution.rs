//! Storage solutions: spanning trees of the augmented graph (Lemma 7.1).

use crate::graph::{NodeId, StorageGraph, ROOT};

/// A storage solution: for every version, either the materialization edge
/// or a delta edge from another version — together a spanning tree rooted
/// at `V0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageSolution {
    /// `parent[v]` for `v in 1..=n`: the source of v's chosen incoming
    /// edge (`ROOT` = materialized). Index 0 is unused.
    pub parent: Vec<NodeId>,
    /// Δ of the chosen incoming edge per version (index 0 unused).
    pub delta: Vec<u64>,
    /// Φ of the chosen incoming edge per version (index 0 unused).
    pub phi: Vec<u64>,
}

impl StorageSolution {
    pub fn new(num_versions: usize) -> Self {
        StorageSolution {
            parent: vec![ROOT; num_versions + 1],
            delta: vec![0; num_versions + 1],
            phi: vec![0; num_versions + 1],
        }
    }

    /// Build from explicit (parent, delta, phi) choices per version.
    pub fn from_choices(choices: &[(NodeId, u64, u64)]) -> Self {
        let mut s = StorageSolution::new(choices.len());
        for (i, &(p, d, f)) in choices.iter().enumerate() {
            s.parent[i + 1] = p;
            s.delta[i + 1] = d;
            s.phi[i + 1] = f;
        }
        s
    }

    pub fn num_versions(&self) -> usize {
        self.parent.len() - 1
    }

    /// Whether every version traces back to the root without cycles.
    pub fn is_valid(&self) -> bool {
        let n = self.num_versions();
        // Walk up from every node with a step bound.
        for start in 1..=n {
            let mut cur = start;
            let mut steps = 0;
            while cur != ROOT {
                cur = self.parent[cur];
                steps += 1;
                if steps > n {
                    return false;
                }
            }
        }
        true
    }

    /// Total storage cost `C = Σ Δ` over chosen edges (Problem 7.1's
    /// objective).
    pub fn storage_cost(&self) -> u64 {
        self.delta[1..].iter().sum()
    }

    /// Recreation cost `Rᵢ` per version: the Φ-sum of the path from the
    /// root (index 0 unused, set to 0).
    pub fn recreation_costs(&self) -> Vec<u64> {
        let n = self.num_versions();
        let mut memo: Vec<Option<u64>> = vec![None; n + 1];
        memo[ROOT] = Some(0);
        fn rec(v: usize, parent: &[usize], phi: &[u64], memo: &mut [Option<u64>]) -> u64 {
            if let Some(r) = memo[v] {
                return r;
            }
            let r = rec(parent[v], parent, phi, memo) + phi[v];
            memo[v] = Some(r);
            r
        }
        let mut out = vec![0u64; n + 1];
        for v in 1..=n {
            out[v] = rec(v, &self.parent, &self.phi, &mut memo);
        }
        out
    }

    /// `Σᵢ Rᵢ` — the total-recreation objective of Problems 7.3/7.5.
    pub fn sum_recreation(&self) -> u64 {
        self.recreation_costs()[1..].iter().sum()
    }

    /// `maxᵢ Rᵢ` — the max-recreation objective of Problems 7.4/7.6.
    pub fn max_recreation(&self) -> u64 {
        self.recreation_costs()[1..]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Number of materialized versions.
    pub fn num_materialized(&self) -> usize {
        self.parent[1..].iter().filter(|&&p| p == ROOT).count()
    }

    /// Children lists in the storage tree.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.num_versions() + 1];
        for v in 1..=self.num_versions() {
            ch[self.parent[v]].push(v);
        }
        ch
    }

    /// Subtree sizes (including self) per node in the storage tree.
    pub fn subtree_sizes(&self) -> Vec<u64> {
        let n = self.num_versions();
        let ch = self.children();
        let mut size = vec![1u64; n + 1];
        // Process in reverse topological order via DFS.
        let mut order = Vec::with_capacity(n + 1);
        let mut stack = vec![ROOT];
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend_from_slice(&ch[u]);
        }
        for &u in order.iter().rev() {
            for &c in &ch[u] {
                size[u] += size[c];
            }
        }
        size[ROOT] = n as u64; // root is not a version
        size
    }

    /// Verify that every chosen edge exists in `graph` with the recorded
    /// weights (sanity check for solvers).
    pub fn consistent_with(&self, graph: &StorageGraph) -> bool {
        (1..=self.num_versions()).all(|v| {
            graph.incoming(v).iter().any(|&eid| {
                let e = graph.edge(eid);
                e.from == self.parent[v] && e.delta == self.delta[v] && e.phi == self.phi[v]
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 7.1(iv): V1 and V3 materialized, V2 ← V1, V4 ← V2, V5 ← V3.
    fn fig71_iv() -> StorageSolution {
        StorageSolution::from_choices(&[
            (ROOT, 10000, 10000),
            (1, 200, 200),
            (ROOT, 9700, 9700),
            (2, 50, 400),
            (3, 200, 550),
        ])
    }

    #[test]
    fn costs_match_paper_example() {
        let s = fig71_iv();
        assert!(s.is_valid());
        assert_eq!(s.storage_cost(), 10000 + 200 + 9700 + 50 + 200);
        let r = s.recreation_costs();
        assert_eq!(r[1], 10000);
        assert_eq!(r[2], 10200);
        assert_eq!(r[3], 9700);
        assert_eq!(r[4], 10600);
        assert_eq!(r[5], 10250);
        assert_eq!(s.num_materialized(), 2);
    }

    #[test]
    fn fig71_iii_chain_recreation() {
        // Fig. 7.1(iii): only V1 materialized; V5 via V3: R5 = 13550.
        let s = StorageSolution::from_choices(&[
            (ROOT, 10000, 10000),
            (1, 200, 200),
            (1, 1000, 3000),
            (2, 50, 400),
            (3, 200, 550),
        ]);
        assert_eq!(s.storage_cost(), 11450);
        assert_eq!(s.recreation_costs()[5], 13550);
    }

    #[test]
    fn cycle_is_invalid() {
        let mut s = StorageSolution::from_choices(&[(2, 1, 1), (1, 1, 1), (ROOT, 5, 5)]);
        assert!(!s.is_valid());
        s.parent[1] = ROOT;
        assert!(s.is_valid());
    }

    #[test]
    fn subtree_sizes_count_descendants() {
        let s = fig71_iv();
        let sizes = s.subtree_sizes();
        assert_eq!(sizes[1], 3); // v1 → v2 → v4
        assert_eq!(sizes[2], 2);
        assert_eq!(sizes[3], 2); // v3 → v5
        assert_eq!(sizes[4], 1);
    }
}
