//! Spanning-structure primitives: Prim's MST (undirected), Edmonds'
//! minimum arborescence (directed), and Dijkstra's shortest-path tree.
//!
//! Problem 7.1 (minimize storage) is exactly a minimum spanning tree /
//! arborescence on Δ (Lemma 7.2); Problem 7.2 (minimize every recreation
//! cost) is the shortest-path tree on Φ (Lemma 7.3).

use crate::graph::{NodeId, StorageGraph, ROOT};
use crate::solution::StorageSolution;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Prim's algorithm over Δ, treating every edge as traversable in its
/// stored direction (for undirected graphs both directions are present).
/// Suitable when Δ is symmetric; for directed instances use
/// [`edmonds_arborescence`].
pub fn prim_mst(graph: &StorageGraph) -> StorageSolution {
    let n = graph.num_versions();
    let mut sol = StorageSolution::new(n);
    let mut in_tree = vec![false; n + 1];
    in_tree[ROOT] = true;
    // (delta, to, from, phi)
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize, u64)>> = BinaryHeap::new();
    for &eid in graph.outgoing(ROOT) {
        let e = graph.edge(eid);
        heap.push(Reverse((e.delta, e.to, e.from, e.phi)));
    }
    let mut added = 0usize;
    while added < n {
        let Some(Reverse((delta, to, from, phi))) = heap.pop() else {
            break; // disconnected
        };
        if in_tree[to] {
            continue;
        }
        in_tree[to] = true;
        sol.parent[to] = from;
        sol.delta[to] = delta;
        sol.phi[to] = phi;
        added += 1;
        for &eid in graph.outgoing(to) {
            let e = graph.edge(eid);
            if !in_tree[e.to] {
                heap.push(Reverse((e.delta, e.to, e.from, e.phi)));
            }
        }
    }
    sol
}

/// Dijkstra shortest-path tree over Φ from the dummy root: minimizes every
/// `Rᵢ` simultaneously.
pub fn dijkstra_spt(graph: &StorageGraph) -> StorageSolution {
    let n = graph.num_versions();
    let mut sol = StorageSolution::new(n);
    let mut dist = vec![u64::MAX; n + 1];
    dist[ROOT] = 0;
    let mut done = vec![false; n + 1];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0, ROOT)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &eid in graph.outgoing(u) {
            let e = graph.edge(eid);
            let nd = d.saturating_add(e.phi);
            if nd < dist[e.to] {
                dist[e.to] = nd;
                sol.parent[e.to] = u;
                sol.delta[e.to] = e.delta;
                sol.phi[e.to] = e.phi;
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    sol
}

/// Chu–Liu/Edmonds minimum-cost arborescence rooted at `V0`, over Δ,
/// implemented with the standard recursive contract-and-expand scheme.
/// O(V·E); the graph must be connected from the root.
pub fn edmonds_arborescence(graph: &StorageGraph) -> StorageSolution {
    #[derive(Clone, Copy)]
    struct E {
        from: usize,
        to: usize,
        w: u64,
        /// Index of the edge this one stands for, one level up
        /// (top level: the original edge id).
        src: usize,
    }

    /// Returns the chosen edge indices *into `edges`* forming a minimum
    /// arborescence rooted at `root` over `num_nodes` nodes.
    fn solve(num_nodes: usize, root: usize, edges: &[E]) -> Vec<usize> {
        // 1. Cheapest incoming edge per node.
        let mut best: Vec<Option<usize>> = vec![None; num_nodes];
        for (i, e) in edges.iter().enumerate() {
            if e.to == root || e.from == e.to {
                continue;
            }
            if best[e.to].map(|b| e.w < edges[b].w).unwrap_or(true) {
                best[e.to] = Some(i);
            }
        }
        // 2. Find cycles among the best edges.
        const UNSET: usize = usize::MAX;
        let mut id = vec![UNSET; num_nodes];
        let mut mark = vec![UNSET; num_nodes];
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        let mut next_id = 0usize;
        for start in 0..num_nodes {
            if start == root || best[start].is_none() {
                continue;
            }
            let mut v = start;
            while v != root && best[v].is_some() && mark[v] == UNSET && id[v] == UNSET {
                mark[v] = start;
                v = edges[best[v].unwrap()].from;
            }
            if v != root && best[v].is_some() && mark[v] == start && id[v] == UNSET {
                // New cycle through v.
                let mut cycle = Vec::new();
                let mut u = v;
                loop {
                    id[u] = next_id;
                    cycle.push(u);
                    u = edges[best[u].unwrap()].from;
                    if u == v {
                        break;
                    }
                }
                next_id += 1;
                cycles.push(cycle);
            }
        }
        if cycles.is_empty() {
            return (0..num_nodes)
                .filter(|&v| v != root)
                .filter_map(|v| best[v])
                .collect();
        }
        // 3. Contract: assign ids to the remaining nodes.
        for v in 0..num_nodes {
            if id[v] == UNSET {
                id[v] = next_id;
                next_id += 1;
            }
        }
        let mut sub_edges = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let (nf, nt) = (id[e.from], id[e.to]);
            if nf == nt {
                continue;
            }
            // Weight reduction applies when the target sits in a cycle.
            let w = match best[e.to] {
                Some(b) if cycles.iter().any(|c| c.contains(&e.to)) => e.w - edges[b].w,
                _ => e.w,
            };
            sub_edges.push(E {
                from: nf,
                to: nt,
                w,
                src: i,
            });
        }
        let chosen_sub = solve(next_id, id[root], &sub_edges);
        let mut chosen: Vec<usize> = chosen_sub.iter().map(|&i| sub_edges[i].src).collect();
        // 4. Expand each cycle: keep every best edge except the one whose
        // target is entered from outside.
        for cycle in &cycles {
            let entered: Option<usize> = chosen
                .iter()
                .map(|&i| edges[i].to)
                .find(|t| cycle.contains(t));
            for &v in cycle {
                if Some(v) != entered {
                    chosen.push(best[v].unwrap());
                }
            }
        }
        chosen
    }

    let edges: Vec<E> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| E {
            from: e.from,
            to: e.to,
            w: e.delta,
            src: i,
        })
        .collect();
    let chosen = solve(graph.num_nodes(), ROOT, &edges);

    let n = graph.num_versions();
    let mut sol = StorageSolution::new(n);
    for idx in chosen {
        let e = graph.edge(edges[idx].src);
        sol.parent[e.to] = e.from;
        sol.delta[e.to] = e.delta;
        sol.phi[e.to] = e.phi;
    }
    debug_assert!(sol.is_valid(), "Edmonds produced a cyclic solution");
    sol
}

/// Kruskal's algorithm over Δ for undirected instances — an independent
/// cross-check of [`prim_mst`] (the two must agree on total weight).
pub fn kruskal_mst(graph: &StorageGraph) -> StorageSolution {
    debug_assert!(graph.is_undirected(), "Kruskal needs symmetric deltas");
    let n = graph.num_versions();
    // Union-find over nodes 0..=n.
    let mut parent: Vec<usize> = (0..=n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut edges: Vec<(u64, usize)> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.delta, i))
        .collect();
    edges.sort_unstable();
    // Chosen undirected edges; orientation resolved by a BFS from the root.
    let mut adj: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); n + 1];
    let mut picked = 0usize;
    for (_, eid) in edges {
        if picked == n {
            break;
        }
        let e = graph.edge(eid);
        let (ra, rb) = (find(&mut parent, e.from), find(&mut parent, e.to));
        if ra == rb {
            continue;
        }
        parent[ra] = rb;
        adj[e.from].push((e.to, e.delta, e.phi));
        adj[e.to].push((e.from, e.delta, e.phi));
        picked += 1;
    }
    let mut sol = StorageSolution::new(n);
    let mut seen = vec![false; n + 1];
    seen[ROOT] = true;
    let mut queue = std::collections::VecDeque::from([ROOT]);
    while let Some(u) = queue.pop_front() {
        for &(v, delta, phi) in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                sol.parent[v] = u;
                sol.delta[v] = delta;
                sol.phi[v] = phi;
                queue.push_back(v);
            }
        }
    }
    sol
}

/// The best spanning structure for Problem 7.1 given directionality.
pub fn min_storage_tree(graph: &StorageGraph) -> StorageSolution {
    if graph.is_undirected() {
        prim_mst(graph)
    } else {
        edmonds_arborescence(graph)
    }
}

/// Per-version shortest Φ-distances from the root (used by LAST and MP).
pub fn shortest_phi_distances(graph: &StorageGraph) -> Vec<u64> {
    dijkstra_spt(graph).recreation_costs()
}

// Compile-time anchor keeping the NodeId alias referenced outside tests.
#[allow(dead_code)]
fn _unused(_: NodeId) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig71() -> StorageGraph {
        let mut g = StorageGraph::new(5, false);
        g.add_materialization(1, 10000, 10000);
        g.add_materialization(2, 10100, 10100);
        g.add_materialization(3, 9700, 9700);
        g.add_materialization(4, 9800, 9800);
        g.add_materialization(5, 10120, 10120);
        g.add_delta(1, 2, 200, 200);
        g.add_delta(1, 3, 1000, 3000);
        g.add_delta(2, 4, 50, 400);
        g.add_delta(2, 5, 800, 2500);
        g.add_delta(3, 5, 200, 550);
        g.add_delta(2, 1, 500, 600);
        g.add_delta(3, 2, 1100, 3200);
        g.add_delta(5, 4, 800, 2300);
        g.add_delta(4, 5, 900, 2500);
        g
    }

    #[test]
    fn arborescence_matches_fig71_iii() {
        // Minimum storage keeps only V1 materialized: C = 11450.
        let sol = edmonds_arborescence(&fig71());
        assert!(sol.is_valid());
        assert!(sol.consistent_with(&fig71()));
        assert_eq!(sol.storage_cost(), 11450);
        assert_eq!(sol.num_materialized(), 1);
    }

    #[test]
    fn spt_minimizes_every_recreation() {
        let g = fig71();
        let sol = dijkstra_spt(&g);
        assert!(sol.is_valid());
        let r = sol.recreation_costs();
        // Each version's R must equal its true shortest Φ-distance;
        // spot-check v4: direct = 9800 vs via v2 = 10000+200+400 = 10600.
        assert_eq!(r[4], 9800);
        assert_eq!(r[3], 9700);
        // v2 via v1: 10200 > 10100 direct.
        assert_eq!(r[2], 10100);
    }

    #[test]
    fn spt_dominates_any_other_solution() {
        let g = fig71();
        let spt = dijkstra_spt(&g).recreation_costs();
        let mst = edmonds_arborescence(&g).recreation_costs();
        for v in 1..=5 {
            assert!(spt[v] <= mst[v], "SPT must minimize R{v}");
        }
    }

    #[test]
    fn prim_on_undirected_instance() {
        let mut g = StorageGraph::new(3, true);
        g.add_materialization(1, 100, 100);
        g.add_materialization(2, 110, 110);
        g.add_materialization(3, 120, 120);
        g.add_delta(1, 2, 10, 10);
        g.add_delta(2, 3, 15, 15);
        g.add_delta(1, 3, 30, 30);
        let sol = prim_mst(&g);
        assert!(sol.is_valid());
        // MST: materialize v1 (cheapest), deltas 1-2 and 2-3.
        assert_eq!(sol.storage_cost(), 100 + 10 + 15);
    }

    #[test]
    fn kruskal_agrees_with_prim() {
        use crate::gen::{GenConfig, GraphShape};
        for seed in [1u64, 2, 3, 4] {
            let g = GenConfig {
                versions: 40,
                shape: GraphShape::Random,
                directed: false,
                extra_edges: 80,
                seed,
                ..GenConfig::default()
            }
            .build();
            let p = prim_mst(&g);
            let k = kruskal_mst(&g);
            assert!(k.is_valid());
            assert_eq!(
                p.storage_cost(),
                k.storage_cost(),
                "MST weights disagree at seed {seed}"
            );
        }
    }

    #[test]
    fn arborescence_beats_greedy_on_cycle_instance() {
        // Classic case where per-node greedy picks a cycle: Edmonds must
        // still return a valid arborescence with minimum cost.
        let mut g = StorageGraph::new(3, false);
        g.add_materialization(1, 10, 10);
        g.add_materialization(2, 100, 100);
        g.add_materialization(3, 100, 100);
        g.add_delta(2, 3, 1, 1);
        g.add_delta(3, 2, 1, 1);
        g.add_delta(1, 2, 8, 8);
        let sol = edmonds_arborescence(&g);
        assert!(sol.is_valid());
        // Optimal: mat 1 (10), 1→2 (8), 2→3 (1) = 19.
        assert_eq!(sol.storage_cost(), 19);
    }
}
