//! LAST — balancing the minimum spanning tree against the shortest-path
//! tree for the undirected `Φ = Δ` case (Scenario 7.1, Table 7.1: Problems
//! 7.4/7.6), after Khuller, Raghavachari & Young's *"Balancing minimum
//! spanning trees and shortest-path trees"*.
//!
//! Given `α > 1`, LAST produces a spanning tree in which every version's
//! root-path cost is at most `α` times its shortest-path distance, while
//! the total tree weight is at most `1 + 2/(α−1)` times the MST weight.

use crate::graph::{StorageGraph, ROOT};
use crate::solution::StorageSolution;
use crate::spanning::{dijkstra_spt, prim_mst};

/// Build a LAST tree with parameter `alpha > 1`. Requires an undirected
/// instance (symmetric deltas) with `Φ = Δ`.
pub fn last_tree(graph: &StorageGraph, alpha: f64) -> StorageSolution {
    assert!(alpha > 1.0, "alpha must exceed 1");
    assert!(
        graph.is_undirected(),
        "LAST applies to the undirected (symmetric delta) case"
    );
    let n = graph.num_versions();
    let spt = dijkstra_spt(graph);
    let spt_dist = spt.recreation_costs();
    let mst = prim_mst(graph);

    // DFS over the MST, tracking the best-known distance to each node;
    // whenever a node's current distance exceeds α·d_spt, relax it back to
    // its shortest path (re-parent along the SPT).
    let mut sol = mst.clone();
    let mut dist: Vec<u64> = vec![u64::MAX; n + 1];
    dist[ROOT] = 0;

    let children = mst.children();
    // Iterative DFS keeping an explicit stack of (node, entered).
    let mut stack: Vec<(usize, bool)> = children[ROOT].iter().map(|&c| (c, false)).collect();
    // Distances propagate down the (possibly re-parented) tree; process in
    // DFS pre-order.
    while let Some((v, _)) = stack.pop() {
        let parent = sol.parent[v];
        let via_parent = dist[parent].saturating_add(sol.phi[v]);
        let threshold = (alpha * spt_dist[v] as f64).floor() as u64;
        if via_parent > threshold {
            // Relax: attach v by its SPT edge instead.
            sol.parent[v] = spt.parent[v];
            sol.delta[v] = spt.delta[v];
            sol.phi[v] = spt.phi[v];
            dist[v] = spt_dist[v];
        } else {
            dist[v] = via_parent;
        }
        for &c in &children[v] {
            stack.push((c, false));
        }
    }

    // A relaxation may re-parent v onto an SPT parent not yet visited in
    // MST order; distances could be stale. One corrective pass: recompute
    // true recreation costs and re-relax any violator directly onto its
    // SPT path (which is always safe — SPT parents chain to the root with
    // exact d_spt distances once every violator is fixed bottom-up).
    for _ in 0..n {
        let r = sol.recreation_costs();
        let mut changed = false;
        for v in 1..=n {
            let threshold = (alpha * spt_dist[v] as f64).floor() as u64;
            if r[v] > threshold {
                sol.parent[v] = spt.parent[v];
                sol.delta[v] = spt.delta[v];
                sol.phi[v] = spt.phi[v];
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(sol.is_valid());
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};

    fn instance(seed: u64) -> StorageGraph {
        GenConfig {
            versions: 50,
            shape: GraphShape::Tree { branching: 2 },
            extra_edges: 80,
            directed: false,
            decouple_phi: false,
            seed,
            ..GenConfig::default()
        }
        .build()
    }

    #[test]
    fn last_bounds_hold() {
        for seed in [1u64, 2, 3] {
            let g = instance(seed);
            let spt = dijkstra_spt(&g);
            let mst = prim_mst(&g);
            let d = spt.recreation_costs();
            for alpha in [1.5f64, 2.0, 3.0] {
                let sol = last_tree(&g, alpha);
                assert!(sol.is_valid());
                assert!(sol.consistent_with(&g));
                let r = sol.recreation_costs();
                for v in 1..=g.num_versions() {
                    assert!(
                        r[v] as f64 <= alpha * d[v] as f64 + 1e-9,
                        "seed {seed} α={alpha}: R{v}={} > α·d={}",
                        r[v],
                        alpha * d[v] as f64
                    );
                }
                let bound = (1.0 + 2.0 / (alpha - 1.0)) * mst.storage_cost() as f64;
                assert!(
                    sol.storage_cost() as f64 <= bound + 1e-9,
                    "seed {seed} α={alpha}: storage {} > bound {bound}",
                    sol.storage_cost()
                );
            }
        }
    }

    #[test]
    fn last_interpolates_between_extremes() {
        let g = instance(4);
        let spt = dijkstra_spt(&g);
        let mst = prim_mst(&g);
        let tight = last_tree(&g, 1.0001);
        // α → 1: recreation ≈ SPT.
        assert!(tight.max_recreation() <= spt.max_recreation() * 11 / 10 + 1);
        let loose = last_tree(&g, 1e9);
        // α → ∞: storage = MST.
        assert_eq!(loose.storage_cost(), mst.storage_cost());
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn last_rejects_directed_graphs() {
        let g = GenConfig {
            versions: 5,
            directed: true,
            ..GenConfig::default()
        }
        .build();
        let _ = last_tree(&g, 2.0);
    }
}
