//! Concrete delta encoding between version contents.
//!
//! Chapter 7 is format-agnostic (Remark 7.1): a version is any bag of
//! addressable items (rows, lines, chunks). `VersionContent` models a
//! version as a sorted set of item ids with a per-item byte weight;
//! `Delta` records the items to add and remove to turn one version into
//! another, and can be applied, reversed, and measured — the building
//! blocks from which real ⟨Δ, Φ⟩ matrices are derived.

use crate::graph::StorageGraph;

/// A version's content: sorted item ids plus the byte size of one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionContent {
    items: Vec<u64>,
    item_bytes: u64,
}

impl VersionContent {
    pub fn new(mut items: Vec<u64>, item_bytes: u64) -> Self {
        items.sort_unstable();
        items.dedup();
        VersionContent { items, item_bytes }
    }

    pub fn items(&self) -> &[u64] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Full materialization cost in bytes.
    pub fn materialized_bytes(&self) -> u64 {
        self.items.len() as u64 * self.item_bytes
    }

    pub fn contains(&self, item: u64) -> bool {
        self.items.binary_search(&item).is_ok()
    }
}

/// A (directed) delta from `base` to `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub added: Vec<u64>,
    pub removed: Vec<u64>,
    item_bytes: u64,
}

/// Bytes to record one removed item (a tombstone id).
const TOMBSTONE_BYTES: u64 = 8;

impl Delta {
    /// Build a delta from explicit add/remove sets.
    pub fn new(mut added: Vec<u64>, mut removed: Vec<u64>, item_bytes: u64) -> Delta {
        added.sort_unstable();
        added.dedup();
        removed.sort_unstable();
        removed.dedup();
        Delta {
            added,
            removed,
            item_bytes,
        }
    }

    /// Compute the delta turning `base` into `target`.
    pub fn between(base: &VersionContent, target: &VersionContent) -> Delta {
        let added = diff(&target.items, &base.items);
        let removed = diff(&base.items, &target.items);
        Delta {
            added,
            removed,
            item_bytes: target.item_bytes,
        }
    }

    /// Apply to `base`, producing the target content.
    pub fn apply(&self, base: &VersionContent) -> VersionContent {
        let mut items: Vec<u64> = base
            .items
            .iter()
            .copied()
            .filter(|i| self.removed.binary_search(i).is_err())
            .collect();
        items.extend_from_slice(&self.added);
        VersionContent::new(items, self.item_bytes)
    }

    /// The reverse delta (target → base).
    pub fn reversed(&self) -> Delta {
        Delta {
            added: self.removed.clone(),
            removed: self.added.clone(),
            item_bytes: self.item_bytes,
        }
    }

    /// Storage cost Δ in bytes: added items are stored whole, removals as
    /// tombstones. Note the asymmetry: a delta that only deletes is much
    /// smaller than its reverse (§7.2.1's "delete all tuples with age > 60"
    /// example).
    pub fn storage_bytes(&self) -> u64 {
        self.added.len() as u64 * self.item_bytes + self.removed.len() as u64 * TOMBSTONE_BYTES
    }

    /// Recreation cost Φ: proportional to the data volume applied. Callers
    /// modelling decompression or script replay can scale it.
    pub fn recreation_cost(&self) -> u64 {
        self.storage_bytes()
    }

    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

fn diff(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

/// Build a directed storage graph from version contents: materialization
/// edges for every version plus delta edges for each revealed pair.
pub fn graph_from_contents(
    contents: &[VersionContent],
    revealed_pairs: &[(usize, usize)],
) -> StorageGraph {
    let n = contents.len();
    let mut g = StorageGraph::new(n, false);
    for (i, c) in contents.iter().enumerate() {
        g.add_materialization(
            i + 1,
            c.materialized_bytes().max(1),
            c.materialized_bytes().max(1),
        );
    }
    for &(a, b) in revealed_pairs {
        assert!(a >= 1 && a <= n && b >= 1 && b <= n && a != b);
        let fwd = Delta::between(&contents[a - 1], &contents[b - 1]);
        g.add_delta(
            a,
            b,
            fwd.storage_bytes().max(1),
            fwd.recreation_cost().max(1),
        );
        let rev = fwd.reversed();
        g.add_delta(
            b,
            a,
            rev.storage_bytes().max(1),
            rev.recreation_cost().max(1),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content(items: &[u64]) -> VersionContent {
        VersionContent::new(items.to_vec(), 100)
    }

    #[test]
    fn delta_roundtrip() {
        let a = content(&[1, 2, 3, 4]);
        let b = content(&[2, 3, 5, 6, 7]);
        let d = Delta::between(&a, &b);
        assert_eq!(d.added, vec![5, 6, 7]);
        assert_eq!(d.removed, vec![1, 4]);
        assert_eq!(d.apply(&a), b);
        assert_eq!(d.reversed().apply(&b), a);
    }

    #[test]
    fn delta_asymmetry() {
        // Deleting is cheap to store; re-adding is expensive.
        let big = content(&(0..100).collect::<Vec<_>>());
        let small = content(&(0..10).collect::<Vec<_>>());
        let shrink = Delta::between(&big, &small);
        let grow = Delta::between(&small, &big);
        assert!(shrink.storage_bytes() < grow.storage_bytes() / 10);
    }

    #[test]
    fn empty_delta() {
        let a = content(&[1, 2]);
        let d = Delta::between(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.storage_bytes(), 0);
    }

    #[test]
    fn graph_from_contents_solvable() {
        let contents: Vec<VersionContent> = (0..5u64)
            .map(|i| content(&(i * 10..i * 10 + 50).collect::<Vec<_>>()))
            .collect();
        let pairs = vec![(1, 2), (2, 3), (3, 4), (4, 5), (1, 5)];
        let g = graph_from_contents(&contents, &pairs);
        assert!(g.is_connected());
        let sol = crate::spanning::edmonds_arborescence(&g);
        assert!(sol.is_valid());
        // Storing deltas must beat materializing everything.
        let all_mat: u64 = contents.iter().map(|c| c.materialized_bytes()).sum();
        assert!(sol.storage_cost() < all_mat);
    }
}
