//! The six problem variants of Table 7.1, each dispatched to its solver.

use crate::graph::StorageGraph;
use crate::lmg::{lmg_min_storage, lmg_min_sum_recreation};
use crate::mp::{mp_min_max_recreation, mp_min_storage};
use crate::solution::StorageSolution;
use crate::spanning::{dijkstra_spt, min_storage_tree};

/// Problem 7.1 — minimize total storage `C` with finite recreation costs:
/// the minimum spanning tree (undirected) or arborescence (directed) over
/// Δ (Lemma 7.2).
pub fn p1_min_storage(graph: &StorageGraph) -> StorageSolution {
    min_storage_tree(graph)
}

/// Problem 7.2 — minimize every `Rᵢ` with unbounded storage: the
/// shortest-path tree over Φ (Lemma 7.3).
pub fn p2_min_recreation(graph: &StorageGraph) -> StorageSolution {
    dijkstra_spt(graph)
}

/// Problem 7.3 — minimize `ΣRᵢ` subject to `C ≤ β` (NP-hard; LMG).
pub fn p3_min_sum_recreation(graph: &StorageGraph, beta: u64) -> StorageSolution {
    lmg_min_sum_recreation(graph, beta)
}

/// Problem 7.4 — minimize `max Rᵢ` subject to `C ≤ β` (NP-hard; binary
/// search over MP). `None` when no spanning tree fits β.
pub fn p4_min_max_recreation(graph: &StorageGraph, beta: u64) -> Option<StorageSolution> {
    mp_min_max_recreation(graph, beta)
}

/// Problem 7.5 — minimize `C` subject to `ΣRᵢ ≤ θ` (NP-hard; LMG).
pub fn p5_min_storage_sum(graph: &StorageGraph, theta: u64) -> StorageSolution {
    lmg_min_storage(graph, theta)
}

/// Problem 7.6 — minimize `C` subject to `max Rᵢ ≤ θ` (NP-hard; MP).
/// `None` when θ is below some version's cheapest recreation.
pub fn p6_min_storage_max(graph: &StorageGraph, theta: u64) -> Option<StorageSolution> {
    mp_min_storage(graph, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};

    #[test]
    fn extremes_bound_the_constrained_problems() {
        let g = GenConfig {
            versions: 30,
            shape: GraphShape::Random,
            seed: 3,
            ..GenConfig::default()
        }
        .build();
        let mst = p1_min_storage(&g);
        let spt = p2_min_recreation(&g);
        // Storage: MST ≤ everything; recreation: SPT ≤ everything.
        let beta = mst.storage_cost() * 2;
        let p3 = p3_min_sum_recreation(&g, beta);
        assert!(p3.storage_cost() >= mst.storage_cost());
        assert!(p3.sum_recreation() >= spt.sum_recreation());

        let theta = spt.sum_recreation() * 2;
        let p5 = p5_min_storage_sum(&g, theta);
        assert!(p5.storage_cost() >= mst.storage_cost());
        assert!(p5.sum_recreation() >= spt.sum_recreation());

        let theta = spt.max_recreation() * 2;
        let p6 = p6_min_storage_max(&g, theta).unwrap();
        assert!(p6.storage_cost() >= mst.storage_cost());

        let p4 = p4_min_max_recreation(&g, beta).unwrap();
        assert!(p4.max_recreation() >= spt.max_recreation());
        assert!(p4.storage_cost() <= beta);
    }
}
