//! Exact branch-and-bound solver for small instances.
//!
//! Enumerates parent choices per version (each version picks one revealed
//! incoming edge), pruning cyclic assignments and partial solutions that
//! already exceed the best known objective. Stands in for the paper's ILP
//! formulation (§7.2.3) as the optimality reference for heuristic
//! validation — usable up to a dozen or so versions.

use crate::graph::{StorageGraph, ROOT};
use crate::solution::StorageSolution;

/// Which objective/constraint pair to solve exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExactProblem {
    /// Problem 7.5: minimize storage s.t. `ΣRᵢ ≤ θ`.
    MinStorageSumRecreation { theta: u64 },
    /// Problem 7.6: minimize storage s.t. `max Rᵢ ≤ θ`.
    MinStorageMaxRecreation { theta: u64 },
    /// Problem 7.3: minimize `ΣRᵢ` s.t. `C ≤ β`.
    MinSumRecreationStorage { beta: u64 },
}

/// Exhaustively solve a small instance. Returns `None` when infeasible.
/// Exponential; intended for `n ≲ 12`.
pub fn solve_exact(graph: &StorageGraph, problem: ExactProblem) -> Option<StorageSolution> {
    let n = graph.num_versions();
    assert!(n <= 14, "exact solver is exponential; use the heuristics");
    let mut best: Option<(u128, StorageSolution)> = None;
    let mut sol = StorageSolution::new(n);
    // Candidate incoming edges per version.
    let candidates: Vec<Vec<crate::graph::Edge>> = (1..=n)
        .map(|v| graph.incoming(v).iter().map(|&e| graph.edge(e)).collect())
        .collect();

    fn objective(problem: ExactProblem, sol: &StorageSolution) -> Option<u128> {
        match problem {
            ExactProblem::MinStorageSumRecreation { theta } => {
                (sol.sum_recreation() <= theta).then(|| sol.storage_cost() as u128)
            }
            ExactProblem::MinStorageMaxRecreation { theta } => {
                (sol.max_recreation() <= theta).then(|| sol.storage_cost() as u128)
            }
            ExactProblem::MinSumRecreationStorage { beta } => {
                (sol.storage_cost() <= beta).then(|| sol.sum_recreation() as u128)
            }
        }
    }

    fn rec(
        v: usize,
        n: usize,
        candidates: &[Vec<crate::graph::Edge>],
        sol: &mut StorageSolution,
        partial_storage: u64,
        problem: ExactProblem,
        best: &mut Option<(u128, StorageSolution)>,
    ) {
        if v > n {
            if !sol.is_valid() {
                return;
            }
            if let Some(score) = objective(problem, sol) {
                if best.as_ref().map(|(b, _)| score < *b).unwrap_or(true) {
                    *best = Some((score, sol.clone()));
                }
            }
            return;
        }
        for e in &candidates[v - 1] {
            // Storage-based pruning where storage is the objective.
            let new_storage = partial_storage + e.delta;
            if let Some((b, _)) = best {
                let prunable = matches!(
                    problem,
                    ExactProblem::MinStorageSumRecreation { .. }
                        | ExactProblem::MinStorageMaxRecreation { .. }
                );
                if prunable && new_storage as u128 >= *b {
                    continue;
                }
                if let ExactProblem::MinSumRecreationStorage { beta } = problem {
                    if new_storage > beta {
                        continue;
                    }
                }
            } else if let ExactProblem::MinSumRecreationStorage { beta } = problem {
                if new_storage > beta {
                    continue;
                }
            }
            sol.parent[v] = e.from;
            sol.delta[v] = e.delta;
            sol.phi[v] = e.phi;
            rec(v + 1, n, candidates, sol, new_storage, problem, best);
        }
    }

    rec(1, n, &candidates, &mut sol, 0, problem, &mut best);
    best.map(|(_, s)| s)
}

// Compile-time anchor keeping the ROOT constant referenced outside tests.
#[allow(dead_code)]
fn _root_is_zero() {
    let _ = ROOT;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};
    use crate::lmg::{lmg_min_storage, lmg_min_sum_recreation};
    use crate::mp::mp_min_storage;
    use crate::spanning::{dijkstra_spt, min_storage_tree};

    fn small(seed: u64) -> StorageGraph {
        GenConfig {
            versions: 8,
            shape: GraphShape::Random,
            base_items: 200,
            adds_per_step: 30,
            removes_per_step: 10,
            extra_edges: 12,
            directed: true,
            decouple_phi: false,
            seed,
        }
        .build()
    }

    #[test]
    fn exact_matches_mst_when_unconstrained() {
        for seed in [1, 2, 3] {
            let g = small(seed);
            let exact = solve_exact(
                &g,
                ExactProblem::MinStorageSumRecreation { theta: u64::MAX },
            )
            .unwrap();
            let mst = min_storage_tree(&g);
            assert_eq!(exact.storage_cost(), mst.storage_cost(), "seed {seed}");
        }
    }

    #[test]
    fn exact_matches_spt_when_storage_unbounded() {
        for seed in [1, 2, 3] {
            let g = small(seed);
            let exact =
                solve_exact(&g, ExactProblem::MinSumRecreationStorage { beta: u64::MAX }).unwrap();
            let spt = dijkstra_spt(&g);
            assert_eq!(exact.sum_recreation(), spt.sum_recreation(), "seed {seed}");
        }
    }

    #[test]
    fn heuristics_within_factor_of_exact() {
        // The paper's evaluation point: LMG/MP are near-optimal in practice.
        let mut lmg5_gap: f64 = 1.0;
        let mut lmg3_gap: f64 = 1.0;
        let mut mp_gap: f64 = 1.0;
        for seed in [1u64, 2, 3, 4, 5] {
            let g = small(seed);
            let spt = dijkstra_spt(&g);
            let mst = min_storage_tree(&g);

            // P5 with θ = 1.5× SPT total.
            let theta = spt.sum_recreation() * 3 / 2;
            let exact = solve_exact(&g, ExactProblem::MinStorageSumRecreation { theta }).unwrap();
            let h = lmg_min_storage(&g, theta);
            assert!(h.sum_recreation() <= theta);
            lmg5_gap = lmg5_gap.max(h.storage_cost() as f64 / exact.storage_cost() as f64);

            // P3 with β = 1.5× MST storage.
            let beta = mst.storage_cost() * 3 / 2;
            let exact = solve_exact(&g, ExactProblem::MinSumRecreationStorage { beta }).unwrap();
            let h = lmg_min_sum_recreation(&g, beta);
            assert!(h.storage_cost() <= beta);
            lmg3_gap = lmg3_gap.max(h.sum_recreation() as f64 / exact.sum_recreation() as f64);

            // P6 with θ = 2× SPT max.
            let theta = spt.max_recreation() * 2;
            let exact = solve_exact(&g, ExactProblem::MinStorageMaxRecreation { theta }).unwrap();
            let h = mp_min_storage(&g, theta).unwrap();
            assert!(h.max_recreation() <= theta);
            mp_gap = mp_gap.max(h.storage_cost() as f64 / exact.storage_cost() as f64);
        }
        assert!(lmg5_gap < 1.5, "LMG (P5) gap {lmg5_gap}");
        assert!(lmg3_gap < 1.5, "LMG (P3) gap {lmg3_gap}");
        assert!(mp_gap < 1.6, "MP (P6) gap {mp_gap}");
    }

    #[test]
    fn infeasible_returns_none() {
        let g = small(9);
        assert!(solve_exact(&g, ExactProblem::MinStorageMaxRecreation { theta: 1 }).is_none());
    }
}
