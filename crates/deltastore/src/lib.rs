//! # deltastore — the compact storage engine for data versioning (Chapter 7)
//!
//! Given a collection of dataset versions and the costs of storing each
//! version either **materialized** (`Δᵢᵢ`, recreation `Φᵢᵢ`) or as a
//! **delta** from another version (`Δᵢⱼ`, `Φᵢⱼ`), choose a storage solution
//! — a spanning tree of the augmented graph rooted at a dummy node `V0` —
//! trading off total storage cost `C` against per-version recreation costs
//! `Rᵢ` (the path cost from `V0`).
//!
//! The six problem variants of Table 7.1 and their solvers:
//!
//! | problem | objective | constraint | solver |
//! |---|---|---|---|
//! | 7.1 | min `C` | — | [`problems::p1_min_storage`] (Prim / Edmonds) |
//! | 7.2 | min all `Rᵢ` | — | [`problems::p2_min_recreation`] (Dijkstra SPT) |
//! | 7.3 | min `ΣRᵢ` | `C ≤ β` | [`lmg::lmg_min_sum_recreation`] |
//! | 7.4 | min `max Rᵢ` | `C ≤ β` | [`problems::p4_min_max_recreation`] (binary search over MP) |
//! | 7.5 | min `C` | `ΣRᵢ ≤ θ` | [`lmg::lmg_min_storage`] |
//! | 7.6 | min `C` | `max Rᵢ ≤ θ` | [`mp::mp_min_storage`] (Modified Prim) |
//!
//! For the undirected `Φ = Δ` case, [`last::last_tree`] ports the
//! LAST algorithm (balancing MST weight against SPT distances). An exact
//! branch-and-bound solver ([`exact`]) validates the heuristics on small
//! instances, and [`gen`] produces triangle-inequality-respecting synthetic
//! instances from latent item sets. [`delta`] provides the concrete
//! delta encoding (item-level add/remove sets) used to build real matrices
//! from version contents.

// Index-based loops are kept where they mirror the paper's pseudocode
// (graph algorithms over parallel arrays).
#![allow(clippy::needless_range_loop)]

pub mod baselines;
pub mod budget;
pub mod delta;
pub mod exact;
pub mod gen;
pub mod graph;
pub mod last;
pub mod lmg;
pub mod mp;
pub mod problems;
pub mod solution;
pub mod spanning;

pub use baselines::gith;
pub use budget::{plan_with_budget, BudgetPlan};
pub use delta::{Delta, VersionContent};
pub use gen::{GenConfig, GraphShape};
pub use graph::{EdgeId, NodeId, StorageGraph, ROOT};
pub use problems::{
    p1_min_storage, p2_min_recreation, p3_min_sum_recreation, p4_min_max_recreation,
    p5_min_storage_sum, p6_min_storage_max,
};
pub use solution::StorageSolution;
