//! Synthetic storage-graph instances.
//!
//! Instances are derived from **latent item sets**: each version is a set
//! of items evolved from its parent by adds/removes, and revealed deltas
//! are measured as actual set differences. This guarantees the triangle
//! inequalities of Eq. 7.3/7.4 by construction (set differences are
//! (pseudo)metrics), which matters because the hardness and the heuristics
//! both assume realistic deltas (§7.3).

use crate::graph::StorageGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Shape of the latent version graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// Each version derives from the previous one.
    Chain,
    /// Random tree with bounded branching.
    Tree { branching: usize },
    /// Versions derive from a random earlier version (bushy DAG-ish tree).
    Random,
    /// All versions derive directly from version 1.
    Flat,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    pub versions: usize,
    pub shape: GraphShape,
    /// Initial item count of version 1.
    pub base_items: usize,
    /// Items added per derivation.
    pub adds_per_step: usize,
    /// Items removed per derivation.
    pub removes_per_step: usize,
    /// Extra random version pairs to reveal beyond the derivation edges.
    pub extra_edges: usize,
    /// Directed (asymmetric) deltas vs undirected (symmetric).
    pub directed: bool,
    /// If set, Φ is decoupled from Δ (Scenario 7.3): recreation costs get
    /// a random per-edge expansion factor in [1, 5].
    pub decouple_phi: bool,
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            versions: 50,
            shape: GraphShape::Random,
            base_items: 1000,
            adds_per_step: 60,
            removes_per_step: 20,
            extra_edges: 50,
            directed: true,
            decouple_phi: false,
            seed: 42,
        }
    }
}

impl GenConfig {
    /// Build the storage graph (and discard the latent sets).
    pub fn build(&self) -> StorageGraph {
        self.build_with_sets().0
    }

    /// Build the storage graph, also returning the latent item sets
    /// (version index 0 unused).
    pub fn build_with_sets(&self) -> (StorageGraph, Vec<Vec<u64>>) {
        assert!(self.versions >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut next_item: u64;
        let mut sets: Vec<Vec<u64>> = vec![Vec::new()]; // index 0 unused

        // Version 1: base items.
        let mut base: Vec<u64> = (0..self.base_items as u64).collect();
        next_item = self.base_items as u64;
        base.sort_unstable();
        sets.push(base);

        // Derivation structure.
        let mut parent_of: Vec<usize> = vec![0, 0]; // index 0, 1 unused/root
        for v in 2..=self.versions {
            let parent = match self.shape {
                GraphShape::Chain => v - 1,
                GraphShape::Flat => 1,
                GraphShape::Random => rng.random_range(1..v),
                GraphShape::Tree { branching } => {
                    // Pick among recent versions with bounded fan-out.
                    let lo = v.saturating_sub(branching * 2).max(1);
                    rng.random_range(lo..v)
                }
            };
            parent_of.push(parent);
            let mut set: HashSet<u64> = sets[parent].iter().copied().collect();
            for _ in 0..self.removes_per_step.min(set.len() / 2) {
                let idx = rng.random_range(0..sets[parent].len());
                set.remove(&sets[parent][idx]);
            }
            for _ in 0..self.adds_per_step {
                set.insert(next_item);
                next_item += 1;
            }
            let mut sorted: Vec<u64> = set.into_iter().collect();
            sorted.sort_unstable();
            sets.push(sorted);
        }

        let mut g = StorageGraph::new(self.versions, !self.directed);
        let phi_factor = |rng: &mut StdRng| -> u64 {
            if self.decouple_phi {
                rng.random_range(1..=5)
            } else {
                1
            }
        };

        // Materialization edges: Δᵢᵢ = |set|, Φᵢᵢ = |set| (× factor).
        for v in 1..=self.versions {
            let size = sets[v].len() as u64;
            let f = phi_factor(&mut rng);
            g.add_materialization(v, size.max(1), (size * f).max(1));
        }

        // Reveal: derivation edges + random extra pairs.
        let mut revealed: HashSet<(usize, usize)> = HashSet::new();
        let reveal = |g: &mut StorageGraph,
                      rng: &mut StdRng,
                      revealed: &mut HashSet<(usize, usize)>,
                      a: usize,
                      b: usize,
                      sets: &[Vec<u64>],
                      directed: bool,
                      decouple: bool| {
            if a == b || !revealed.insert((a, b)) {
                return;
            }
            let only_b = diff_count(&sets[b], &sets[a]);
            let only_a = diff_count(&sets[a], &sets[b]);
            let f = if decouple { rng.random_range(1..=5) } else { 1 };
            if directed {
                // Forward delta a→b: store the records of b missing from a
                // plus tombstones for removed ones (count both, tombstones
                // cheap).
                let delta = (only_b + only_a / 8).max(1);
                let phi = (delta * f).max(1);
                g.add_delta(a, b, delta, phi);
                // Reverse direction revealed separately with its own cost.
                if revealed.insert((b, a)) {
                    let delta_rev = (only_a + only_b / 8).max(1);
                    g.add_delta(b, a, delta_rev, (delta_rev * f).max(1));
                }
            } else {
                // Symmetric delta: the full symmetric difference.
                let delta = (only_a + only_b).max(1);
                g.add_delta(a, b, delta, (delta * f).max(1));
            }
        };

        for v in 2..=self.versions {
            reveal(
                &mut g,
                &mut rng,
                &mut revealed,
                parent_of[v],
                v,
                &sets,
                self.directed,
                self.decouple_phi,
            );
        }
        for _ in 0..self.extra_edges {
            let a = rng.random_range(1..=self.versions);
            let b = rng.random_range(1..=self.versions);
            reveal(
                &mut g,
                &mut rng,
                &mut revealed,
                a,
                b,
                &sets,
                self.directed,
                self.decouple_phi,
            );
        }
        (g, sets)
    }
}

/// |a \ b| for sorted slices.
fn diff_count(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() {
        if j >= b.len() {
            n += (a.len() - i) as u64;
            break;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                n += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_connected_graphs() {
        for shape in [
            GraphShape::Chain,
            GraphShape::Flat,
            GraphShape::Random,
            GraphShape::Tree { branching: 3 },
        ] {
            let g = GenConfig {
                versions: 30,
                shape,
                ..GenConfig::default()
            }
            .build();
            assert!(g.is_connected(), "{shape:?} not connected");
            assert_eq!(g.num_versions(), 30);
        }
    }

    #[test]
    fn undirected_instances_satisfy_triangle_inequality() {
        let g = GenConfig {
            versions: 25,
            directed: false,
            extra_edges: 120,
            ..GenConfig::default()
        }
        .build();
        assert!(g.satisfies_triangle_inequality());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = GenConfig::default();
        let a = c.build();
        let b = c.build();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn decoupled_phi_inflates_recreation() {
        let base = GenConfig {
            versions: 20,
            decouple_phi: false,
            ..GenConfig::default()
        }
        .build();
        let dec = GenConfig {
            versions: 20,
            decouple_phi: true,
            ..GenConfig::default()
        }
        .build();
        let sum_ratio = |g: &StorageGraph| {
            g.edges()
                .iter()
                .map(|e| e.phi as f64 / e.delta as f64)
                .sum::<f64>()
                / g.num_edges() as f64
        };
        assert!(sum_ratio(&dec) > sum_ratio(&base));
    }

    #[test]
    fn deltas_smaller_than_materialization_along_chain() {
        let g = GenConfig {
            versions: 10,
            shape: GraphShape::Chain,
            ..GenConfig::default()
        }
        .build();
        // The derivation delta into v (from its parent) must be far cheaper
        // than materializing v.
        for v in 2..=10usize {
            let mat = g
                .incoming(v)
                .iter()
                .map(|&e| g.edge(e))
                .find(|e| e.from == crate::graph::ROOT)
                .unwrap();
            let best_delta = g
                .incoming(v)
                .iter()
                .map(|&e| g.edge(e))
                .filter(|e| e.from != crate::graph::ROOT)
                .map(|e| e.delta)
                .min()
                .unwrap();
            assert!(best_delta < mat.delta / 2);
        }
    }
}
