//! Materialization budget: which versions stay fully materialized.
//!
//! The delta page format trades storage for recreation cost; the budget
//! knob `ORPHEUS_MAT_BUDGET` sets how much storage the engine may spend
//! as a *multiple of the minimum* (the MST storage `C_min` of Problem
//! 7.1). A factor of 1.0 is the all-delta extreme (minimum storage,
//! worst recreation); larger factors buy back recreation cost by keeping
//! more versions materialized. Planning dispatches to the LMG heuristic
//! for Problem 7.3 (minimize `ΣRᵢ` s.t. `C ≤ β`), which the
//! branch-and-bound in [`crate::exact`] validates on small instances.

use crate::problems::{p1_min_storage, p3_min_sum_recreation};
use crate::solution::StorageSolution;
use crate::StorageGraph;

/// Environment knob: materialization budget as a multiple of the
/// minimum storage (finite, ≥ 1.0).
pub const ENV: &str = "ORPHEUS_MAT_BUDGET";

/// Default budget factor when the knob is unset: storage may grow to
/// twice the MST minimum.
pub const DEFAULT_FACTOR: f64 = 2.0;

/// Parse a budget factor. Rejects non-numbers, non-finite values, and
/// factors below 1.0 (a budget under the minimum storage is infeasible
/// by definition — every version must be reachable).
pub fn parse_mat_budget(s: &str) -> Result<f64, String> {
    match s.trim().parse::<f64>() {
        Ok(f) if f.is_finite() && f >= 1.0 => Ok(f),
        _ => Err(format!(
            "{ENV} must be a finite number ≥ 1.0 (multiple of minimum storage), got {s:?}"
        )),
    }
}

/// Validate `ORPHEUS_MAT_BUDGET` for front ends that must not silently
/// ignore a typo'd knob.
pub fn check_env() -> Result<(), String> {
    match std::env::var(ENV) {
        Err(_) => Ok(()),
        Ok(s) => parse_mat_budget(&s).map(|_| ()),
    }
}

/// Silent-fallback accessor for library use; the CLI validates loudly
/// via [`check_env`] first.
pub fn env_budget() -> Option<f64> {
    std::env::var(ENV)
        .ok()
        .and_then(|s| parse_mat_budget(&s).ok())
}

/// A budgeted storage plan: which versions to materialize, which to
/// store as deltas, under `C ≤ β = factor × C_min`.
#[derive(Debug, Clone)]
pub struct BudgetPlan {
    /// The budget factor the plan was built with.
    pub factor: f64,
    /// Minimum achievable storage (MST, Problem 7.1).
    pub min_storage: u64,
    /// The absolute storage budget β handed to the solver.
    pub beta: u64,
    /// The chosen spanning tree: parents, per-version deltas, Φ.
    pub solution: StorageSolution,
}

impl BudgetPlan {
    /// Versions stored as full materializations (children of the
    /// virtual root), ascending.
    pub fn materialized(&self) -> Vec<usize> {
        (1..=self.solution.num_versions())
            .filter(|&v| self.solution.parent[v] == crate::ROOT)
            .collect()
    }
}

/// Plan storage under a materialization budget: β = `factor × C_min`
/// (rounded up), solved with LMG for Problem 7.3. `factor` must be
/// ≥ 1.0 ([`parse_mat_budget`] enforces this at the knob boundary).
pub fn plan_with_budget(graph: &StorageGraph, factor: f64) -> BudgetPlan {
    let min_storage = p1_min_storage(graph).storage_cost();
    let beta = (min_storage as f64 * factor).ceil() as u64;
    let solution = p3_min_sum_recreation(graph, beta);
    BudgetPlan {
        factor,
        min_storage,
        beta,
        solution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactProblem};
    use crate::gen::{GenConfig, GraphShape};

    #[test]
    fn parse_rejects_garbage_and_sub_minimum_budgets() {
        for bad in ["nope", "", "-1", "0", "0.5", "nan", "inf", "1e999"] {
            assert!(parse_mat_budget(bad).is_err(), "{bad:?} should be rejected");
        }
        assert_eq!(parse_mat_budget("1.0").unwrap(), 1.0);
        assert_eq!(parse_mat_budget(" 2.5 ").unwrap(), 2.5);
        assert_eq!(parse_mat_budget("10").unwrap(), 10.0);
    }

    #[test]
    fn plan_respects_the_budget_and_factor_one_is_min_storage() {
        let g = GenConfig {
            versions: 40,
            shape: GraphShape::Random,
            seed: 7,
            ..GenConfig::default()
        }
        .build();
        let tight = plan_with_budget(&g, 1.0);
        assert_eq!(tight.beta, tight.min_storage);
        assert!(tight.solution.storage_cost() <= tight.beta);
        let loose = plan_with_budget(&g, 3.0);
        assert!(loose.solution.storage_cost() <= loose.beta);
        // More budget never hurts the objective.
        assert!(loose.solution.sum_recreation() <= tight.solution.sum_recreation());
        // Loosening the budget can only add materializations.
        assert!(loose.materialized().len() >= tight.materialized().len());
        assert!(!tight.materialized().is_empty(), "some version must anchor");
    }

    #[test]
    fn budget_plan_is_near_optimal_against_branch_and_bound() {
        // The oracle leg: on exhaustively solvable instances the LMG plan
        // must respect the budget and stay within 1.5× of the true
        // optimum (the paper's observed LMG gap).
        let mut worst: f64 = 1.0;
        for seed in [1u64, 2, 3, 4, 5, 6] {
            let g = GenConfig {
                versions: 9,
                shape: GraphShape::Random,
                base_items: 200,
                adds_per_step: 30,
                removes_per_step: 10,
                extra_edges: 10,
                seed,
                ..GenConfig::default()
            }
            .build();
            for factor in [1.0, 1.5, 2.0] {
                let plan = plan_with_budget(&g, factor);
                assert!(plan.solution.storage_cost() <= plan.beta, "seed {seed}");
                assert!(plan.solution.consistent_with(&g), "seed {seed}");
                let exact = solve_exact(
                    &g,
                    ExactProblem::MinSumRecreationStorage { beta: plan.beta },
                )
                .expect("β ≥ C_min is always feasible");
                let ratio = plan.solution.sum_recreation() as f64 / exact.sum_recreation() as f64;
                assert!(
                    ratio >= 1.0 - 1e-9,
                    "heuristic beat the oracle? seed {seed}"
                );
                worst = worst.max(ratio);
            }
        }
        assert!(worst < 1.5, "LMG budget-plan gap {worst}");
    }
}
