//! MP — the Modified Prim's algorithm for the max-recreation problems
//! (7.6 directly; 7.4 via binary search), following §7.4.
//!
//! Grow the storage tree from the dummy root. At each step, among versions
//! not yet in the tree, attach the one whose cheapest feasible incoming
//! edge (recreation through the tree ≤ θ) has minimum storage cost Δ —
//! Prim's rule filtered by the recreation constraint.

use crate::graph::{StorageGraph, ROOT};
use crate::solution::StorageSolution;

/// Problem 7.6: minimize `C` subject to `max Rᵢ ≤ θ`.
///
/// Returns `None` if some version cannot be attached within θ (θ below the
/// cheapest materialization recreation of some version is infeasible).
pub fn mp_min_storage(graph: &StorageGraph, theta: u64) -> Option<StorageSolution> {
    let n = graph.num_versions();
    let mut sol = StorageSolution::new(n);
    let mut in_tree = vec![false; n + 1];
    let mut recreation = vec![0u64; n + 1];
    in_tree[ROOT] = true;
    let mut added = 0usize;
    // Best feasible incoming option per out-of-tree node, refreshed as the
    // tree grows: (delta, from, phi).
    while added < n {
        let mut best: Option<(u64, usize, usize, u64)> = None; // (delta, to, from, phi)
        for v in 1..=n {
            if in_tree[v] {
                continue;
            }
            for &eid in graph.incoming(v) {
                let e = graph.edge(eid);
                if !in_tree[e.from] {
                    continue;
                }
                let r = recreation[e.from].saturating_add(e.phi);
                if r > theta {
                    continue;
                }
                let cand = (e.delta, v, e.from, e.phi);
                if best.map(|b| cand < b).unwrap_or(true) {
                    best = Some(cand);
                }
            }
        }
        let (delta, v, from, phi) = best?;
        in_tree[v] = true;
        sol.parent[v] = from;
        sol.delta[v] = delta;
        sol.phi[v] = phi;
        recreation[v] = recreation[from] + phi;
        added += 1;
    }
    Some(sol)
}

/// Problem 7.4: minimize `max Rᵢ` subject to `C ≤ β`, by binary searching
/// the threshold θ over [`mp_min_storage`] runs (§7.4).
pub fn mp_min_max_recreation(graph: &StorageGraph, beta: u64) -> Option<StorageSolution> {
    // Bounds: the SPT's max recreation is the smallest achievable θ; the
    // MST's max recreation is always feasible storage-wise iff MST fits β.
    let spt = crate::spanning::dijkstra_spt(graph);
    let mut lo = spt.max_recreation();
    let mst = crate::spanning::min_storage_tree(graph);
    if mst.storage_cost() > beta {
        return None; // no tree fits the budget
    }
    let mut hi = mst.max_recreation().max(lo);
    let mut best: Option<StorageSolution> = None;
    // Check the lower extreme first.
    if let Some(sol) = mp_min_storage(graph, lo) {
        if sol.storage_cost() <= beta {
            return Some(sol);
        }
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match mp_min_storage(graph, mid) {
            Some(sol) if sol.storage_cost() <= beta => {
                hi = mid;
                best = Some(sol);
            }
            _ => {
                lo = mid + 1;
            }
        }
    }
    best.or_else(|| {
        let sol = mp_min_storage(graph, hi)?;
        (sol.storage_cost() <= beta).then_some(sol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};
    use crate::spanning::{dijkstra_spt, min_storage_tree};

    fn instance() -> StorageGraph {
        GenConfig {
            versions: 40,
            shape: GraphShape::Chain,
            extra_edges: 60,
            directed: true,
            decouple_phi: false,
            seed: 11,
            ..GenConfig::default()
        }
        .build()
    }

    #[test]
    fn p6_respects_theta() {
        let g = instance();
        let spt = dijkstra_spt(&g);
        for factor in [1.0, 1.5, 2.0, 4.0] {
            let theta = (spt.max_recreation() as f64 * factor) as u64;
            let sol = mp_min_storage(&g, theta).expect("feasible");
            assert!(sol.is_valid());
            assert!(sol.consistent_with(&g));
            assert!(
                sol.max_recreation() <= theta,
                "max R {} > θ {theta}",
                sol.max_recreation()
            );
        }
    }

    #[test]
    fn p6_storage_decreases_with_looser_theta() {
        let g = instance();
        let spt = dijkstra_spt(&g);
        let tight = mp_min_storage(&g, spt.max_recreation()).unwrap();
        let loose = mp_min_storage(&g, spt.max_recreation() * 8).unwrap();
        assert!(loose.storage_cost() <= tight.storage_cost());
    }

    #[test]
    fn p6_infeasible_theta_returns_none() {
        let g = instance();
        // θ = 0 cannot even materialize a version (Φᵢᵢ > 0).
        assert!(mp_min_storage(&g, 0).is_none());
    }

    #[test]
    fn p6_loose_theta_approaches_mst() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let sol = mp_min_storage(&g, u64::MAX / 2).unwrap();
        // MP with no effective constraint is plain Prim over Δ; on directed
        // instances it may exceed the optimal arborescence slightly.
        assert!(sol.storage_cost() <= mst.storage_cost() * 3 / 2);
    }

    #[test]
    fn p4_budget_controls_max_recreation() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let spt = dijkstra_spt(&g);
        let tight = mp_min_max_recreation(&g, mst.storage_cost()).unwrap();
        let loose = mp_min_max_recreation(&g, spt.storage_cost() * 2).unwrap();
        assert!(tight.is_valid() && loose.is_valid());
        assert!(loose.max_recreation() <= tight.max_recreation());
        assert!(tight.storage_cost() <= mst.storage_cost());
    }

    #[test]
    fn p4_infeasible_budget() {
        let g = instance();
        let mst = min_storage_tree(&g);
        assert!(mp_min_max_recreation(&g, mst.storage_cost() - 1).is_none());
    }
}
