//! LMG — the Local-Move Greedy heuristic for the sum-recreation problems
//! (7.3 and 7.5, Table 7.1).
//!
//! A *move* re-parents one version `v` from its current incoming edge to
//! another revealed incoming edge `(u → v)`. Because every descendant of
//! `v` recreates through `v`, the move changes the total recreation cost by
//! `(R'ᵥ − Rᵥ) · |subtree(v)|` and the storage cost by `Δᵤᵥ − Δ_cur`.
//! LMG starts from the extreme tree on the unconstrained side and applies
//! the move with the best benefit/cost ratio until the constraint binds.

use crate::graph::{StorageGraph, ROOT};
use crate::solution::StorageSolution;
use crate::spanning::{dijkstra_spt, min_storage_tree};

/// State for evaluating moves incrementally.
struct MoveState {
    sol: StorageSolution,
    recreation: Vec<u64>,
    subtree: Vec<u64>,
}

impl MoveState {
    fn new(sol: StorageSolution) -> Self {
        let recreation = sol.recreation_costs();
        let subtree = sol.subtree_sizes();
        MoveState {
            sol,
            recreation,
            subtree,
        }
    }

    fn refresh(&mut self) {
        self.recreation = self.sol.recreation_costs();
        self.subtree = self.sol.subtree_sizes();
    }

    /// Would re-parenting `v` under `u` create a cycle (u inside v's
    /// subtree)?
    fn creates_cycle(&self, v: usize, u: usize) -> bool {
        let mut cur = u;
        let n = self.sol.num_versions();
        let mut steps = 0;
        while cur != ROOT {
            if cur == v {
                return true;
            }
            cur = self.sol.parent[cur];
            steps += 1;
            if steps > n {
                return true;
            }
        }
        false
    }
}

/// A candidate re-parenting move.
#[derive(Debug, Clone, Copy)]
struct Move {
    v: usize,
    new_parent: usize,
    new_delta: u64,
    new_phi: u64,
    /// Change in storage cost (may be negative).
    d_storage: i64,
    /// Change in Σ recreation (may be negative).
    d_recreation: i128,
}

fn candidate_moves(graph: &StorageGraph, st: &MoveState) -> Vec<Move> {
    let mut out = Vec::new();
    for v in 1..=graph.num_versions() {
        let cur_parent = st.sol.parent[v];
        let r_parent_cur = st.recreation[v] - st.sol.phi[v];
        let _ = r_parent_cur;
        for &eid in graph.incoming(v) {
            let e = graph.edge(eid);
            if e.from == cur_parent && e.delta == st.sol.delta[v] && e.phi == st.sol.phi[v] {
                continue;
            }
            if st.creates_cycle(v, e.from) {
                continue;
            }
            let new_r = st.recreation[e.from] + e.phi;
            let d_r = (new_r as i128 - st.recreation[v] as i128) * st.subtree[v] as i128;
            let d_s = e.delta as i64 - st.sol.delta[v] as i64;
            out.push(Move {
                v,
                new_parent: e.from,
                new_delta: e.delta,
                new_phi: e.phi,
                d_storage: d_s,
                d_recreation: d_r,
            });
        }
    }
    out
}

fn apply(st: &mut MoveState, m: Move) {
    st.sol.parent[m.v] = m.new_parent;
    st.sol.delta[m.v] = m.new_delta;
    st.sol.phi[m.v] = m.new_phi;
    st.refresh();
}

/// Problem 7.3: minimize `ΣRᵢ` subject to `C ≤ β`.
///
/// Starts from the minimum-storage tree; repeatedly applies the move with
/// the largest recreation reduction per unit storage increase that still
/// fits the budget.
pub fn lmg_min_sum_recreation(graph: &StorageGraph, beta: u64) -> StorageSolution {
    let mut st = MoveState::new(min_storage_tree(graph));
    if st.sol.storage_cost() > beta {
        // β below the MST storage is infeasible; return the MST anyway
        // (the least-storage solution that exists).
        return st.sol;
    }
    loop {
        let storage = st.sol.storage_cost();
        let headroom = beta - storage;
        let mut best: Option<(f64, Move)> = None;
        for m in candidate_moves(graph, &st) {
            if m.d_recreation >= 0 {
                continue; // must reduce recreation
            }
            if m.d_storage > 0 && m.d_storage as u64 > headroom {
                continue;
            }
            // Benefit per storage unit; free or storage-saving moves rank
            // highest.
            let ratio = (-m.d_recreation) as f64 / (m.d_storage.max(1)) as f64;
            if best.map(|(b, _)| ratio > b).unwrap_or(true) {
                best = Some((ratio, m));
            }
        }
        match best {
            Some((_, m)) => apply(&mut st, m),
            None => break,
        }
    }
    st.sol
}

/// Problem 7.5: minimize `C` subject to `ΣRᵢ ≤ θ`.
///
/// Starts from the shortest-path tree (minimum ΣR); repeatedly applies the
/// move with the largest storage reduction per unit recreation increase
/// that keeps `ΣRᵢ ≤ θ`.
pub fn lmg_min_storage(graph: &StorageGraph, theta: u64) -> StorageSolution {
    let mut st = MoveState::new(dijkstra_spt(graph));
    if st.sol.sum_recreation() > theta {
        // θ below the SPT total is infeasible; return the SPT (least total
        // recreation achievable).
        return st.sol;
    }
    loop {
        let sum_r = st.sol.sum_recreation() as i128;
        let headroom = theta as i128 - sum_r;
        let mut best: Option<(f64, Move)> = None;
        for m in candidate_moves(graph, &st) {
            if m.d_storage >= 0 {
                continue; // must reduce storage
            }
            if m.d_recreation > 0 && m.d_recreation > headroom {
                continue;
            }
            let ratio = (-m.d_storage) as f64 / (m.d_recreation.max(1)) as f64;
            if best.map(|(b, _)| ratio > b).unwrap_or(true) {
                best = Some((ratio, m));
            }
        }
        match best {
            Some((_, m)) => apply(&mut st, m),
            None => break,
        }
    }
    st.sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};

    fn instance() -> StorageGraph {
        GenConfig {
            versions: 40,
            shape: GraphShape::Tree { branching: 3 },
            extra_edges: 40,
            directed: true,
            decouple_phi: false,
            seed: 7,
            ..GenConfig::default()
        }
        .build()
    }

    #[test]
    fn p3_respects_budget_and_improves_recreation() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let beta = mst.storage_cost() * 2;
        let sol = lmg_min_sum_recreation(&g, beta);
        assert!(sol.is_valid());
        assert!(sol.consistent_with(&g));
        assert!(sol.storage_cost() <= beta);
        assert!(
            sol.sum_recreation() <= mst.sum_recreation(),
            "LMG must not worsen recreation"
        );
    }

    #[test]
    fn p3_with_mst_budget_is_mst() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let sol = lmg_min_sum_recreation(&g, mst.storage_cost());
        // With zero headroom, only free moves are possible.
        assert!(sol.storage_cost() <= mst.storage_cost());
    }

    #[test]
    fn p3_budget_monotone() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let lo = lmg_min_sum_recreation(&g, mst.storage_cost() * 3 / 2);
        let hi = lmg_min_sum_recreation(&g, mst.storage_cost() * 4);
        assert!(hi.sum_recreation() <= lo.sum_recreation());
    }

    #[test]
    fn p5_respects_theta_and_reduces_storage() {
        let g = instance();
        let spt = dijkstra_spt(&g);
        let theta = spt.sum_recreation() * 2;
        let sol = lmg_min_storage(&g, theta);
        assert!(sol.is_valid());
        assert!(sol.consistent_with(&g));
        assert!(sol.sum_recreation() <= theta);
        assert!(sol.storage_cost() <= spt.storage_cost());
    }

    #[test]
    fn p5_converges_to_mst_with_loose_theta() {
        let g = instance();
        let mst = min_storage_tree(&g);
        let sol = lmg_min_storage(&g, u64::MAX / 4);
        // With an unbounded recreation budget, LMG should get close to the
        // MST storage (greedy may not reach it exactly).
        assert!(sol.storage_cost() <= mst.storage_cost() * 13 / 10);
    }
}
