//! Baseline storage heuristics the Chapter 7 solvers are compared against.
//!
//! **GitH** mimics source-code version control (git's pack heuristics,
//! cf. the Related Work discussion of Chapter 2): store each version as a
//! delta against its cheapest earlier version, but cap the delta-chain
//! depth — when a chain reaches the cap, materialize. Depth 0 degenerates
//! to materializing everything; depth → ∞ approaches a greedy spanning
//! structure with unbounded recreation cost.

use crate::graph::{StorageGraph, ROOT};
use crate::solution::StorageSolution;

/// Git-like heuristic: cheapest-incoming-delta chains capped at
/// `max_depth`. Assumes version ids reflect creation order (parents have
/// smaller ids), as they do for commits arriving over time.
pub fn gith(graph: &StorageGraph, max_depth: usize) -> StorageSolution {
    let n = graph.num_versions();
    let mut sol = StorageSolution::new(n);
    let mut depth = vec![0usize; n + 1];
    for v in 1..=n {
        // Cheapest incoming delta from an *earlier* version whose chain has
        // headroom.
        let mut best: Option<(u64, usize, u64)> = None; // (delta, from, phi)
        for &eid in graph.incoming(v) {
            let e = graph.edge(eid);
            if e.from == ROOT || e.from >= v {
                continue;
            }
            if depth[e.from] + 1 > max_depth {
                continue;
            }
            let cand = (e.delta, e.from, e.phi);
            if best.map(|b| cand < b).unwrap_or(true) {
                best = Some(cand);
            }
        }
        // Materialization fallback (always revealed).
        let mat = graph
            .incoming(v)
            .iter()
            .map(|&eid| graph.edge(eid))
            .filter(|e| e.from == ROOT)
            .min_by_key(|e| e.delta);
        match (best, mat) {
            (Some((delta, from, phi)), Some(mat)) if delta < mat.delta => {
                sol.parent[v] = from;
                sol.delta[v] = delta;
                sol.phi[v] = phi;
                depth[v] = depth[from] + 1;
            }
            (_, Some(mat)) => {
                sol.parent[v] = ROOT;
                sol.delta[v] = mat.delta;
                sol.phi[v] = mat.phi;
                depth[v] = 0;
            }
            (Some((delta, from, phi)), None) => {
                sol.parent[v] = from;
                sol.delta[v] = delta;
                sol.phi[v] = phi;
                depth[v] = depth[from] + 1;
            }
            (None, None) => panic!("version {v} has no incoming edge"),
        }
    }
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GraphShape};
    use crate::problems::{p1_min_storage, p2_min_recreation};

    fn instance() -> StorageGraph {
        GenConfig {
            versions: 120,
            shape: GraphShape::Chain,
            extra_edges: 100,
            seed: 23,
            ..GenConfig::default()
        }
        .build()
    }

    #[test]
    fn depth_zero_materializes_everything() {
        let g = instance();
        let sol = gith(&g, 0);
        assert!(sol.is_valid());
        assert_eq!(sol.num_materialized(), g.num_versions());
    }

    #[test]
    fn deeper_chains_trade_recreation_for_storage() {
        let g = instance();
        let mut prev_storage = u64::MAX;
        for depth in [0usize, 2, 8, 32, 1000] {
            let sol = gith(&g, depth);
            assert!(sol.is_valid());
            assert!(sol.consistent_with(&g));
            assert!(
                sol.storage_cost() <= prev_storage,
                "storage must shrink as chains deepen"
            );
            prev_storage = sol.storage_cost();
        }
        // Max recreation grows with depth.
        assert!(gith(&g, 1000).max_recreation() >= gith(&g, 2).max_recreation());
    }

    #[test]
    fn gith_is_dominated_by_the_solvers_at_the_extremes() {
        let g = instance();
        let mst = p1_min_storage(&g);
        let spt = p2_min_recreation(&g);
        // Unbounded GitH cannot beat the optimal arborescence on storage…
        assert!(gith(&g, usize::MAX).storage_cost() >= mst.storage_cost());
        // …and depth-0 GitH cannot beat the SPT on recreation.
        assert!(gith(&g, 0).sum_recreation() >= spt.sum_recreation());
    }

    #[test]
    fn chain_depth_respected() {
        let g = instance();
        for cap in [1usize, 3, 7] {
            let sol = gith(&g, cap);
            // Walk every path: no more than `cap` delta hops to a
            // materialized version.
            for v in 1..=g.num_versions() {
                let mut cur = v;
                let mut hops = 0;
                while sol.parent[cur] != ROOT {
                    cur = sol.parent[cur];
                    hops += 1;
                    assert!(hops <= cap, "chain of {v} exceeds cap {cap}");
                }
            }
        }
    }
}
