//! The augmented storage graph of §7.2.2.
//!
//! Nodes are versions `1..=n` plus the dummy root `V0 = 0`. An edge
//! `V0 → Vi` weighted `⟨Δᵢᵢ, Φᵢᵢ⟩` represents materializing `Vi`; an edge
//! `Vi → Vj` weighted `⟨Δᵢⱼ, Φᵢⱼ⟩` represents storing the delta from `Vi`
//! to `Vj`. Only *revealed* matrix entries become edges — computing all
//! pairwise deltas is infeasible, so instances carry the version-graph
//! edges plus however many extra pairs the caller revealed (§7.2.1).

/// A node: 0 is the dummy root; versions are `1..=n`.
pub type NodeId = usize;

/// Index into the edge list.
pub type EdgeId = usize;

/// The dummy root node `V0`.
pub const ROOT: NodeId = 0;

/// A revealed delta (or materialization) option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Storage cost Δ of keeping this delta.
    pub delta: u64,
    /// Recreation cost Φ of applying this delta.
    pub phi: u64,
}

/// A storage graph over `n` versions.
#[derive(Debug, Clone)]
pub struct StorageGraph {
    num_versions: usize,
    edges: Vec<Edge>,
    /// Incoming edge ids per node (how a node can be created).
    incoming: Vec<Vec<EdgeId>>,
    /// Outgoing edge ids per node.
    outgoing: Vec<Vec<EdgeId>>,
    /// Whether deltas are symmetric (undirected case): every non-root edge
    /// is stored once but usable in both directions.
    undirected: bool,
}

impl StorageGraph {
    /// An empty graph over `n` versions. `undirected` declares the deltas
    /// symmetric (Scenario 7.1): each added version-version edge is then
    /// traversable both ways.
    pub fn new(num_versions: usize, undirected: bool) -> Self {
        StorageGraph {
            num_versions,
            edges: Vec::new(),
            incoming: vec![Vec::new(); num_versions + 1],
            outgoing: vec![Vec::new(); num_versions + 1],
            undirected,
        }
    }

    pub fn num_versions(&self) -> usize {
        self.num_versions
    }

    /// Total node count including the dummy root.
    pub fn num_nodes(&self) -> usize {
        self.num_versions + 1
    }

    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// Register the materialization option for a version: `Δᵢᵢ`, `Φᵢᵢ`.
    pub fn add_materialization(&mut self, v: NodeId, delta: u64, phi: u64) {
        assert!(v >= 1 && v <= self.num_versions, "bad version {v}");
        self.push_edge(Edge {
            from: ROOT,
            to: v,
            delta,
            phi,
        });
    }

    /// Reveal a delta edge between two versions.
    pub fn add_delta(&mut self, from: NodeId, to: NodeId, delta: u64, phi: u64) {
        assert!(from >= 1 && from <= self.num_versions, "bad version {from}");
        assert!(to >= 1 && to <= self.num_versions, "bad version {to}");
        assert_ne!(from, to);
        self.push_edge(Edge {
            from,
            to,
            delta,
            phi,
        });
        if self.undirected {
            self.push_edge(Edge {
                from: to,
                to: from,
                delta,
                phi,
            });
        }
    }

    fn push_edge(&mut self, e: Edge) {
        let id = self.edges.len();
        self.incoming[e.to].push(id);
        self.outgoing[e.from].push(id);
        self.edges.push(e);
    }

    pub fn incoming(&self, v: NodeId) -> &[EdgeId] {
        &self.incoming[v]
    }

    pub fn outgoing(&self, v: NodeId) -> &[EdgeId] {
        &self.outgoing[v]
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Every version must be reachable from the root for any valid storage
    /// solution to exist.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.num_nodes()];
        seen[ROOT] = true;
        let mut stack = vec![ROOT];
        while let Some(u) = stack.pop() {
            for &eid in &self.outgoing[u] {
                let v = self.edges[eid].to;
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Check the triangle inequalities of Eq. 7.3/7.4 on every revealed
    /// edge triple (used by tests; O(V·E)). Only meaningful when Δ = Φ and
    /// the graph is undirected.
    pub fn satisfies_triangle_inequality(&self) -> bool {
        // Build a dense map of revealed delta values (min across parallel
        // edges).
        let n = self.num_nodes();
        let mut d = vec![vec![None::<u64>; n]; n];
        for e in &self.edges {
            let cur = &mut d[e.from][e.to];
            *cur = Some(cur.map_or(e.delta, |x| x.min(e.delta)));
        }
        for p in 0..n {
            for q in 0..n {
                let Some(dpq) = d[p][q] else { continue };
                for w in 0..n {
                    let (Some(dqw), Some(dpw)) = (d[q][w], d[p][w]) else {
                        continue;
                    };
                    if dpw > dpq + dqw {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-version example of Fig. 7.1 / Fig. 7.2.
    pub(crate) fn fig71() -> StorageGraph {
        let mut g = StorageGraph::new(5, false);
        g.add_materialization(1, 10000, 10000);
        g.add_materialization(2, 10100, 10100);
        g.add_materialization(3, 9700, 9700);
        g.add_materialization(4, 9800, 9800);
        g.add_materialization(5, 10120, 10120);
        g.add_delta(1, 2, 200, 200);
        g.add_delta(1, 3, 1000, 3000);
        g.add_delta(2, 4, 50, 400);
        g.add_delta(2, 5, 800, 2500);
        g.add_delta(3, 5, 200, 550);
        // The extra revealed entries of Fig. 7.2.
        g.add_delta(2, 1, 500, 600);
        g.add_delta(3, 2, 1100, 3200);
        g.add_delta(5, 4, 800, 2300);
        g.add_delta(4, 5, 900, 2500);
        g
    }

    #[test]
    fn construction_and_adjacency() {
        let g = fig71();
        assert_eq!(g.num_versions(), 5);
        assert_eq!(g.num_nodes(), 6);
        assert!(g.is_connected());
        assert_eq!(g.outgoing(ROOT).len(), 5);
    }

    #[test]
    fn incoming_counts() {
        let g = fig71();
        // v5 can be made from root, v2, v3, v4.
        assert_eq!(g.incoming(5).len(), 4);
        // v1 from root and v2.
        assert_eq!(g.incoming(1).len(), 2);
    }

    #[test]
    fn undirected_doubles_edges() {
        let mut g = StorageGraph::new(2, true);
        g.add_materialization(1, 10, 10);
        g.add_materialization(2, 12, 12);
        g.add_delta(1, 2, 3, 3);
        assert_eq!(g.incoming(1).len(), 2); // root + reverse delta
        assert_eq!(g.incoming(2).len(), 2);
    }

    #[test]
    fn disconnected_detected() {
        let mut g = StorageGraph::new(2, false);
        g.add_materialization(1, 5, 5);
        // v2 has no incoming edge at all.
        assert!(!g.is_connected());
    }
}
