//! `orpheus-lint`: a dependency-free static-analysis pass that enforces
//! the engine's correctness invariants.
//!
//! The WAL/recovery protocol, the RAII span layer, and the analytic cost
//! model all rest on conventions the compiler cannot check: no panicking
//! paths inside the storage engine, span guards actually held, cost
//! estimation deterministic, recovery tests never `#[ignore]`d, and
//! every suppression justified in writing. This crate tokenizes the
//! workspace's Rust sources (no rustc, no external parser) and enforces
//! the numbered rule catalog L001–L008; see `README.md` for the catalog
//! and `rules` for the implementation.
//!
//! Findings print as `file:line: Lxxx message` and the binary exits
//! non-zero when any survive suppression — `scripts/ci.sh` runs it as a
//! first-class gate.

pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use rules::{classify, lint_source, Finding, Rule};

/// A finding bound to the file it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    pub path: String,
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path,
            self.finding.line,
            self.finding.rule.id(),
            self.finding.msg
        )
    }
}

/// Lint every workspace source file under `root`. Returns the findings
/// and the number of files scanned.
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<FileFinding>, usize)> {
    let files = walk::workspace_files(root)?;
    let scanned = files.len();
    let mut out = Vec::new();
    for (rel, abs) in files {
        let src = fs::read_to_string(&abs)?;
        for finding in lint_source(&rel, &src) {
            out.push(FileFinding {
                path: rel.clone(),
                finding,
            });
        }
    }
    Ok((out, scanned))
}

/// Lint a single file. If its first line is a `//@path crates/...`
/// directive, that pseudo-path drives rule scoping (used by the rule
/// fixtures, which live outside the crates they imitate); otherwise the
/// given path is used as-is.
pub fn lint_file(path: &Path) -> io::Result<Vec<FileFinding>> {
    let src = fs::read_to_string(path)?;
    let rel = pseudo_path(&src).unwrap_or_else(|| path.to_string_lossy().into_owned());
    Ok(lint_source(&rel, &src)
        .into_iter()
        .map(|finding| FileFinding {
            path: rel.clone(),
            finding,
        })
        .collect())
}

/// Extract the `//@path …` directive from a fixture's first line.
pub fn pseudo_path(src: &str) -> Option<String> {
    let first = src.lines().next()?;
    let rest = first.strip_prefix("//@path ")?;
    Some(rest.trim().to_owned())
}
