//! `orpheus-lint`: a dependency-free static-analysis pass that enforces
//! the engine's correctness invariants.
//!
//! The WAL/recovery protocol, the RAII span layer, the analytic cost
//! model, and the multi-session server's lock discipline all rest on
//! conventions the compiler cannot check: no panicking paths inside the
//! storage engine, span guards actually held, cost estimation
//! deterministic, recovery tests never `#[ignore]`d, every suppression
//! justified, no lock-order cycles, and no guard held across an fsync.
//! This crate tokenizes the workspace's Rust sources (no rustc, no
//! external parser), builds a lightweight code model (`model`: fn/impl
//! boundaries, call sites, guard held-regions) and a workspace call +
//! lock-acquisition graph (`graph`), and enforces the numbered rule
//! catalog L001–L012; see `README.md` for the catalog.
//!
//! Findings print as `file:line: Lxxx message` (or as JSON with
//! `--json`) and the binary exits non-zero when any survive
//! suppression — `scripts/ci.sh` runs it as a first-class gate.

pub mod graph;
pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use rules::{classify, lint_source, Finding, Rule};

/// A finding bound to the file it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    pub path: String,
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path,
            self.finding.line,
            self.finding.rule.id(),
            self.finding.msg
        )
    }
}

/// Lint a set of sources *together*: per-file rules, then the graph
/// rules over the shared workspace model (so a lock-order cycle split
/// across two files is still a cycle), then per-file suppressions.
/// `files` holds `(workspace-relative path, contents)`; findings come
/// back sorted by `(path, line, rule)`.
pub fn lint_sources(files: &[(String, String)]) -> Vec<FileFinding> {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let masks: Vec<Vec<bool>> = lexed
        .iter()
        .map(|l| rules::test_region_mask(&l.toks))
        .collect();
    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .zip(&lexed)
        .zip(&masks)
        .map(|(((rel, _), lx), mask)| rules::per_file_findings(rel, lx, mask))
        .collect();
    let models: Vec<model::FileModel> = files
        .iter()
        .zip(&lexed)
        .zip(&masks)
        .map(|(((rel, _), lx), mask)| model::build(rel, lx, mask))
        .collect();
    for (file_idx, finding) in graph::analyze(&models) {
        per_file[file_idx].push(finding);
    }
    let mut out = Vec::new();
    for (((rel, _), lx), mut findings) in files.iter().zip(&lexed).zip(per_file) {
        rules::finalize(&mut findings, &lx.comments);
        out.extend(findings.into_iter().map(|finding| FileFinding {
            path: rel.clone(),
            finding,
        }));
    }
    out.sort_by(|a, b| {
        (&a.path, a.finding.line, a.finding.rule).cmp(&(&b.path, b.finding.line, b.finding.rule))
    });
    out
}

/// Lint every workspace source file under `root`. Returns the findings
/// and the number of files scanned.
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<FileFinding>, usize)> {
    let files = walk::workspace_files(root)?;
    let scanned = files.len();
    let mut sources = Vec::with_capacity(scanned);
    for (rel, abs) in files {
        sources.push((rel, fs::read_to_string(&abs)?));
    }
    Ok((lint_sources(&sources), scanned))
}

/// Lint one or more files *jointly* (shared call graph). If a file's
/// first line is a `//@path crates/...` directive, that pseudo-path
/// drives rule scoping (used by the rule fixtures, which live outside
/// the crates they imitate); otherwise the given path is used as-is.
pub fn lint_files(paths: &[&Path]) -> io::Result<Vec<FileFinding>> {
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let src = fs::read_to_string(path)?;
        let rel = pseudo_path(&src).unwrap_or_else(|| path.to_string_lossy().into_owned());
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources))
}

/// Lint a single file (see [`lint_files`]).
pub fn lint_file(path: &Path) -> io::Result<Vec<FileFinding>> {
    lint_files(&[path])
}

/// Extract the `//@path …` directive from a fixture's first line.
pub fn pseudo_path(src: &str) -> Option<String> {
    let first = src.lines().next()?;
    let rest = first.strip_prefix("//@path ")?;
    Some(rest.trim().to_owned())
}
