//! Workspace-wide analysis over the code model: the call graph, the
//! lock-acquisition graph, and the concurrency rules L009–L012.
//!
//! **Call graph.** Call sites resolve by name with a same-file-first
//! policy: a callee name that resolves inside its own file resolves
//! *only* there (so the four `locked()` helpers in obs/exec-pool never
//! cross-contaminate); otherwise every workspace function with that
//! name is a candidate. Method calls whose names are ubiquitous std
//! vocabulary (`push`, `get`, `clone`, …) never resolve across files —
//! resolving `.push(…)` to `Journal::push` would hallucinate an edge
//! into the journal ring from every vector append. Calls named `drop`
//! resolve to nothing: `std::mem::drop` is almost always what is meant.
//!
//! **Lock-acquisition graph.** Nodes are lock *classes* (one per
//! engine resource: `metrics-registry`, `journal-ring`, `buffer-pool`,
//! `session-table`, `commit-queue`, `pool-queue`, plus per-receiver
//! classes for unmapped files). There is an edge `A → B` when some
//! function holds a guard of class `A` across a point that acquires
//! `B` — either a direct acquisition in the same body or a call whose
//! (transitive) callees acquire `B`. "Held across call" is the edge
//! relation because that is the only way lock orders compose across
//! functions: the callee inherits the caller's held set. A cycle in
//! this graph is a lock-order inversion: two threads entering it from
//! different edges can each hold what the other wants (L009).
//!
//! **Fixpoints.** Four properties propagate over the call graph until
//! stable: the set of classes a function may acquire; whether it can
//! block (`fsync`/`sync_all`/`sync_data`, channel `recv`/
//! `recv_timeout`, no-arg `join`, or the WAL append path) for L010;
//! whether it creates an obs span for L012; and whether it *returns* a
//! guard (the `fn locked(…) -> MutexGuard` idiom), in which case a
//! `let`-bound call to it is an acquisition at the call site.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{Acquisition, CallSite, FileModel, GuardKind};
use crate::rules::{classify, Finding, Rule, VENDORED_SHIMS};

/// Method names that never resolve across files: std vocabulary that
/// would otherwise alias workspace functions (`.push(…)` is a Vec, not
/// `Journal::push`). Same-file resolution is still allowed.
const COMMON_METHOD_NAMES: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "default",
    "deref",
    "entry",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "flush",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "max",
    "min",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "parse",
    "pop",
    "position",
    "push",
    "read",
    "read_line",
    "read_to_string",
    "recv",
    "recv_timeout",
    "remove",
    "replace",
    "reserve",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_recv",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "with_capacity",
    "write",
    "write_all",
];

/// Callee names that block the calling thread regardless of arguments.
const BLOCKING_ANY_ARGS: &[&str] = &["sync_all", "sync_data", "fsync", "recv_timeout"];

/// Functions that are blocking by *definition site*: `(path fragment,
/// fn name)`. The WAL append/sync path is a blocking boundary even
/// before the fsync — a group-commit leader stalls every follower.
const BLOCKING_DEFS: &[(&str, &str)] = &[("/wal.rs", "append"), ("/wal.rs", "sync")];

/// Return-type identifiers that mark a fn as handing its caller a live
/// guard (`fn locked(…) -> MutexGuard<…>` and friends).
const GUARD_RET_TYPES: &[&str] = &[
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Ref",
    "RefMut",
    "PageLease",
];

fn returns_guard_type(f: &crate::model::FnModel) -> bool {
    f.ret_idents
        .iter()
        .any(|r| GUARD_RET_TYPES.contains(&r.as_str()))
}

/// `true` when a call site blocks by name alone (std / OS boundary the
/// call graph cannot see into).
fn direct_blocking(c: &CallSite) -> bool {
    if BLOCKING_ANY_ARGS.contains(&c.name.as_str()) {
        return true;
    }
    // No-arg only: `handle.join()` / `rx.recv()` block; `Vec::join(sep)`
    // and `Wal::recv(buf)`-style calls with arguments do not.
    c.no_args && c.is_method && (c.name == "join" || c.name == "recv")
}

type FnId = (usize, usize); // (file index, fn index)

/// Run the graph rules over the whole workspace model. Returns findings
/// tagged with the index of the file they belong to.
pub fn analyze(files: &[FileModel]) -> Vec<(usize, Finding)> {
    let ws = Workspace::build(files);
    let mut out = Vec::new();
    l009_lock_order_cycles(&ws, &mut out);
    l010_no_guard_across_blocking(&ws, &mut out);
    l011_no_discarded_results(&ws, &mut out);
    l012_command_entry_points_traced(&ws, &mut out);
    out
}

struct Workspace<'a> {
    files: &'a [FileModel],
    /// `fn name → every (file, fn)` defining it.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    /// Resolved call targets, parallel to each fn's `calls`.
    targets: BTreeMap<FnId, Vec<Vec<FnId>>>,
    /// Classes each fn may (transitively) acquire.
    acquires: BTreeMap<FnId, BTreeSet<String>>,
    /// Fns that may block (directly or transitively).
    blocking: BTreeSet<FnId>,
    /// Fns that (transitively) create an obs span.
    creates_span: BTreeSet<FnId>,
    /// Guard-returning fns and the guard they return.
    guard_source: BTreeMap<FnId, (GuardKind, String)>,
}

impl<'a> Workspace<'a> {
    fn build(files: &'a [FileModel]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(&f.name).or_default().push((fi, gi));
            }
        }
        let mut ws = Workspace {
            files,
            by_name,
            targets: BTreeMap::new(),
            acquires: BTreeMap::new(),
            blocking: BTreeSet::new(),
            creates_span: BTreeSet::new(),
            guard_source: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let resolved = f.calls.iter().map(|c| ws.resolve(fi, c)).collect();
                ws.targets.insert((fi, gi), resolved);
            }
        }
        ws.fixpoints();
        ws
    }

    /// Same-file-first name resolution; see the module docs.
    fn resolve(&self, file_idx: usize, c: &CallSite) -> Vec<FnId> {
        if c.name == "drop" {
            return Vec::new();
        }
        let Some(candidates) = self.by_name.get(c.name.as_str()) else {
            return Vec::new();
        };
        let in_file: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&(fi, _)| fi == file_idx)
            .collect();
        if !in_file.is_empty() {
            return in_file;
        }
        // Common std vocabulary never resolves across files — neither
        // `.push(…)` (a Vec) nor `Thing::new(…)` (any constructor).
        if COMMON_METHOD_NAMES.contains(&c.name.as_str()) {
            return Vec::new();
        }
        candidates.clone()
    }

    fn fn_of(&self, id: FnId) -> &'a crate::model::FnModel {
        &self.files[id.0].fns[id.1]
    }

    fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, file)| (0..file.fns.len()).map(move |gi| (fi, gi)))
    }

    fn fixpoints(&mut self) {
        // Seeds. Only Mutex/RwLock guards feed the lock graph: a RefCell
        // borrow or page lease cannot block another thread, so it cannot
        // be a deadlock edge (it stays in the model for other uses).
        for id in self.all_fns().collect::<Vec<_>>() {
            let f = self.fn_of(id);
            let path = &self.files[id.0].path;
            let mut acq = BTreeSet::new();
            for a in &f.acquisitions {
                if a.kind == GuardKind::Lock {
                    acq.insert(a.class.clone());
                }
                if a.kind == GuardKind::Span {
                    self.creates_span.insert(id);
                }
            }
            self.acquires.insert(id, acq);
            if f.calls.iter().any(direct_blocking)
                || BLOCKING_DEFS
                    .iter()
                    .any(|(frag, name)| path.contains(frag) && f.name == *name)
            {
                self.blocking.insert(id);
            }
            // A fn is guard-*returning* only when its signature says so:
            // a guard acquired in tail position inside a constructor that
            // returns an owning type (`fn open() -> Db`) does NOT hand
            // its caller a live guard.
            if let Some(g) = &f.tail_guard {
                if returns_guard_type(f) {
                    self.guard_source.insert(id, g.clone());
                }
            }
        }
        // Propagate until stable. The workspace has a few hundred fns,
        // so a simple iterate-to-fixpoint is plenty fast.
        loop {
            let mut changed = false;
            for id in self.all_fns().collect::<Vec<_>>() {
                let callee_ids: Vec<FnId> = self.targets[&id].iter().flatten().copied().collect();
                // acquires ∪= callees' acquires
                let mut gained: Vec<String> = Vec::new();
                for t in &callee_ids {
                    for cls in &self.acquires[t] {
                        if !self.acquires[&id].contains(cls) {
                            gained.push(cls.clone());
                        }
                    }
                }
                if !gained.is_empty() {
                    self.acquires.get_mut(&id).unwrap().extend(gained);
                    changed = true;
                }
                // blocking / creates_span propagate along calls
                if !self.blocking.contains(&id)
                    && callee_ids.iter().any(|t| self.blocking.contains(t))
                {
                    self.blocking.insert(id);
                    changed = true;
                }
                if !self.creates_span.contains(&id)
                    && callee_ids.iter().any(|t| self.creates_span.contains(t))
                {
                    self.creates_span.insert(id);
                    changed = true;
                }
                // guard sources propagate through tail calls, but only
                // into fns whose signature also returns a guard type
                if !self.guard_source.contains_key(&id) && returns_guard_type(self.fn_of(id)) {
                    let f = self.fn_of(id);
                    let tail_names: Vec<&String> = f.tail_calls.iter().collect();
                    let found = f
                        .calls
                        .iter()
                        .zip(&self.targets[&id])
                        .filter(|(c, _)| tail_names.contains(&&c.name))
                        .flat_map(|(_, ts)| ts.iter())
                        .find_map(|t| self.guard_source.get(t).cloned());
                    if let Some(g) = found {
                        self.guard_source.insert(id, g);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Direct lock acquisitions plus derived ones (a `let`-bound call
    /// to a guard-returning fn acquires that guard at the call site).
    /// Span guards, borrows, and leases are excluded — they do not
    /// block other threads, so they are not deadlock participants.
    fn effective_acquisitions(&self, id: FnId) -> Vec<Acquisition> {
        let f = self.fn_of(id);
        let mut out: Vec<Acquisition> = f
            .acquisitions
            .iter()
            .filter(|a| a.kind == GuardKind::Lock)
            .cloned()
            .collect();
        for (c, ts) in f.calls.iter().zip(&self.targets[&id]) {
            let source = ts
                .iter()
                .find_map(|t| self.guard_source.get(t))
                .filter(|(kind, _)| *kind == GuardKind::Lock);
            if let Some((kind, class)) = source {
                out.push(Acquisition {
                    kind: *kind,
                    class: class.clone(),
                    line: c.line,
                    tok: c.tok,
                    held_to: c.held_to,
                    binding: c.binding.clone(),
                });
            }
        }
        out.sort_by_key(|a| a.tok);
        out
    }

    /// Should this file produce graph-rule findings at all?
    fn reportable(&self, file_idx: usize) -> bool {
        let path = &self.files[file_idx].path;
        let vendored = VENDORED_SHIMS
            .iter()
            .any(|v| path.starts_with(&format!("crates/{v}/")));
        !vendored && !classify(path).test_code
    }
}

// ---------------------------------------------------------------------
// L009 — lock-order cycles
// ---------------------------------------------------------------------

/// One held-across edge `from → to` with the site that creates it.
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: u32,
    via: String,
}

fn l009_lock_order_cycles(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(usize, u32, String, String)> = BTreeSet::new();
    for id in ws.all_fns() {
        let f = ws.fn_of(id);
        if f.in_test || !ws.reportable(id.0) {
            continue;
        }
        let acqs = ws.effective_acquisitions(id);
        for a in &acqs {
            // Direct nested acquisition of a different class.
            for b in &acqs {
                if b.tok > a.tok && b.tok < a.held_to && b.class != a.class {
                    push_edge(&mut edges, &mut seen, a, &b.class, id.0, b.line, "acquired");
                }
            }
            // A call whose transitive callees acquire a different class.
            for (c, ts) in f.calls.iter().zip(&ws.targets[&id]) {
                if c.tok <= a.tok || c.tok >= a.held_to {
                    continue;
                }
                let mut classes: BTreeSet<&String> =
                    ts.iter().flat_map(|t| ws.acquires[t].iter()).collect();
                classes.retain(|cls| **cls != a.class);
                for cls in classes {
                    let via = format!("via `{}(…)`", c.name);
                    push_edge(&mut edges, &mut seen, a, cls, id.0, c.line, &via);
                }
            }
        }
    }

    // Build the class digraph and find its cycles (any edge whose head
    // reaches back to its tail participates in one).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    for e in &edges {
        // The path already ends at `e.from`, closing the cycle.
        if let Some(path) = path_between(&adj, e.to.as_str(), e.from.as_str()) {
            let mut cycle = vec![e.from.as_str()];
            cycle.extend(path);
            out.push((
                e.file,
                Finding {
                    line: e.line,
                    rule: Rule::L009,
                    msg: format!(
                        "acquiring `{}` while holding `{}` ({}) closes a \
                         lock-order cycle [{}]; two threads entering it from \
                         different edges deadlock — release the held guard \
                         first or fix one global order",
                        e.to,
                        e.from,
                        e.via,
                        cycle.join(" -> "),
                    ),
                },
            ));
        }
    }
}

fn push_edge(
    edges: &mut Vec<Edge>,
    seen: &mut BTreeSet<(usize, u32, String, String)>,
    held: &Acquisition,
    to: &str,
    file: usize,
    line: u32,
    via: &str,
) {
    if seen.insert((file, line, held.class.clone(), to.to_owned())) {
        edges.push(Edge {
            from: held.class.clone(),
            to: to.to_owned(),
            file,
            line,
            via: via.to_owned(),
        });
    }
}

/// Shortest path `from ⇝ to` in the class digraph (BFS, deterministic
/// because the adjacency sets are ordered). Excludes the start node
/// itself from the returned path's head.
fn path_between<'c>(
    adj: &BTreeMap<&'c str, BTreeSet<&'c str>>,
    from: &'c str,
    to: &str,
) -> Option<Vec<&'c str>> {
    let mut prev: BTreeMap<&'c str, &'c str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut visited = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if visited.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// L010 — no Mutex/RwLock guard held across a blocking boundary
// ---------------------------------------------------------------------

fn l010_no_guard_across_blocking(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    for id in ws.all_fns() {
        let f = ws.fn_of(id);
        if f.in_test || !ws.reportable(id.0) {
            continue;
        }
        let locks: Vec<Acquisition> = ws
            .effective_acquisitions(id)
            .into_iter()
            .filter(|a| a.kind == GuardKind::Lock)
            .collect();
        if locks.is_empty() {
            continue;
        }
        let mut reported: BTreeSet<u32> = BTreeSet::new();
        for a in &locks {
            for (c, ts) in f.calls.iter().zip(&ws.targets[&id]) {
                if c.tok <= a.tok || c.tok >= a.held_to {
                    continue;
                }
                let blocking = direct_blocking(c) || ts.iter().any(|t| ws.blocking.contains(t));
                if blocking && reported.insert(c.line) {
                    out.push((
                        id.0,
                        Finding {
                            line: c.line,
                            rule: Rule::L010,
                            msg: format!(
                                "`{}(…)` can block (fsync/WAL/recv/join) while \
                                 the mutex guard from line {} is held; every \
                                 thread contending for that lock stalls behind \
                                 the I/O — drop the guard before blocking",
                                c.name, a.line,
                            ),
                        },
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L011 — no silently discarded Result in engine library code
// ---------------------------------------------------------------------

fn l011_no_discarded_results(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    for id in ws.all_fns() {
        let f = ws.fn_of(id);
        let path = &ws.files[id.0].path;
        if f.in_test || !classify(path).engine_lib {
            continue;
        }
        for (c, ts) in f.calls.iter().zip(&ws.targets[&id]) {
            // `let _ = fallible();` where the callee's return type is a
            // Result: the error is dropped without a trace. (L002 also
            // fires on the `let _ =` shape; L011 adds *why* it matters.)
            if c.let_discard
                && ts
                    .iter()
                    .any(|t| ws.fn_of(*t).ret_idents.iter().any(|r| r == "Result"))
            {
                out.push((
                    id.0,
                    Finding {
                        line: c.line,
                        rule: Rule::L011,
                        msg: format!(
                            "`let _ =` discards the `Result` from `{}(…)`; \
                             propagate with `?`, handle the error, or \
                             suppress with a written reason",
                            c.name,
                        ),
                    },
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L012 — command entry points must be traced
// ---------------------------------------------------------------------

/// Crates whose public command surface must create obs spans.
const TRACED_CRATES: &[&str] = &["crates/orpheus-core/src", "crates/orpheus-server/src"];

fn l012_command_entry_points_traced(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    for id in ws.all_fns() {
        let f = ws.fn_of(id);
        let path = &ws.files[id.0].path;
        if f.in_test || !TRACED_CRATES.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        let command_entry = f.is_pub && f.ret_idents.iter().any(|r| r == "CommandOutput");
        if command_entry && !ws.creates_span.contains(&id) {
            out.push((
                id.0,
                Finding {
                    line: f.line,
                    rule: Rule::L012,
                    msg: format!(
                        "pub command entry point `{}` returns CommandOutput \
                         but never creates an obs span (directly or via its \
                         callees); trace it with `enter_request`/`span` or \
                         suppress with a written reason",
                        f.qual,
                    ),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::build;
    use crate::rules::test_region_mask;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_region_mask(&lexed.toks);
                build(path, &lexed, &mask)
            })
            .collect()
    }

    #[test]
    fn same_file_resolution_wins_over_workspace() {
        let ms = models(&[
            (
                "crates/demo/src/a.rs",
                "fn helper() {} fn caller() { helper(); }",
            ),
            ("crates/demo/src/b.rs", "fn helper() {}"),
        ]);
        let ws = Workspace::build(&ms);
        let caller = (0usize, 1usize);
        assert_eq!(ws.targets[&caller][0], vec![(0, 0)]);
    }

    #[test]
    fn blocking_propagates_through_the_call_graph() {
        let ms = models(&[(
            "crates/demo/src/a.rs",
            "fn leaf(f: &std::fs::File) { let _r = f.sync_data(); }\nfn mid(f: &std::fs::File) { leaf(f); }\nfn top(f: &std::fs::File) { mid(f); }",
        )]);
        let ws = Workspace::build(&ms);
        assert!(ws.blocking.contains(&(0, 0)));
        assert!(ws.blocking.contains(&(0, 2)));
    }

    #[test]
    fn guard_source_idiom_is_an_acquisition_at_the_call_site() {
        let ms = models(&[(
            "crates/demo/src/a.rs",
            "use std::sync::{Mutex, MutexGuard, PoisonError};\n\
             fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(PoisonError::into_inner) }\n\
             fn f(m: &Mutex<u32>, file: &std::fs::File) { let g = locked(m); let _r = file.sync_all(); let _v = *g; }",
        )]);
        let ws = Workspace::build(&ms);
        let mut out = Vec::new();
        l010_no_guard_across_blocking(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].1.rule, Rule::L010);
    }
}
