//! The rule catalog and the suppression engine.
//!
//! Each rule protects an invariant the compiler cannot check; the rule
//! ids are stable and documented in `crates/lint/README.md`:
//!
//! - **L001** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` in library code of the engine crates.
//! - **L002** — no `let _ = …` discards or bare guard-call statements in
//!   engine library code (an RAII span guard bound to `_` drops
//!   immediately and silently records zero time).
//! - **L003** — no `Instant::now` / `SystemTime` in `relstore::cost` /
//!   `relstore::plan` (cost estimates must be deterministic).
//! - **L004** — every `unsafe` carries a `// SAFETY:` comment.
//! - **L005** — no `#[ignore]` anywhere in the workspace.
//! - **L006** — every `#[allow(…)]` and every `// lint:allow(Lxxx)`
//!   suppression carries a written reason.
//! - **L007** — no raw `std::thread::{spawn, scope, Builder}` outside
//!   `crates/exec-pool` (all engine parallelism goes through the worker
//!   pool so joins and panics are accounted for; long-lived threads use
//!   `exec_pool::ServiceThread`, the sanctioned escape hatch).
//! - **L008** — no owned page copies (`PageSnapshot::Raw` construction or
//!   `.snapshot_page(…)` calls) on the morsel dispatch path
//!   (`crates/relstore/src/par*`): the parallel operators ship zero-copy
//!   `PageLease`s, and an owned copy per page is exactly the coordinator
//!   bottleneck that made 4-thread runs slower than sequential.
//! - **L009** — no lock-order cycles across the engine's lock classes
//!   (metrics registry, journal ring, buffer pool, session table,
//!   group-commit queue, pool queue): a cycle in the held-across-call
//!   graph is a potential deadlock (`graph.rs`).
//! - **L010** — no Mutex/RwLock guard held across a blocking boundary
//!   (`fsync`, the WAL append path, channel `recv`, thread `join`).
//! - **L011** — no silently discarded `Result` in engine library code
//!   (statement-level `.ok();`, `let _ =` on a Result-returning call).
//! - **L012** — every `pub fn` command entry point (returning
//!   `CommandOutput` in orpheus-core/orpheus-server) must create an obs
//!   span, directly or transitively, or carry a reasoned suppression.
//!
//! Suppression: a non-doc comment `// lint:allow(L001): reason` on the
//! finding's line or the line directly above silences that rule there.
//! A suppression without a reason does not suppress and is itself an
//! L006 finding.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// Crates whose library code must never panic (L001/L002): the storage
/// engine holds the user's only copy of the data.
pub const ENGINE_CRATES: &[&str] = &[
    "pagestore",
    "relstore",
    "orpheus-core",
    "obs",
    "exec-pool",
    "orpheus-server",
];

/// Vendored dependency shims; external API surface, exempt from the
/// engine-crate rules (but not from L004–L006).
pub const VENDORED_SHIMS: &[&str] = &["rand", "proptest", "criterion"];

/// Modules whose cost arithmetic must stay deterministic (L003).
const DETERMINISTIC_PREFIXES: &[&str] = &["crates/relstore/src/cost", "crates/relstore/src/plan"];

/// The morsel dispatch path, which must stay zero-copy (L008).
const PAR_PATH_PREFIXES: &[&str] = &["crates/relstore/src/par"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    L001,
    L002,
    L003,
    L004,
    L005,
    L006,
    L007,
    L008,
    L009,
    L010,
    L011,
    L012,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "L001" => Some(Rule::L001),
            "L002" => Some(Rule::L002),
            "L003" => Some(Rule::L003),
            "L004" => Some(Rule::L004),
            "L005" => Some(Rule::L005),
            "L006" => Some(Rule::L006),
            "L007" => Some(Rule::L007),
            "L008" => Some(Rule::L008),
            "L009" => Some(Rule::L009),
            "L010" => Some(Rule::L010),
            "L011" => Some(Rule::L011),
            "L012" => Some(Rule::L012),
            _ => None,
        }
    }
}

/// One lint finding, rendered as `file:line: Lxxx message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub line: u32,
    pub rule: Rule,
    pub msg: String,
}

/// What a file's path says about which rules apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code (`src/`) of one of [`ENGINE_CRATES`].
    pub engine_lib: bool,
    /// `crates/relstore/src/{cost,plan}*`.
    pub deterministic: bool,
    /// `crates/exec-pool/` — the one place allowed to create threads.
    pub pool_code: bool,
    /// `crates/relstore/src/par*` — the morsel dispatch path, which must
    /// ship zero-copy page leases, never owned snapshots (L008).
    pub par_path: bool,
    /// Integration-test source (a `tests/` directory): compiled only into
    /// test harnesses, so the engine/thread rules don't apply — like
    /// `#[cfg(test)]` regions, but path-scoped (integration tests carry
    /// `#[test]` without a `cfg(test)` wrapper).
    pub test_code: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let rel = rel_path.trim_start_matches("./").replace('\\', "/");
    let mut segs = rel.split('/');
    let (engine_lib, test_code) = match (segs.next(), segs.next(), segs.next()) {
        (Some("crates"), Some(krate), Some("src")) => (ENGINE_CRATES.contains(&krate), false),
        (Some("crates"), Some(_), Some("tests")) | (Some("tests"), _, _) => (false, true),
        _ => (false, false),
    };
    let deterministic = DETERMINISTIC_PREFIXES.iter().any(|p| rel.starts_with(p));
    let pool_code = rel.starts_with("crates/exec-pool/");
    let par_path = PAR_PATH_PREFIXES.iter().any(|p| rel.starts_with(p));
    FileClass {
        engine_lib,
        deterministic,
        pool_code,
        par_path,
        test_code,
    }
}

/// Lint one source file in isolation: the per-file rules plus the graph
/// rules run over just this file. Cross-file lock-order cycles need the
/// workspace entry point (`crate::lint_sources`), which shares the
/// call graph across files.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    crate::lint_sources(&[(rel_path.to_owned(), src.to_owned())])
        .into_iter()
        .map(|ff| ff.finding)
        .collect()
}

/// The token-level rules (L001–L008 plus L011's `.ok();` arm) for one
/// lexed file. The graph rules (L009/L010/L012 and L011's `let _ =`
/// arm) are added by `graph::analyze`; suppressions are applied by
/// [`finalize`] once both are in.
pub(crate) fn per_file_findings(rel_path: &str, lexed: &Lexed, in_test: &[bool]) -> Vec<Finding> {
    let class = classify(rel_path);
    let toks = &lexed.toks;
    let mut findings = Vec::new();

    if class.engine_lib {
        l001_no_panicking_calls(toks, in_test, &mut findings);
        l002_no_discarded_guards(toks, in_test, &mut findings);
        l011_no_statement_level_ok_discards(toks, in_test, &mut findings);
    }
    if class.deterministic {
        l003_deterministic_cost(toks, in_test, &mut findings);
    }
    l004_safety_comments(toks, &lexed.comments, &mut findings);
    l005_no_ignored_tests(toks, &mut findings);
    l006_allow_needs_reason(toks, &lexed.comments, &mut findings);
    if !class.pool_code && !class.test_code {
        l007_no_raw_threads(toks, in_test, &mut findings);
    }
    if class.par_path {
        l008_no_owned_snapshots_on_par_path(toks, in_test, &mut findings);
    }
    findings
}

/// Apply the suppression contract and order the file's findings.
pub(crate) fn finalize(findings: &mut Vec<Finding>, comments: &[Comment]) {
    let suppressions = collect_suppressions(comments, findings);
    findings.retain(|f| {
        !suppressions.iter().any(|s| {
            s.rules.contains(&f.rule) && (f.line == s.end_line || f.line == s.end_line + 1)
        })
    });
    findings.sort_by_key(|f| (f.line, f.rule));
}

// ---------------------------------------------------------------------
// cfg(test) regions
// ---------------------------------------------------------------------

/// Per-token flag: true inside an item annotated `#[cfg(test)]` (the
/// attribute itself included).
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            let close = matching_bracket(toks, i + 1);
            if attr_is_cfg_test(&toks[i + 2..close.min(toks.len())]) {
                // Skip any further attributes, then swallow the item.
                let mut j = close + 1;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && matches!(toks.get(j + 1), Some(t) if t.is_punct('['))
                {
                    j = matching_bracket(toks, j + 1) + 1;
                }
                let end = item_end(toks, j);
                for flag in mask.iter_mut().take((end + 1).min(toks.len())).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// `true` for attribute content that is exactly `cfg(test)`.
fn attr_is_cfg_test(content: &[Tok]) -> bool {
    content.len() == 4
        && content[0].is_ident("cfg")
        && content[1].is_punct('(')
        && content[2].is_ident("test")
        && content[3].is_punct(')')
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the token that ends the item starting at `start`: the `}`
/// closing its body, or a top-level `;` for braceless items.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut entered_brace = false;
    for (k, t) in toks.iter().enumerate().skip(start) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => {
                brace += 1;
                entered_brace = true;
            }
            TokKind::Punct('}') => {
                brace -= 1;
                if entered_brace && brace == 0 {
                    return k;
                }
            }
            TokKind::Punct(';') if !entered_brace && paren == 0 && bracket == 0 => {
                return k;
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const PANICKING_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn l001_no_panicking_calls(toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if let TokKind::Ident(name) = &toks[i].kind {
            let method_call = (name == "unwrap" || name == "expect")
                && i > 0
                && toks[i - 1].is_punct('.')
                && matches!(toks.get(i + 1), Some(t) if t.is_punct('('));
            if method_call {
                findings.push(Finding {
                    line: toks[i].line,
                    rule: Rule::L001,
                    msg: format!(
                        "`.{name}()` can panic in engine library code; \
                         return the crate's typed error instead"
                    ),
                });
            }
            let panicking_macro = PANICKING_MACROS.contains(&name.as_str())
                && matches!(toks.get(i + 1), Some(t) if t.is_punct('!'));
            if panicking_macro {
                findings.push(Finding {
                    line: toks[i].line,
                    rule: Rule::L001,
                    msg: format!(
                        "`{name}!` aborts the engine mid-operation; \
                         return the crate's typed error instead"
                    ),
                });
            }
        }
    }
}

/// Names that construct an obs RAII span guard.
fn is_guard_call(toks: &[Tok], i: usize) -> bool {
    (toks[i].is_ident("span") || toks[i].is_ident("enter"))
        && matches!(toks.get(i + 1), Some(t) if t.is_punct('('))
}

fn l002_no_discarded_guards(toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        // (a) `let _ = …;` — the wildcard never binds, so the value (and
        // any RAII guard inside it) drops at the `=`.
        if toks[i].is_ident("let")
            && matches!(toks.get(i + 1), Some(t) if t.is_ident("_"))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct('='))
        {
            let rhs_end = statement_end(toks, i + 3);
            let spanish = (i + 3..rhs_end).any(|j| is_guard_call(toks, j));
            let msg = if spanish {
                "`let _ = …` drops the obs span guard immediately (zero time \
                 recorded); bind it to a named `_guard`"
                    .to_owned()
            } else {
                "`let _ = …` silently discards the value (an RAII guard would \
                 drop immediately); use `drop(…)`, a named binding, or \
                 `// lint:allow(L002): reason`"
                    .to_owned()
            };
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L002,
                msg,
            });
        }
        // (b) a bare `….span("…");` statement: the guard is a temporary
        // that drops at the statement's semicolon.
        if is_guard_call(toks, i) && statement_initial_chain(toks, i) {
            let close = matching_paren(toks, i + 1);
            if matches!(toks.get(close + 1), Some(t) if t.is_punct(';')) {
                findings.push(Finding {
                    line: toks[i].line,
                    rule: Rule::L002,
                    msg: "span guard discarded at the end of the statement; \
                          bind it with `let _guard = …`"
                        .to_owned(),
                });
            }
        }
    }
}

/// L011 (token arm): a statement that ends in `.ok();` evaluated for
/// nothing converts an error into silence — `fallible().ok();` neither
/// propagates nor logs. (`let maybe = fallible().ok();` binds the
/// Option and is fine; the `let _ =` arm lives in `graph.rs` where the
/// callee's return type is known.)
fn l011_no_statement_level_ok_discards(
    toks: &[Tok],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let ok_call = toks[i].is_ident("ok")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('('))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(')'))
            && matches!(toks.get(i + 3), Some(t) if t.is_punct(';'));
        if !ok_call {
            continue;
        }
        // Only expression statements: a `let`, an assignment, or a
        // `return` consumes the Option.
        let mut start = i;
        while start > 0 {
            let prev = &toks[start - 1];
            if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
                break;
            }
            start -= 1;
        }
        let consumed = (start..i).any(|k| {
            toks[k].is_ident("let") || toks[k].is_ident("return") || toks[k].is_punct('=')
        });
        if !consumed {
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L011,
                msg: "`.ok();` silently discards this Result (the error is \
                      lost); propagate with `?`, handle it, or suppress with \
                      a written reason"
                    .to_owned(),
            });
        }
    }
}

/// Walk backwards over a `recv.path::to.` chain; true if the chain is the
/// start of a statement (preceded by `;`, `{`, `}`, or file start).
fn statement_initial_chain(toks: &[Tok], mut i: usize) -> bool {
    while i > 0 {
        let prev = &toks[i - 1];
        let chainlike =
            prev.is_punct('.') || prev.is_punct(':') || matches!(prev.kind, TokKind::Ident(_));
        if chainlike {
            i -= 1;
        } else {
            break;
        }
    }
    i == 0 || toks[i - 1].is_punct(';') || toks[i - 1].is_punct('{') || toks[i - 1].is_punct('}')
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `;` ending the statement starting at `start` (depth-aware).
fn statement_end(toks: &[Tok], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    for (k, t) in toks.iter().enumerate().skip(start) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => return k,
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn l003_deterministic_cost(toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_ident("Instant")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3), Some(t) if t.is_ident("now"))
        {
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L003,
                msg: "`Instant::now` in cost/plan code makes estimates \
                      nondeterministic; measure in obs spans instead"
                    .to_owned(),
            });
        }
        if toks[i].is_ident("SystemTime") {
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L003,
                msg: "`SystemTime` in cost/plan code makes estimates \
                      nondeterministic; thread time in as a parameter"
                    .to_owned(),
            });
        }
    }
}

/// Thread-creating names under `std::thread` that bypass the pool.
const RAW_THREAD_ENTRIES: &[&str] = &["spawn", "scope", "Builder"];

fn l007_no_raw_threads(toks: &[Tok], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_ident("thread")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3),
                Some(Tok { kind: TokKind::Ident(name), .. })
                    if RAW_THREAD_ENTRIES.contains(&name.as_str()))
        {
            let name = match &toks[i + 3].kind {
                TokKind::Ident(n) => n.as_str(),
                _ => "spawn",
            };
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L007,
                msg: format!(
                    "raw `thread::{name}` bypasses exec-pool \
                     (joins and worker panics go unaccounted); use \
                     `exec_pool::WorkerPool` for scoped fan-out or \
                     `exec_pool::ServiceThread` for named long-lived services"
                ),
            });
        }
    }
}

/// L008: the morsel dispatch path must hand workers zero-copy
/// `PageLease`s. Constructing `PageSnapshot::Raw` — or calling
/// `.snapshot_page(…)`, which constructs it behind the scenes —
/// re-introduces the coordinator's owned copy of every heap page, the
/// exact bottleneck that made 4-thread runs slower than sequential.
fn l008_no_owned_snapshots_on_par_path(
    toks: &[Tok],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_ident("PageSnapshot")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3), Some(t) if t.is_ident("Raw"))
        {
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L008,
                msg: "`PageSnapshot::Raw` on the morsel dispatch path is an \
                      owned page copy; ship zero-copy `PageLease` views \
                      (`Table::lease_page`) instead"
                    .to_owned(),
            });
        }
        if toks[i].is_ident("snapshot_page")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('('))
        {
            findings.push(Finding {
                line: toks[i].line,
                rule: Rule::L008,
                msg: "`.snapshot_page()` materialises an owned copy of every \
                      page before dispatch; use `Table::lease_page` views \
                      so clean pages ship to workers zero-copy"
                    .to_owned(),
            });
        }
    }
}

fn l004_safety_comments(toks: &[Tok], comments: &[Comment], findings: &mut Vec<Finding>) {
    for t in toks {
        if t.is_ident("unsafe") {
            // A SAFETY comment may span several `//` lines; accept it when
            // the contiguous run of comment lines it starts reaches the
            // `unsafe` (or it sits on the same line).
            let documented = comments.iter().any(|c| {
                !c.doc
                    && c.text.contains("SAFETY:")
                    && (c.line == t.line || comment_block_reaches(comments, c, t.line))
            });
            if !documented {
                findings.push(Finding {
                    line: t.line,
                    rule: Rule::L004,
                    msg: "`unsafe` without a `// SAFETY:` comment on the same \
                          line or the line above"
                        .to_owned(),
                });
            }
        }
    }
}

/// Indices `(hash, open_bracket)` of every outer or inner attribute.
fn attribute_starts(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('#') {
            continue;
        }
        if matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            out.push((i, i + 1));
        } else if matches!(toks.get(i + 1), Some(t) if t.is_punct('!'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct('['))
        {
            out.push((i, i + 2));
        }
    }
    out
}

/// True if the comment run starting at `c` — extended line-by-line through
/// directly adjacent non-doc comments — ends on the line above `target`.
fn comment_block_reaches(comments: &[Comment], c: &Comment, target: u32) -> bool {
    let mut end = c.end_line;
    loop {
        if end + 1 == target {
            return true;
        }
        match comments
            .iter()
            .find(|n| !n.doc && n.line == end + 1 && n.end_line >= n.line)
        {
            Some(next) => end = next.end_line,
            None => return false,
        }
    }
}

fn l005_no_ignored_tests(toks: &[Tok], findings: &mut Vec<Finding>) {
    for (hash, open) in attribute_starts(toks) {
        if matches!(toks.get(open + 1), Some(t) if t.is_ident("ignore")) {
            findings.push(Finding {
                line: toks[hash].line,
                rule: Rule::L005,
                msg: "`#[ignore]` hides lost coverage (recovery tests must \
                      run); fix or delete the test"
                    .to_owned(),
            });
        }
    }
}

fn l006_allow_needs_reason(toks: &[Tok], comments: &[Comment], findings: &mut Vec<Finding>) {
    for (hash, open) in attribute_starts(toks) {
        if matches!(toks.get(open + 1), Some(t) if t.is_ident("allow")) {
            let line = toks[hash].line;
            let reasoned = comments.iter().any(|c| {
                !c.doc
                    && !c.text.trim().is_empty()
                    && (c.line == line || c.end_line == line || c.end_line + 1 == line)
            });
            if !reasoned {
                findings.push(Finding {
                    line,
                    rule: Rule::L006,
                    msg: "`#[allow(…)]` without a reason comment on the same \
                          line or the line above"
                        .to_owned(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

struct Suppression {
    rules: Vec<Rule>,
    end_line: u32,
}

/// Parse `lint:allow(Lxxx[, Lyyy]): reason` comments. Malformed or
/// reasonless suppressions become L006 findings and suppress nothing.
fn collect_suppressions(comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[start + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                line: c.line,
                rule: Rule::L006,
                msg: "malformed `lint:allow(…)` suppression (missing `)`)".to_owned(),
            });
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for part in rest[..close].split(',') {
            match Rule::parse(part) {
                Some(r) => rules.push(r),
                None => {
                    findings.push(Finding {
                        line: c.line,
                        rule: Rule::L006,
                        msg: format!("unknown rule id `{}` in lint:allow", part.trim()),
                    });
                    bad = true;
                }
            }
        }
        let reason = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        if !reason.chars().any(|ch| ch.is_alphabetic()) {
            findings.push(Finding {
                line: c.line,
                rule: Rule::L006,
                msg: "`lint:allow(…)` suppression without a written reason".to_owned(),
            });
            continue;
        }
        if !bad && !rules.is_empty() {
            out.push(Suppression {
                rules,
                end_line: c.end_line,
            });
        }
    }
    out
}
