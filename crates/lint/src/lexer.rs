//! A lossy Rust tokenizer for lint rules.
//!
//! This is not a full Rust lexer: it recognizes exactly enough structure
//! for the rule catalog — identifiers, punctuation, string/char literals
//! (including raw and byte strings), numbers, lifetimes — and it keeps
//! every comment with its line range, because the suppression engine and
//! the `SAFETY:`/reason rules are comment-driven. Everything inside a
//! string or comment produces no identifier tokens, so a doc example
//! containing `.unwrap()` never trips L001.
//!
//! The approach follows `crates/vquel/src/lexer.rs`: a single forward
//! pass over a peekable character cursor.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `let`, `unwrap`, `_`, …).
    Ident(String),
    /// Single punctuation character (`#`, `[`, `(`, `.`, `!`, `=`, …).
    Punct(char),
    /// Any string, raw string, byte string, or char literal.
    Str,
    /// Numeric literal (integers and floats, lexed loosely).
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
}

impl Tok {
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// A comment with its line range (`line..=end_line`); `text` is the body
/// without the `//` / `/*` markers.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    /// Doc comments (`///`, `//!`, `/** */`, `/*! */`) document an item;
    /// they do not count as lint suppression or reason comments.
    pub doc: bool,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, keeping comments. Never fails: unterminated literals
/// or comments simply end at EOF (the linter must degrade gracefully on
/// code that does not compile yet).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => line_comment(&mut cur, &mut out),
            '/' if cur.peek_at(1) == Some('*') => block_comment(&mut cur, &mut out),
            '"' => {
                string_literal(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    line,
                });
            }
            '\'' => quote_token(&mut cur, &mut out, line),
            c if c.is_ascii_digit() => {
                number(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                });
            }
            c if is_ident_start(c) => ident_or_prefixed_literal(&mut cur, &mut out, line),
            other => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct(other),
                    line,
                });
            }
        }
    }
    out
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    cur.bump();
    cur.bump(); // consume `//`
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `///` and `//!` are doc comments; `////…` is a plain comment again.
    let doc = (text.starts_with('/') && !text.starts_with("//")) || text.starts_with('!');
    let body = text
        .trim_start_matches(['/', '!'])
        .trim_start()
        .trim_end()
        .to_owned();
    out.comments.push(Comment {
        line,
        end_line: line,
        text: body,
        doc,
    });
}

fn block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    cur.bump();
    cur.bump(); // consume `/*`
    let doc = matches!(cur.peek(), Some('*' | '!')) && cur.peek_at(1) != Some('*');
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            cur.bump();
            cur.bump();
            text.push_str("/*");
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        line,
        end_line: cur.line,
        text: text.trim().to_owned(),
        doc,
    });
}

/// Consume a `"…"` literal (escape-aware). The opening quote is at the
/// cursor.
fn string_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consume a raw string body `r##"…"##`. The cursor sits on the first
/// `#` or the opening quote.
fn raw_string_literal(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for ahead in 0..hashes {
                if cur.peek_at(ahead) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal). The
/// cursor sits on the opening quote.
fn quote_token(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let next = cur.peek_at(1);
    let after = cur.peek_at(2);
    let lifetime = matches!(next, Some(c) if is_ident_start(c)) && after != Some('\'');
    if lifetime {
        cur.bump(); // quote
        while matches!(cur.peek(), Some(c) if is_ident_continue(c)) {
            cur.bump();
        }
        out.toks.push(Tok {
            kind: TokKind::Lifetime,
            line,
        });
    } else {
        cur.bump(); // opening quote
        while let Some(c) = cur.bump() {
            match c {
                '\\' => {
                    cur.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        out.toks.push(Tok {
            kind: TokKind::Str,
            line,
        });
    }
}

/// Lex a number loosely: digits, `_`, type suffixes, and a decimal point
/// when followed by a digit (so `0..n` stays a range, not a float).
fn number(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        let in_number = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && matches!(cur.peek_at(1), Some(d) if d.is_ascii_digit()));
        if !in_number {
            break;
        }
        cur.bump();
    }
}

/// Lex an identifier, handling the literal prefixes `r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`, `b'…'`, and raw identifiers `r#ident`.
fn ident_or_prefixed_literal(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut name = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            name.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    match (name.as_str(), cur.peek()) {
        ("r" | "br", Some('"')) => {
            raw_string_literal(cur);
            out.toks.push(Tok {
                kind: TokKind::Str,
                line,
            });
        }
        ("r" | "br", Some('#')) => {
            // Count hashes: a quote after them means a raw string; an
            // identifier char means a raw identifier (`r#type`).
            let mut ahead = 0usize;
            while cur.peek_at(ahead) == Some('#') {
                ahead += 1;
            }
            if cur.peek_at(ahead) == Some('"') {
                raw_string_literal(cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    line,
                });
            } else {
                cur.bump(); // the `#`
                let mut raw = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        raw.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(raw),
                    line,
                });
            }
        }
        ("b", Some('"')) => {
            string_literal(cur);
            out.toks.push(Tok {
                kind: TokKind::Str,
                line,
            });
        }
        ("b", Some('\'')) => {
            cur.bump(); // opening quote
            while let Some(c) = cur.bump() {
                match c {
                    '\\' => {
                        cur.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                line,
            });
        }
        _ => out.toks.push(Tok {
            kind: TokKind::Ident(name),
            line,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // x.unwrap() in a comment
            /* panic!("no") */
            let s = "y.unwrap()";
            let r = r#"panic!()"#;
            let b = b"unwrap";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_owned()), "{ids:?}");
    }

    #[test]
    fn comments_keep_lines_and_doc_flags() {
        let lexed = lex("/// doc\n// SAFETY: fine\n/* block\nspans */ let x = 1;");
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].doc);
        assert!(!lexed.comments[1].doc);
        assert_eq!(lexed.comments[1].text, "SAFETY: fine");
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!((lexed.comments[2].line, lexed.comments[2].end_line), (3, 4));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn ranges_are_not_floats() {
        let lexed = lex("for i in 0..10 { a[i.0] = 1.5; }");
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        // `0..10` contributes two dots, `i.0` one; `1.5` is one number.
        assert_eq!(dots, 3);
        let nums = lexed.toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 4); // 0, 10, 0 (tuple index), 1.5
    }

    #[test]
    fn method_call_pattern_is_visible() {
        let lexed = lex("value.unwrap()");
        let t = &lexed.toks;
        assert!(t[0].is_ident("value"));
        assert!(t[1].is_punct('.'));
        assert!(t[2].is_ident("unwrap"));
        assert!(t[3].is_punct('('));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_panics() {
        // `r#"…"#` may contain bare quotes; `r##"…"##` may even contain
        // `"#`. Nothing inside may leak out as identifiers.
        let src = r####"let a = r#"has "quotes" and panic!()"#; let b = r##"ends "# not here"##; done"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "done"], "{ids:?}");
    }

    #[test]
    fn byte_strings_and_raw_byte_strings_are_opaque() {
        let src = r###"let x = b"unwrap() bytes"; let y = br#"panic!("x")"#; let c = b'q';"###;
        let lexed = lex(src);
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_owned()), "{ids:?}");
        let strs = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3, "b\"…\", br#\"…\"#, and b'…' are all literals");
    }

    #[test]
    fn shift_right_lexes_as_two_single_closers() {
        // `Vec<Vec<u8>>` ends in the same two characters as `x >> 2`;
        // emitting single `>` puncts lets the parser close two generic
        // levels without a dedicated `>>` token.
        let lexed = lex("let m: Vec<Vec<u8>> = x >> 2;");
        let gts = lexed.toks.iter().filter(|t| t.is_punct('>')).count();
        assert_eq!(gts, 4, "two generic closers + the shift's two");
    }

    #[test]
    fn raw_identifiers_lex_to_their_unprefixed_name() {
        let lexed = lex("let r#type = 1; r#match.lock();");
        let ids = idents("let r#type = 1; r#match.lock();");
        assert!(ids.contains(&"type".to_owned()), "{ids:?}");
        assert!(ids.contains(&"match".to_owned()), "{ids:?}");
        // The `.lock()` method-call shape stays visible through `r#`.
        let t = &lexed.toks;
        let dot = t.iter().position(|t| t.is_punct('.')).unwrap();
        assert!(t[dot + 1].is_ident("lock"));
    }

    #[test]
    fn nested_block_comments_and_unterminated_input() {
        let lexed = lex("/* a /* b */ c */ x");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks.len(), 1);
        // Unterminated constructs end at EOF without panicking.
        lex("\"open");
        lex("/* open");
        lex("r#\"open");
    }
}
