//! Machine-readable output for `orpheus-lint --json`.
//!
//! A writer-only vendoring of the `obs` crate's JSON module (the
//! workspace is offline and this crate stays dependency-free, so we
//! keep the ~40 lines of JSON we emit rather than linking anything).
//! The schema is pinned by `tests/cli.rs::json_output_matches_schema`,
//! which parses this output back with `obs::json`:
//!
//! ```json
//! {
//!   "schema": "orpheus-lint/1",
//!   "files_scanned": 42,
//!   "findings": [
//!     {"path": "crates/x/src/a.rs", "line": 7, "rule": "L001", "msg": "…"}
//!   ]
//! }
//! ```
//!
//! Findings are already sorted by `(path, line, rule)` by
//! `lint_sources`, so the output is stable across runs.

use crate::FileFinding;

/// Current schema identifier; bump the suffix on breaking changes.
pub const SCHEMA: &str = "orpheus-lint/1";

/// Render the report document.
pub fn render(findings: &[FileFinding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    write_escaped(&mut out, SCHEMA);
    out.push_str(&format!(",\"files_scanned\":{files_scanned}"));
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        write_escaped(&mut out, &f.path);
        out.push_str(&format!(",\"line\":{}", f.finding.line));
        out.push_str(",\"rule\":");
        write_escaped(&mut out, f.finding.rule.id());
        out.push_str(",\"msg\":");
        write_escaped(&mut out, &f.finding.msg);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// String escaping per RFC 8259 (vendored from `obs::json`).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Rule};

    #[test]
    fn renders_escaped_and_ordered() {
        let findings = vec![FileFinding {
            path: "crates/x/src/a.rs".into(),
            finding: Finding {
                line: 3,
                rule: Rule::L001,
                msg: "has a \"quote\"".into(),
            },
        }];
        let doc = render(&findings, 7);
        assert!(doc.contains("\"schema\":\"orpheus-lint/1\""));
        assert!(doc.contains("\"files_scanned\":7"));
        assert!(doc.contains("\"rule\":\"L001\""));
        assert!(doc.contains("has a \\\"quote\\\""));
    }

    #[test]
    fn empty_report_is_valid() {
        assert_eq!(
            render(&[], 0),
            "{\"schema\":\"orpheus-lint/1\",\"files_scanned\":0,\"findings\":[]}\n"
        );
    }
}
