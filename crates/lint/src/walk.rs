//! Workspace file discovery.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS state, and
/// the lint fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "fixtures", "results"];

/// Collect every workspace `.rs` file under `root`, as
/// `(workspace-relative path, absolute path)`, sorted for deterministic
/// output. Only `src/` and `crates/` trees are linted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            visit(&dir, top, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let path = entry.path();
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(&path, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            out.push((child_rel, path));
        }
    }
    Ok(())
}
