//! A lightweight code model on top of the lexer: the item parser.
//!
//! The token-level rules (L001–L008) treat a file as a flat token
//! stream; the concurrency rules (L009–L012) need to know *which
//! function* a token belongs to, what that function calls, and which
//! guards it holds over which spans of code. This module parses the
//! token stream into just enough structure for that — `fn` / `impl` /
//! `mod` boundaries, per-function call sites, and guard-acquisition
//! sites (`.lock()`, `.borrow{,_mut}()`, `BufferPool::lease`,
//! `Recorder::enter*` / `.span(…)`) with a *held region* for each
//! guard — without becoming a Rust parser. Like the lexer it is lossy
//! and must degrade gracefully on code that does not compile.
//!
//! Held-region model (token indices into the file's token stream):
//!
//! - `let g = m.lock()…;` — held from the acquisition to the end of the
//!   enclosing block, or to an earlier `drop(g)`.
//! - `if let Ok(g) = m.lock() { … }` / `while let …` — held to the end
//!   of the statement's block.
//! - `match m.lock() { … }` — scrutinee temporaries live through the
//!   match, so the guard is held to the match's closing brace.
//! - any other temporary — held to the statement's `;`, or to the `{`
//!   opening an `if`/`while` body (condition temporaries drop there).
//!
//! The model records *every* call site with the same binding/held-region
//! information, because a call may turn out to be an acquisition once
//! the graph layer discovers guard-returning functions (the workspace's
//! `locked()` idiom).

use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::classify;

/// What kind of guard an acquisition site produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `Mutex::lock` (an `std` lock guard).
    Lock,
    /// `RefCell::borrow` / `borrow_mut`.
    Borrow,
    /// `BufferPool::lease` — a page lease pin.
    Lease,
    /// An obs span guard (`enter*` / `.span(…)`); excluded from the
    /// lock-order rules but recorded for completeness and L012.
    Span,
}

/// A direct guard acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    pub kind: GuardKind,
    /// Lock class (deadlock-analysis resource name), e.g.
    /// `metrics-registry` or `lockdemo.rs:order_a` for unmapped files.
    pub class: String,
    pub line: u32,
    /// Token index of the acquisition's method/function name.
    pub tok: usize,
    /// Exclusive end of the held region (token index).
    pub held_to: usize,
    /// `let`-binding name, if the guard is bound.
    pub binding: Option<String>,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the identifier directly before the `(`.
    pub name: String,
    /// Receiver identifier for `recv.name(…)` method calls.
    pub recv: Option<String>,
    /// True for `.name(…)` method calls (resolution is conservative for
    /// these: common std method names never resolve across files).
    pub is_method: bool,
    pub line: u32,
    pub tok: usize,
    /// Held region the call's result would occupy *if* the callee turns
    /// out to be a guard-returning function.
    pub held_to: usize,
    pub binding: Option<String>,
    /// `name()` with an empty argument list (distinguishes the blocking
    /// `handle.join()` from `Vec::join(sep)`).
    pub no_args: bool,
    /// The call's statement is `let _ = …;` — the value is discarded.
    pub let_discard: bool,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Bare name.
    pub name: String,
    /// `Type::name` inside an `impl` block, `mod::name` inside a named
    /// module, else the bare name. Display-only.
    pub qual: String,
    pub line: u32,
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region or a test-classified file.
    pub in_test: bool,
    /// Identifier tokens of the return type (empty when none).
    pub ret_idents: Vec<String>,
    /// Token range of the body: `(open_brace, close_brace)`; `None` for
    /// bodyless declarations.
    pub body: Option<(usize, usize)>,
    pub calls: Vec<CallSite>,
    pub acquisitions: Vec<Acquisition>,
    /// True when the function's tail expression contains a guard
    /// acquisition: callers receive the guard (`fn locked(…) ->
    /// MutexGuard` idiom). The graph layer extends this transitively.
    pub tail_guard: Option<(GuardKind, String)>,
    /// Call names appearing in the tail expression (for transitive
    /// guard-source discovery).
    pub tail_calls: Vec<String>,
}

/// The parsed model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative (or `//@path` pseudo) path.
    pub path: String,
    pub fns: Vec<FnModel>,
}

/// Files whose guards all protect one well-known engine resource. Any
/// `.lock()`/`.borrow*()` in these files maps to the named class; other
/// files fall back to a per-receiver class so unrelated mutexes stay
/// distinguishable.
const CLASS_BY_PATH: &[(&str, &str)] = &[
    ("crates/obs/src/metrics.rs", "metrics-registry"),
    ("crates/obs/src/journal.rs", "journal-ring"),
    ("crates/obs/src/span.rs", "span-tree"),
    ("crates/pagestore/src/buffer.rs", "buffer-pool"),
    ("crates/orpheus-server/src/server.rs", "session-table"),
    ("crates/orpheus-server/src/session.rs", "session-table"),
    ("crates/orpheus-server/src/engine.rs", "commit-queue"),
    ("crates/exec-pool/src/", "pool-queue"),
];

/// Names that create an obs span guard.
pub const SPAN_CALLS: &[&str] = &["enter", "enter_request", "enter_with", "span"];

/// Keywords that look like `name (` in the token stream but are not
/// calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "use", "pub", "crate", "super", "where", "impl", "trait", "struct", "enum", "mod",
    "const", "static", "unsafe", "extern", "async", "await", "dyn", "break", "continue", "type",
];

/// Resolve the lock class for an acquisition in `path` whose receiver
/// identifier is `recv`.
fn lock_class(path: &str, recv: Option<&str>) -> String {
    for (prefix, class) in CLASS_BY_PATH {
        if path.starts_with(prefix) {
            return (*class).to_owned();
        }
    }
    let stem = path.rsplit('/').next().unwrap_or(path);
    format!("{stem}:{}", recv.unwrap_or("anon"))
}

/// Build the code model for one lexed file. `in_test` is the
/// `#[cfg(test)]` token mask from `rules::test_region_mask`.
pub fn build(path: &str, lexed: &Lexed, in_test: &[bool]) -> FileModel {
    let toks = &lexed.toks;
    let class = classify(path);
    let enclosing_close = enclosing_block_close(toks);
    let mut fns = Vec::new();
    let mut fn_starts = Vec::new(); // body ranges, for nested-fn exclusion

    // Pass 1: locate every `fn` item and its body.
    let mut scopes: Vec<(String, usize)> = Vec::new(); // (name, close brace)
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, close)) = scopes.last() {
            if i > close {
                scopes.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("mod") {
            if let Some((name, open)) = scope_header(toks, i) {
                let close = matching_brace(toks, open);
                scopes.push((name, close));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(f) = parse_fn(toks, i, &scopes, in_test, class.test_code) {
                // Resume *inside* the body so nested `fn` items are
                // found too; pass 2 excludes their ranges from the
                // enclosing function's sites.
                let resume = f.0.body.map(|(open, _)| open + 1).unwrap_or(f.1);
                if let Some(body) = f.0.body {
                    fn_starts.push(body);
                }
                fns.push(f.0);
                i = resume;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: extract calls and acquisitions per body, skipping the
    // ranges of functions nested inside (their sites belong to them).
    for f in &mut fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        let nested: Vec<(usize, usize)> = fn_starts
            .iter()
            .copied()
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        extract_sites(path, toks, open, close, &nested, &enclosing_close, f);
    }
    FileModel {
        path: path.to_owned(),
        fns,
    }
}

/// For each token, the index of the `}` closing the innermost `{` that
/// encloses it (or `toks.len()` when not inside any brace).
fn enclosing_block_close(toks: &[Tok]) -> Vec<usize> {
    let closes = brace_closes(toks);
    let mut out = vec![toks.len(); toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(closes[k]);
        }
        out[k] = stack.last().copied().unwrap_or(toks.len());
        if t.is_punct('}') {
            stack.pop();
            // the `}` itself belongs to the block it closes
        }
    }
    out
}

/// For each `{` token, the index of its matching `}` (or the last token
/// when unbalanced).
fn brace_closes(toks: &[Tok]) -> Vec<usize> {
    let mut out = vec![toks.len().saturating_sub(1); toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(k);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                out[open] = k;
            }
        }
    }
    out
}

fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Parse an `impl`/`mod` header at `at`; returns the scope name and the
/// index of its opening `{`. `mod name;` declarations return `None`.
fn scope_header(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut name = String::new();
    let mut k = at + 1;
    let mut angle = 0i32;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('{') if angle == 0 => {
                return if name.is_empty() {
                    None
                } else {
                    Some((name, k))
                };
            }
            TokKind::Punct(';') if angle == 0 => return None,
            TokKind::Punct('<') => angle += 1,
            // `->`/`=>` never appear in a scope header's type position
            // at angle depth 0, but guard anyway.
            TokKind::Punct('>') if angle > 0 => angle -= 1,
            // `impl Trait for Type` — keep the *last* path segment seen
            // outside angle brackets, which is the implementing type.
            TokKind::Ident(id) if angle == 0 && id != "for" && id != "where" => {
                name = id.clone();
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parse the `fn` item whose `fn` keyword is at `at`. Returns the model
/// and the index to resume scanning from.
fn parse_fn(
    toks: &[Tok],
    at: usize,
    scopes: &[(String, usize)],
    in_test: &[bool],
    file_is_test: bool,
) -> Option<(FnModel, usize)> {
    let name = match toks.get(at + 1).map(|t| &t.kind) {
        Some(TokKind::Ident(n)) => n.clone(),
        _ => return None, // `fn(` type position
    };
    let is_pub = leading_qualifiers_contain_pub(toks, at);
    let mut k = at + 2;
    // Generic parameters: skip `<…>` with angle-depth tracking. A `>`
    // preceded by `-` or `=` is part of `->`/`=>` and closes nothing —
    // and since the lexer emits `>` one char at a time, `Vec<Vec<u8>>`
    // naturally closes two levels.
    if matches!(toks.get(k), Some(t) if t.is_punct('<')) {
        let mut depth = 0i32;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>')
                && !(k > 0 && (toks[k - 1].is_punct('-') || toks[k - 1].is_punct('=')))
            {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            } else if t.is_punct('{') || t.is_punct(';') {
                break; // malformed; bail out of the generics scan
            }
            k += 1;
        }
    }
    // Scan to the body `{` or declaration `;`, capturing return-type
    // identifiers between a paren-depth-0 `->` and `where`/body.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut in_ret = false;
    let mut ret_idents = Vec::new();
    let mut body_open = None;
    while k < toks.len() {
        let t = &toks[k];
        match &t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                body_open = Some(k);
                break;
            }
            TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
            TokKind::Punct('>')
                if paren == 0 && bracket == 0 && k > 0 && toks[k - 1].is_punct('-') =>
            {
                in_ret = true;
            }
            TokKind::Ident(id) if id == "where" && paren == 0 && bracket == 0 => {
                in_ret = false;
            }
            TokKind::Ident(id) if in_ret => ret_idents.push(id.clone()),
            _ => {}
        }
        k += 1;
    }
    let body = body_open.map(|open| (open, matching_brace(toks, open)));
    let qual = match scopes.last() {
        Some((scope, _)) => format!("{scope}::{name}"),
        None => name.clone(),
    };
    let end = body.map(|(_, close)| close).unwrap_or(k);
    let model = FnModel {
        name,
        qual,
        line: toks[at].line,
        is_pub,
        in_test: file_is_test || in_test.get(at).copied().unwrap_or(false),
        ret_idents,
        body,
        calls: Vec::new(),
        acquisitions: Vec::new(),
        tail_guard: None,
        tail_calls: Vec::new(),
    };
    Some((model, end + 1))
}

/// Walk backwards over the qualifier tokens before `fn` (`pub`,
/// `pub(crate)`, `const`, `unsafe`, `async`, `extern "C"`) looking for
/// `pub`.
fn leading_qualifiers_contain_pub(toks: &[Tok], fn_at: usize) -> bool {
    let mut k = fn_at;
    let mut budget = 8usize;
    while k > 0 && budget > 0 {
        k -= 1;
        budget -= 1;
        match &toks[k].kind {
            TokKind::Ident(id)
                if matches!(
                    id.as_str(),
                    "pub" | "crate" | "super" | "in" | "const" | "unsafe" | "async" | "extern"
                ) =>
            {
                if id == "pub" {
                    return true;
                }
            }
            TokKind::Punct('(') | TokKind::Punct(')') | TokKind::Str => {}
            _ => return false,
        }
    }
    false
}

/// Extract call sites and acquisitions from a body range, skipping
/// nested fn bodies.
#[allow(clippy::too_many_arguments)] // internal helper, reads better flat
fn extract_sites(
    path: &str,
    toks: &[Tok],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
    enclosing_close: &[usize],
    f: &mut FnModel,
) {
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
            i = nc + 1;
            continue;
        }
        let name = match &toks[i].kind {
            TokKind::Ident(n) => n.as_str(),
            _ => {
                i += 1;
                continue;
            }
        };
        let followed_by_paren = matches!(toks.get(i + 1), Some(t) if t.is_punct('('));
        if !followed_by_paren || NON_CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // `name!(…)` macros are not call sites (their argument tokens
        // still get scanned).
        if matches!(toks.get(i + 1), Some(t) if t.is_punct('!')) {
            i += 1;
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let recv = if is_method && i >= 2 {
            match &toks[i - 2].kind {
                TokKind::Ident(r) => Some(r.clone()),
                _ => None,
            }
        } else {
            None
        };
        let args_close = matching_paren_from(toks, i + 1);
        let no_args = args_close == i + 2;
        let (binding, held_to, let_discard) = held_region(toks, i, close, enclosing_close);
        let line = toks[i].line;

        let guard = match name {
            "lock" if is_method && no_args => Some(GuardKind::Lock),
            "borrow" | "borrow_mut" if is_method && no_args => Some(GuardKind::Borrow),
            "lease" | "lease_page" => Some(GuardKind::Lease),
            n if SPAN_CALLS.contains(&n) => Some(GuardKind::Span),
            _ => None,
        };
        if let Some(kind) = guard {
            let class = match kind {
                GuardKind::Lease => "buffer-pool".to_owned(),
                GuardKind::Span => "span-guard".to_owned(),
                _ => lock_class(path, recv.as_deref()),
            };
            f.acquisitions.push(Acquisition {
                kind,
                class,
                line,
                tok: i,
                held_to,
                binding,
            });
        } else {
            f.calls.push(CallSite {
                name: name.to_owned(),
                recv,
                is_method,
                line,
                tok: i,
                held_to,
                binding,
                no_args,
                let_discard,
            });
        }
        i += 1;
    }

    // Tail expression: tokens after the last body-top-level `;` (or the
    // whole body). A guard acquired there is returned to the caller.
    let tail_start = last_top_level_semi(toks, open, close).map_or(open + 1, |s| s + 1);
    f.tail_guard = f
        .acquisitions
        .iter()
        .find(|a| a.tok >= tail_start && a.tok < close && a.kind != GuardKind::Span)
        .map(|a| (a.kind, a.class.clone()));
    f.tail_calls = f
        .calls
        .iter()
        .filter(|c| c.tok >= tail_start && c.tok < close)
        .map(|c| c.name.clone())
        .collect();
}

/// Index of the last `;` at brace depth 1 inside `open..close`.
fn last_top_level_semi(toks: &[Tok], open: usize, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut last = None;
    for (k, t) in toks.iter().enumerate().take(close).skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(';') if depth == 1 => last = Some(k),
            _ => {}
        }
    }
    last
}

fn matching_paren_from(toks: &[Tok], at: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(at) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Compute the binding name, held-region end, and `let _ =` flag for a
/// potential guard produced at token `site`, per the module-level
/// held-region model.
fn held_region(
    toks: &[Tok],
    site: usize,
    body_close: usize,
    enclosing_close: &[usize],
) -> (Option<String>, usize, bool) {
    let start = statement_start(toks, site);
    let head = &toks[start];
    let head_is = |s: &str| head.is_ident(s);

    // Binding: a `let` between the statement start and the site.
    let binding = (start..site)
        .find(|&k| toks[k].is_ident("let"))
        .and_then(|let_at| binding_name(toks, let_at, site));

    if head_is("let") {
        match binding {
            Some(name) => {
                let block_end = enclosing_close
                    .get(site)
                    .copied()
                    .unwrap_or(body_close)
                    .min(body_close);
                return (
                    Some(name.clone()),
                    drop_site(toks, site, block_end, &name),
                    false,
                );
            }
            // `let _ = …` never binds: the guard drops at once.
            None => return (None, site + 1, true),
        }
    }
    if (head_is("if") || head_is("while")) && binding.is_some() {
        // `if let Ok(g) = …` — the guard lives for the statement's block.
        let name = binding.clone().unwrap_or_default();
        if let Some(block_open) = first_depth0_brace(toks, site, body_close) {
            let block_end = brace_close_from(toks, block_open).min(body_close);
            return (binding, drop_site(toks, site, block_end, &name), false);
        }
    }
    // Temporary: scan forward for the statement end. `match` scrutinee
    // temporaries live through the match block; `if`/`while` condition
    // temporaries drop at the block's `{`.
    let mut depth = 0i32;
    let mut k = site;
    while k < body_close {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') => {
                if depth == 0 {
                    return if head_is("match") {
                        (None, brace_close_from(toks, k).min(body_close), false)
                    } else {
                        (None, k, false)
                    };
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                if depth == 0 {
                    return (None, k, false);
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return (None, k, false),
            _ => {}
        }
        k += 1;
    }
    (None, body_close, false)
}

/// Walk back from `site` to the token after the previous `;`, `{`, or
/// `}` — the first token of the enclosing statement.
fn statement_start(toks: &[Tok], site: usize) -> usize {
    let mut k = site;
    while k > 0 {
        let prev = &toks[k - 1];
        if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
            return k;
        }
        k -= 1;
    }
    0
}

/// Extract the bound name from a `let` pattern: the last identifier
/// before the `=` (skipping `mut`/`ref`, so `Ok(g)` and `Some(mut g)`
/// both yield `g`). A `:` type annotation ends the pattern. Returns
/// `None` for `_`.
fn binding_name(toks: &[Tok], let_at: usize, before: usize) -> Option<String> {
    let mut name: Option<String> = None;
    for k in let_at + 1..before {
        match &toks[k].kind {
            TokKind::Punct('=') => break,
            TokKind::Punct(':')
                if !matches!(toks.get(k + 1), Some(t) if t.is_punct(':'))
                    && (k == 0 || !toks[k - 1].is_punct(':')) =>
            {
                break;
            }
            TokKind::Ident(id) if id != "mut" && id != "ref" && id != "_" => {
                name = Some(id.clone());
            }
            _ => {}
        }
    }
    name
}

/// First `{` at paren/bracket depth 0 after `site` (an `if let` /
/// `while let` statement's block).
fn first_depth0_brace(toks: &[Tok], site: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(limit).skip(site) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return Some(k),
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

fn brace_close_from(toks: &[Tok], open: usize) -> usize {
    matching_brace(toks, open)
}

/// An explicit `drop(name)` before `limit` ends the held region early
/// (the `drop` call itself is outside the region).
fn drop_site(toks: &[Tok], from: usize, limit: usize, name: &str) -> usize {
    for k in from..limit.min(toks.len()) {
        if toks[k].is_ident("drop")
            && matches!(toks.get(k + 1), Some(t) if t.is_punct('('))
            && matches!(toks.get(k + 2), Some(t) if t.is_ident(name))
            && matches!(toks.get(k + 3), Some(t) if t.is_punct(')'))
        {
            return k;
        }
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn model(path: &str, src: &str) -> FileModel {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.toks);
        build(path, &lexed, &mask)
    }

    #[test]
    fn finds_fns_and_impl_scope() {
        let m = model(
            "crates/demo/src/a.rs",
            "pub fn free() {}\nimpl Widget { fn helper(&self) {} pub fn go(&self) {} }",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(names, ["free", "Widget::helper", "Widget::go"]);
        assert!(m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
        assert!(m.fns[2].is_pub);
    }

    #[test]
    fn generics_with_shift_and_arrows_do_not_break_parsing() {
        let m = model(
            "crates/demo/src/a.rs",
            "fn f<T: Into<Vec<Vec<u8>>>, F: Fn() -> u32>(x: T, g: F) -> Result<Vec<u8>, String> { g(); Ok(Vec::new()) }\nfn after() {}",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "after"]);
        assert!(m.fns[0].ret_idents.iter().any(|i| i == "Result"));
    }

    #[test]
    fn let_bound_guard_held_to_block_end_or_drop() {
        let m = model(
            "crates/demo/src/a.rs",
            "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap_or_default(); work(); drop(g); after(); }",
        );
        let f = &m.fns[0];
        assert_eq!(f.acquisitions.len(), 1);
        let a = &f.acquisitions[0];
        assert_eq!(a.binding.as_deref(), Some("g"));
        let work = f.calls.iter().find(|c| c.name == "work").unwrap();
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(work.tok < a.held_to, "work() is inside the held region");
        assert!(after.tok > a.held_to, "after() is past drop(g)");
    }

    #[test]
    fn match_scrutinee_temporaries_live_through_the_match() {
        let m = model(
            "crates/demo/src/a.rs",
            "fn f(m: &std::sync::Mutex<u32>) { match m.lock() { _ => inside() } outside(); }",
        );
        let f = &m.fns[0];
        let a = &f.acquisitions[0];
        let inside = f.calls.iter().find(|c| c.name == "inside").unwrap();
        let outside = f.calls.iter().find(|c| c.name == "outside").unwrap();
        assert!(inside.tok < a.held_to);
        assert!(outside.tok > a.held_to);
    }

    #[test]
    fn guard_returning_fn_is_detected_via_tail_expression() {
        let m = model(
            "crates/demo/src/a.rs",
            "fn locked(m: &std::sync::Mutex<u32>) -> std::sync::MutexGuard<'_, u32> { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }",
        );
        assert!(matches!(m.fns[0].tail_guard, Some((GuardKind::Lock, _))));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let m = model(
            "crates/demo/src/a.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }",
        );
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }
}
