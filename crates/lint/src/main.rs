//! `orpheus-lint` — lint the workspace (or single files) against the
//! L001–L008 rule catalog. Exit codes: 0 clean, 1 findings, 2 usage or
//! I/O error.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let started = Instant::now();
    match args.first().map(String::as_str) {
        Some("--help" | "-h") => {
            println!(
                "usage: orpheus-lint [ROOT]        lint the workspace rooted at ROOT (default .)\n\
                 \x20      orpheus-lint --file F...  lint single files (//@path directive aware)"
            );
            ExitCode::SUCCESS
        }
        Some("--file") => {
            if args.len() < 2 {
                eprintln!("orpheus-lint: --file needs at least one path");
                return ExitCode::from(2);
            }
            let mut findings = Vec::new();
            for f in &args[1..] {
                match lint::lint_file(Path::new(f)) {
                    Ok(mut fs) => findings.append(&mut fs),
                    Err(e) => {
                        eprintln!("orpheus-lint: {f}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            report(findings, args.len() - 1, started)
        }
        root => {
            let root = Path::new(root.unwrap_or("."));
            match lint::lint_workspace(root) {
                Ok((findings, scanned)) => report(findings, scanned, started),
                Err(e) => {
                    eprintln!("orpheus-lint: {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
    }
}

fn report(findings: Vec<lint::FileFinding>, files: usize, started: Instant) -> ExitCode {
    for f in &findings {
        println!("{f}");
    }
    eprintln!(
        "orpheus-lint: {files} files, {} finding(s) in {:.1} ms",
        findings.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
