//! `orpheus-lint` — lint the workspace (or single files) against the
//! L001–L012 rule catalog. Exit codes: 0 clean, 1 findings, 2 usage or
//! I/O error.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let started = Instant::now();
    let mut json = false;
    let mut file_mode = false;
    let mut operands: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: orpheus-lint [--json] [ROOT]        lint the workspace rooted at ROOT (default .)\n\
                     \x20      orpheus-lint [--json] --file F...  lint files jointly (//@path directive aware)"
                );
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--file" => file_mode = true,
            _ => operands.push(arg),
        }
    }
    if file_mode {
        if operands.is_empty() {
            eprintln!("orpheus-lint: --file needs at least one path");
            return ExitCode::from(2);
        }
        let paths: Vec<&Path> = operands.iter().map(Path::new).collect();
        match lint::lint_files(&paths) {
            Ok(findings) => report(findings, paths.len(), json, started),
            Err(e) => {
                eprintln!("orpheus-lint: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        if operands.len() > 1 {
            eprintln!("orpheus-lint: expected at most one ROOT");
            return ExitCode::from(2);
        }
        let root = Path::new(operands.first().map(String::as_str).unwrap_or("."));
        match lint::lint_workspace(root) {
            Ok((findings, scanned)) => report(findings, scanned, json, started),
            Err(e) => {
                eprintln!("orpheus-lint: {}: {e}", root.display());
                ExitCode::from(2)
            }
        }
    }
}

fn report(
    findings: Vec<lint::FileFinding>,
    files: usize,
    json: bool,
    started: Instant,
) -> ExitCode {
    if json {
        print!("{}", lint::json::render(&findings, files));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    eprintln!(
        "orpheus-lint: {files} files, {} finding(s) in {:.1} ms",
        findings.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
