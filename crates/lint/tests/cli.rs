//! Exit-code contract of the `orpheus-lint` binary: 0 clean, 1 findings,
//! 2 usage errors — `scripts/ci.sh` depends on this.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orpheus-lint"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let out = bin().arg(root).output().unwrap();
    assert!(
        out.status.success(),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn each_firing_fixture_exits_one_with_its_rule_on_stdout() {
    for (name, rule) in [
        ("l001_fire.rs", "L001"),
        ("l002_fire.rs", "L002"),
        ("l003_fire.rs", "L003"),
        ("l004_fire.rs", "L004"),
        ("l005_fire.rs", "L005"),
        ("l006_fire.rs", "L006"),
        ("suppress_bad.rs", "L006"),
    ] {
        let out = bin().args(["--file", &fixture(name)]).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{name} must fail the gate");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "{name} stdout:\n{stdout}");
    }
}

#[test]
fn clean_fixtures_exit_zero() {
    for name in [
        "l001_clean.rs",
        "l002_clean.rs",
        "l003_clean.rs",
        "l004_clean.rs",
        "l005_clean.rs",
        "l006_clean.rs",
        "suppress_ok.rs",
    ] {
        let out = bin().args(["--file", &fixture(name)]).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{name} must pass the gate");
    }
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().arg("--file").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["--file", "no/such/file.rs"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
