//! Exit-code contract of the `orpheus-lint` binary: 0 clean, 1 findings,
//! 2 usage errors — `scripts/ci.sh` depends on this.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orpheus-lint"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let out = bin().arg(root).output().unwrap();
    assert!(
        out.status.success(),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn each_firing_fixture_exits_one_with_its_rule_on_stdout() {
    for (name, rule) in [
        ("l001_fire.rs", "L001"),
        ("l002_fire.rs", "L002"),
        ("l003_fire.rs", "L003"),
        ("l004_fire.rs", "L004"),
        ("l005_fire.rs", "L005"),
        ("l006_fire.rs", "L006"),
        ("l007_fire.rs", "L007"),
        ("l008_fire.rs", "L008"),
        ("l009_fire.rs", "L009"),
        ("l010_fire.rs", "L010"),
        ("l011_fire.rs", "L011"),
        ("l012_fire.rs", "L012"),
        ("suppress_bad.rs", "L006"),
    ] {
        let out = bin().args(["--file", &fixture(name)]).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{name} must fail the gate");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "{name} stdout:\n{stdout}");
    }
}

#[test]
fn clean_fixtures_exit_zero() {
    for name in [
        "l001_clean.rs",
        "l002_clean.rs",
        "l003_clean.rs",
        "l004_clean.rs",
        "l005_clean.rs",
        "l006_clean.rs",
        "l007_clean.rs",
        "l008_clean.rs",
        "l009_clean.rs",
        "l010_clean.rs",
        "l011_clean.rs",
        "l012_clean.rs",
        "suppress_ok.rs",
    ] {
        let out = bin().args(["--file", &fixture(name)]).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{name} must pass the gate");
    }
}

/// Pins the `--json` schema (`orpheus-lint/1`): the document and each
/// finding object must keep their keys, parsed back with `obs::json` —
/// the same parser the engine's tooling uses on this output.
#[test]
fn json_output_matches_schema() {
    let out = bin()
        .args(["--json", "--file", &fixture("l001_fire.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let missing = obs::json::missing_keys(&text, &["schema", "files_scanned", "findings"])
        .expect("--json must emit parseable JSON");
    assert!(missing.is_empty(), "missing keys: {missing:?}");
    let doc = obs::json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("orpheus-lint/1")
    );
    let findings = match doc.get("findings") {
        Some(obs::json::Json::Arr(items)) => items,
        other => panic!("findings must be an array, got {other:?}"),
    };
    assert!(!findings.is_empty(), "l001_fire must produce findings");
    for f in findings {
        for key in ["path", "line", "rule", "msg"] {
            assert!(f.get(key).is_some(), "finding missing `{key}`:\n{text}");
        }
        assert_eq!(f.get("rule").and_then(|r| r.as_str()), Some("L001"));
    }

    // A clean run still emits the full skeleton, with an empty array.
    let out = bin()
        .args(["--json", "--file", &fixture("l001_clean.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let doc = obs::json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(
        matches!(doc.get("findings"), Some(obs::json::Json::Arr(v)) if v.is_empty()),
        "clean runs keep the schema skeleton"
    );
}

/// `--json` output is byte-stable across runs: findings are sorted by
/// (path, line, rule) with no timestamps or map-iteration order inside.
#[test]
fn json_output_is_stable_across_runs() {
    let run = || {
        bin()
            .args([
                "--json",
                "--file",
                &fixture("l001_fire.rs"),
                &fixture("l002_fire.rs"),
            ])
            .output()
            .unwrap()
            .stdout
    };
    assert_eq!(run(), run());
}

/// Satellite: the self-lint runtime budget from the lint's design —
/// whole-workspace analysis must stay interactive (< 250 ms). Debug
/// builds are several times slower, so the gate runs only when the
/// binary under test is compiled with optimizations.
#[cfg(not(debug_assertions))]
#[test]
fn release_self_lint_stays_under_250ms() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let started = std::time::Instant::now();
    let out = bin().arg(root).output().unwrap();
    let elapsed = started.elapsed();
    assert!(out.status.success(), "self-lint must be clean");
    assert!(
        elapsed < std::time::Duration::from_millis(250),
        "release self-lint (including process spawn) took {elapsed:?}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().arg("--file").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["--file", "no/such/file.rs"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
