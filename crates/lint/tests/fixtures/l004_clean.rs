//@path crates/vquel/src/demo.rs
//! L004 negative: every `unsafe` justified in writing.

pub fn reinterpret(bytes: &[u8; 8]) -> u64 {
    // SAFETY: [u8; 8] and u64 have identical size and no invalid bit
    // patterns; alignment is irrelevant for a by-value transmute.
    unsafe { std::mem::transmute(*bytes) }
}

pub fn same_line(bytes: &[u8; 8]) -> u64 {
    unsafe { std::mem::transmute(*bytes) } // SAFETY: as above.
}
