//@path crates/pagestore/src/flushdemo.rs
//! L010 positive: a mutex guard held across fsync-class blocking calls —
//! once directly (`sync_all`) and once through a helper the call graph
//! resolves to a `sync_data` (the interprocedural case).

use std::fs::File;
use std::sync::Mutex;

pub struct Meta {
    dirty: Mutex<u64>,
}

impl Meta {
    pub fn flush_direct(&self, f: &File) -> Result<(), std::io::Error> {
        let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
        f.sync_all()?;
        *dirty = 0;
        Ok(())
    }

    pub fn flush_via_helper(&self, f: &File) -> Result<(), std::io::Error> {
        let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
        persist(f)?;
        *dirty = 0;
        Ok(())
    }
}

fn persist(f: &File) -> Result<(), std::io::Error> {
    f.sync_data()
}
