//@path crates/deltastore/src/demo.rs
//! L006 negative: every suppression carries its reason.

// Kept for the next milestone's delta-compaction pass.
#[allow(dead_code)]
fn helper() {}

// Indexing in lockstep with a second array below; iterators obscure it.
#[allow(clippy::needless_range_loop)]
pub fn sum(xs: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
    }
    total
}
