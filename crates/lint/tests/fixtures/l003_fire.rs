//@path crates/relstore/src/cost_demo.rs
//! L003 positive: wall-clock reads inside the deterministic cost module.

use std::time::{Instant, SystemTime};

pub fn estimate_pages(n: u64) -> u64 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    n * 2 + start.elapsed().as_micros() as u64
}
