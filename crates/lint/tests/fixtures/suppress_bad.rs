//@path crates/pagestore/src/demo.rs
//! Suppression negative: a reasonless `lint:allow` suppresses nothing
//! and is itself an L006 finding.

pub fn reasonless(v: Option<u32>) -> u32 {
    // lint:allow(L001)
    v.unwrap()
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // lint:allow(L999): no such rule.
    v.unwrap()
}
