//@path crates/relstore/src/par_demo.rs
//! L007 positive: raw thread creation outside `crates/exec-pool`.

use std::thread;

pub fn fan_out(tasks: Vec<Box<dyn FnOnce() + Send>>) {
    let handles: Vec<_> = tasks.into_iter().map(|t| std::thread::spawn(t)).collect();
    for h in handles {
        let _joined = h.join();
    }
}

pub fn scoped_fan_out(items: &[u64]) -> u64 {
    let mut total = 0;
    thread::scope(|s| {
        let h = s.spawn(|| items.iter().sum::<u64>());
        total = h.join().unwrap_or(0);
    });
    total
}

pub fn named_worker() {
    let builder = thread::Builder::new().name("worker".into());
    let _handle = builder.spawn(|| {});
}
