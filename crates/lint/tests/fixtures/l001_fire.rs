//@path crates/pagestore/src/demo.rs
//! L001 positive: panicking calls in engine library code.

pub fn read_header(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).expect("key must exist")
}

pub fn not_done() {
    todo!("finish the fast path")
}

pub fn impossible(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn give_up() {
    panic!("corrupt page");
}
