//@path crates/orpheus-core/src/cmddemo.rs
//! L012 positive: a pub command entry point that returns a
//! CommandOutput without ever opening an obs span — the request would
//! be invisible to the journal and the slow-query log.

pub struct CommandOutput {
    pub rows: usize,
}

pub fn run_untraced(sql: &str) -> Result<CommandOutput, String> {
    if sql.is_empty() {
        return Err("empty command".to_owned());
    }
    Ok(CommandOutput { rows: 0 })
}
