//@path crates/obs/src/demo.rs
//! L002 positive: span guards and values discarded in engine library code.

pub fn traced_commit(rec: &obs::Recorder) {
    // The guard binds to `_`, drops immediately, records zero time.
    let _ = rec.span("commit");
    do_commit();
}

pub fn bare_span_statement(rec: &obs::Recorder) {
    // Temporary guard drops at the semicolon.
    rec.span("checkout");
    do_commit();
}

pub fn generic_discard(r: Result<(), std::io::Error>) {
    let _ = r;
}

fn do_commit() {}
