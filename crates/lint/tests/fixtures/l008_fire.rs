//@path crates/relstore/src/par_demo.rs
//! L008 positive: owned page copies on the morsel dispatch path.

pub enum PageSnapshot {
    Raw(Box<[u8]>),
}

pub fn snapshot_morsels(pages: &[Box<[u8]>]) -> Vec<PageSnapshot> {
    // Constructing the owned-copy variant fires.
    pages
        .iter()
        .map(|p| PageSnapshot::Raw(p.clone()))
        .collect()
}

pub struct Table;

impl Table {
    pub fn snapshot_page(&self, _ord: usize) -> Vec<u8> {
        Vec::new()
    }
}

pub fn dispatch(table: &Table) -> Vec<u8> {
    // Calling the owned-copy producer fires too.
    table.snapshot_page(0)
}
