//@path crates/orpheus-server/src/svc_demo.rs
//! L007 negative: a named, long-lived service thread created through
//! `exec_pool::ServiceThread` — the sanctioned escape hatch for threads
//! that must outlive a scoped fan-out (acceptors, engine loops). The
//! pool still owns creation, naming, and join-with-panic-surfacing, so
//! the L007 invariant (no unaccounted threads) holds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub fn start_service(stop: Arc<AtomicBool>) -> Result<exec_pool::ServiceThread, exec_pool::PoolError> {
    exec_pool::ServiceThread::spawn("demo-service", move || {
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    })
}

pub fn stop_service(t: exec_pool::ServiceThread) -> Result<(), exec_pool::PoolError> {
    t.join()
}
