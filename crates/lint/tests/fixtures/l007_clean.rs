//@path crates/relstore/src/par_demo.rs
//! L007 negative: parallelism through the worker pool; raw threads
//! confined to `#[cfg(test)]`.

pub fn fan_out(pool: &exec_pool::WorkerPool, morsels: Vec<Vec<u64>>) -> Vec<u64> {
    let tasks: Vec<_> = morsels
        .into_iter()
        .map(|m| move |_worker: usize| m.iter().sum::<u64>())
        .collect();
    pool.run(tasks).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn concurrency_tests_may_spawn() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}
