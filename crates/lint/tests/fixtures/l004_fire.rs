//@path crates/vquel/src/demo.rs
//! L004 positive: `unsafe` without a SAFETY comment (any crate).

pub fn reinterpret(bytes: &[u8; 8]) -> u64 {
    unsafe { std::mem::transmute(*bytes) }
}
