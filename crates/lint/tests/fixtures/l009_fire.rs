//@path crates/orpheus-server/src/lockdemo.rs
//! L009 positive: two lock classes acquired in opposite orders by two
//! functions in the same file. Either order alone is fine; together
//! they form the cycle `order_a -> order_b -> order_a`, and two threads
//! entering from different sides deadlock.

use std::sync::Mutex;

pub struct Pair {
    order_a: Mutex<u64>,
    order_b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.order_a.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.order_b.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.order_b.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.order_a.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
