//@path crates/relstore/src/par_demo.rs
//! L008 negative: leases on the dispatch path, owned copies confined to
//! tests.

pub struct PageLease;

pub struct Table;

impl Table {
    pub fn lease_page(&self, _ord: usize) -> PageLease {
        PageLease
    }
}

/// The zero-copy path: views, not owned snapshots.
pub fn lease_morsels(table: &Table, pages: usize) -> Vec<PageLease> {
    (0..pages).map(|ord| table.lease_page(ord)).collect()
}

#[cfg(test)]
mod tests {
    pub enum PageSnapshot {
        Raw(Box<[u8]>),
    }

    #[test]
    fn tests_may_build_owned_snapshots() {
        // Test-only construction is exempt: fixtures and oracles may
        // compare against the copying path.
        let snap = PageSnapshot::Raw(Box::new([0u8; 4]));
        let PageSnapshot::Raw(bytes) = snap;
        assert_eq!(bytes.len(), 4);
    }
}
