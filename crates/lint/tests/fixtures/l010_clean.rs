//@path crates/pagestore/src/flushdemo.rs
//! L010 negative: the guard is scoped out or explicitly dropped before
//! the blocking I/O starts, so no other thread stalls behind the fsync.

use std::fs::File;
use std::sync::Mutex;

pub struct Meta {
    dirty: Mutex<u64>,
}

impl Meta {
    pub fn flush_scoped(&self, f: &File) -> Result<(), std::io::Error> {
        {
            let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            *dirty = 0;
        }
        f.sync_all()
    }

    pub fn flush_dropped(&self, f: &File) -> Result<(), std::io::Error> {
        let dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
        let want = *dirty > 0;
        drop(dirty);
        if want {
            f.sync_all()?;
        }
        Ok(())
    }
}
