//@path crates/deltastore/src/demo.rs
//! L006 positive: a reasonless `#[allow(…)]`.

#[allow(dead_code)]
fn helper() {}

#[allow(clippy::needless_range_loop)]
pub fn sum(xs: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
    }
    total
}
