//@path crates/obs/src/metrics.rs
//! L009 cross-file positive, half 1 (the metrics side).
//!
//! `bump_with_journal` holds the `metrics-registry` lock while calling
//! into the journal module; the other half (`l009_x_journal.rs`) holds
//! the `journal-ring` lock while calling back into `touch`. Linted
//! together the two files close the interprocedural cycle
//! `metrics-registry -> journal-ring -> metrics-registry`; linted alone
//! each half is clean because the cross-module call cannot resolve.

use std::sync::Mutex;

pub static REG: Mutex<u64> = Mutex::new(0);

pub fn bump_with_journal() {
    let mut reg = REG.lock().unwrap_or_else(|e| e.into_inner());
    *reg += 1;
    crate::journal::note("bump");
}

pub fn touch() {
    let mut reg = REG.lock().unwrap_or_else(|e| e.into_inner());
    *reg += 1;
}
