//@path crates/orpheus-server/tests/demo.rs
//! L007 negative: integration-test sources live under a `tests/`
//! directory and are compiled only into test harnesses, so raw
//! `thread::scope` is allowed there — the exercised code is what the
//! engine rules guard, not the harness driving it. (Unit tests get the
//! same exemption via `#[cfg(test)]`; integration tests have no such
//! wrapper, so the exemption is path-scoped.)

use std::thread;

#[test]
fn clients_race() {
    thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {});
        }
    });
}
