//@path crates/relstore/src/okdemo.rs
//! L011 positive: fallible results silently discarded in engine library
//! code — a statement-level `.ok();` and a `let _ =` on a call the
//! graph resolves to a Result-returning function (the latter also draws
//! L002's generic-discard finding; L011 adds the *why*).

pub fn read_page(id: u64) -> Result<Vec<u8>, String> {
    if id == 0 {
        return Err("page 0 is reserved".to_owned());
    }
    Ok(vec![0u8; 16])
}

pub fn checkpoint_header(id: u64) {
    read_page(id).ok();
}

pub fn prefetch(id: u64) {
    let _ = read_page(id);
}
