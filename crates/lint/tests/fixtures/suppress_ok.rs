//@path crates/pagestore/src/demo.rs
//! Suppression positive: a reasoned `lint:allow` silences the rule.

pub fn checked_elsewhere(v: Option<u32>) -> u32 {
    // lint:allow(L001): the caller validated `v`; a miss is a bug worth aborting on.
    v.unwrap()
}

pub fn same_line(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(L001): validated by the caller.
}
