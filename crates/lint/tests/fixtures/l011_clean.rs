//@path crates/relstore/src/okdemo.rs
//! L011 negative: results are propagated with `?`, handled, or the
//! `.ok()` Option is actually consumed (tail position / bound).

pub fn read_page(id: u64) -> Result<Vec<u8>, String> {
    if id == 0 {
        return Err("page 0 is reserved".to_owned());
    }
    Ok(vec![0u8; 16])
}

pub fn checkpoint_header(id: u64) -> Result<usize, String> {
    let page = read_page(id)?;
    Ok(page.len())
}

pub fn best_effort(id: u64) -> Option<Vec<u8>> {
    read_page(id).ok()
}

pub fn logged(id: u64) {
    if let Err(e) = read_page(id) {
        eprintln!("prefetch {id} failed: {e}");
    }
}
