//@path crates/obs/src/demo.rs
//! L002 negative: guards held for the full scope, discards explicit.

pub fn traced_commit(rec: &obs::Recorder) {
    let _guard = rec.span("commit");
    do_commit();
}

pub fn explicit_discard(r: Result<(), std::io::Error>) {
    // Best-effort by design; `drop` makes the discard explicit.
    drop(r);
}

pub fn named_binding(rec: &obs::Recorder) -> u64 {
    let span = rec.span("checkout");
    do_commit();
    span.elapsed_micros()
}

fn do_commit() {}
