//@path crates/orpheus-core/src/cmddemo.rs
//! L012 negative: entry points that open a span directly, or through a
//! helper the call graph resolves (the span need not be lexical).

pub struct CommandOutput {
    pub rows: usize,
}

pub fn run_traced(rec: &obs::Recorder, sql: &str) -> Result<CommandOutput, String> {
    let _span = rec.enter("command");
    Ok(CommandOutput { rows: sql.len() })
}

pub fn run_traced_transitively(rec: &obs::Recorder) -> Result<CommandOutput, String> {
    let _span = traced_scope(rec);
    Ok(CommandOutput { rows: 0 })
}

fn traced_scope(rec: &obs::Recorder) -> obs::SpanGuard {
    rec.enter("command")
}
