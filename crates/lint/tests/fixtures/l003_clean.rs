//@path crates/relstore/src/cost_demo.rs
//! L003 negative: cost arithmetic from counters only; timing confined
//! to `#[cfg(test)]`.

pub fn estimate_pages(tuples: u64, tuples_per_page: u64) -> u64 {
    tuples.div_ceil(tuples_per_page.max(1))
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn benchmark_helper_may_time() {
        let start = Instant::now();
        assert_eq!(super::estimate_pages(10, 4), 3);
        assert!(start.elapsed().as_secs() < 60);
    }
}
