//@path crates/obs/src/journal.rs
//! L009 cross-file positive, half 2 (the journal side). See
//! `l009_x_registry.rs` for the full cycle description: `note` holds
//! the `journal-ring` lock across a call that re-enters the metrics
//! registry.

use std::sync::Mutex;

pub static RING: Mutex<Vec<String>> = Mutex::new(Vec::new());

pub fn note(event: &str) {
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    ring.push(event.to_owned());
    crate::metrics::touch();
}
