//@path crates/pagestore/src/demo.rs
//! L005 negative: tests run; `ignore` appearing in other positions
//! (idents, strings, docs) is not the attribute.

/// Readers should not ignore errors. `#[ignore]` in a doc is fine.
pub fn ignore(x: u32) -> u32 {
    let msg = "#[ignore]";
    x + msg.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn recovery_replays_wal() {
        assert_eq!(super::ignore(0), 9);
    }
}
