//@path crates/pagestore/src/demo.rs
//! L005 positive: an `#[ignore]`d test hides lost coverage.

#[cfg(test)]
mod tests {
    #[test]
    #[ignore]
    fn recovery_replays_wal() {
        assert!(true);
    }

    #[test]
    #[ignore = "flaky on CI"]
    fn recovery_replays_wal_with_reason() {
        assert!(true);
    }
}
