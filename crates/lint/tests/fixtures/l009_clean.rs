//@path crates/orpheus-server/src/lockdemo.rs
//! L009 negative: both functions take the two locks in the same global
//! order (`order_a` before `order_b`), so the lock graph has one edge
//! and no cycle — nesting alone is not a finding.

use std::sync::Mutex;

pub struct Pair {
    order_a: Mutex<u64>,
    order_b: Mutex<u64>,
}

impl Pair {
    pub fn sum(&self) -> u64 {
        let a = self.order_a.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.order_b.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn diff(&self) -> u64 {
        let a = self.order_a.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.order_b.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
