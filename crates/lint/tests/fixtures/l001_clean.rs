//@path crates/pagestore/src/demo.rs
//! L001 negative: typed errors in library code; panics confined to
//! `#[cfg(test)]` and doc examples.

/// Doc examples never count:
///
/// ```
/// let head = demo::read_header(&bytes).unwrap();
/// ```
pub fn read_header(bytes: &[u8]) -> Option<u32> {
    let head: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(head))
}

pub fn unwrap_or_is_fine(v: Option<u32>) -> u32 {
    // `unwrap_or` is not `unwrap`: no panic path.
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let head = super::read_header(&[1, 2, 3, 4]).unwrap();
        assert_eq!(head, 0x04030201);
        if head == 0 {
            panic!("test assertion");
        }
    }
}
