//! Rule-catalog fixture tests: every rule has a firing and a non-firing
//! snippet under `tests/fixtures/`, plus the suppression contract and a
//! self-lint pass over the whole workspace.

use lint::{lint_file, lint_workspace, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture and return its rule ids, one per finding, in order.
fn rules_of(name: &str) -> Vec<Rule> {
    let findings = lint_file(&fixture(name)).unwrap();
    findings.iter().map(|f| f.finding.rule).collect()
}

fn assert_clean(name: &str) {
    let findings = lint_file(&fixture(name)).unwrap();
    assert!(
        findings.is_empty(),
        "{name} should be clean, got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn l001_fires_on_panicking_library_code() {
    let rules = rules_of("l001_fire.rs");
    assert_eq!(
        rules.len(),
        5,
        "unwrap, expect, todo!, unreachable!, panic!"
    );
    assert!(rules.iter().all(|r| *r == Rule::L001));
}

#[test]
fn l001_spares_tests_docs_and_typed_errors() {
    assert_clean("l001_clean.rs");
}

#[test]
fn l002_fires_on_discarded_guards() {
    let rules = rules_of("l002_fire.rs");
    assert_eq!(
        rules.len(),
        3,
        "`let _ = span`, bare span statement, generic `let _ =`"
    );
    assert!(rules.iter().all(|r| *r == Rule::L002));
}

#[test]
fn l002_spares_named_guards_and_explicit_drops() {
    assert_clean("l002_clean.rs");
}

#[test]
fn l003_fires_on_wall_clock_in_cost_code() {
    let rules = rules_of("l003_fire.rs");
    assert!(rules.len() >= 2, "Instant::now and SystemTime::now");
    assert!(rules.iter().all(|r| *r == Rule::L003));
}

#[test]
fn l003_spares_counter_arithmetic_and_test_timing() {
    assert_clean("l003_clean.rs");
}

#[test]
fn l004_fires_on_unjustified_unsafe() {
    assert_eq!(rules_of("l004_fire.rs"), vec![Rule::L004]);
}

#[test]
fn l008_fires_on_owned_page_copies_on_par_path() {
    let rules = rules_of("l008_fire.rs");
    assert_eq!(
        rules.len(),
        2,
        "PageSnapshot::Raw construction and .snapshot_page() call"
    );
    assert!(rules.iter().all(|r| *r == Rule::L008));
}

#[test]
fn l008_spares_lease_views_and_test_code() {
    assert_clean("l008_clean.rs");
}

#[test]
fn l004_spares_safety_commented_unsafe() {
    assert_clean("l004_clean.rs");
}

#[test]
fn l005_fires_on_ignored_tests() {
    assert_eq!(rules_of("l005_fire.rs"), vec![Rule::L005, Rule::L005]);
}

#[test]
fn l005_spares_idents_strings_and_docs() {
    assert_clean("l005_clean.rs");
}

#[test]
fn l006_fires_on_reasonless_allow() {
    assert_eq!(rules_of("l006_fire.rs"), vec![Rule::L006, Rule::L006]);
}

#[test]
fn l006_spares_reasoned_allow() {
    assert_clean("l006_clean.rs");
}

#[test]
fn l007_fires_on_raw_thread_creation_outside_the_pool() {
    let rules = rules_of("l007_fire.rs");
    assert_eq!(
        rules,
        vec![Rule::L007, Rule::L007, Rule::L007],
        "thread::spawn, thread::scope, thread::Builder"
    );
}

#[test]
fn l007_spares_pool_usage_and_test_threads() {
    assert_clean("l007_clean.rs");
}

#[test]
fn l007_spares_service_threads_in_server_code() {
    // `exec_pool::ServiceThread` is the sanctioned escape hatch for
    // named long-lived threads — and the fixture's pseudo-path is an
    // engine crate, so this also proves the service-thread idiom is
    // L001/L002-clean.
    assert_clean("l007_service_clean.rs");
}

#[test]
fn l007_spares_integration_test_directories() {
    // Integration tests carry `#[test]` without a `#[cfg(test)]` wrapper,
    // so the exemption is path-scoped: anything under a `tests/` dir.
    use lint::classify;
    assert!(classify("crates/orpheus-server/tests/concurrent_sessions.rs").test_code);
    assert!(classify("tests/smoke.rs").test_code);
    assert!(!classify("crates/orpheus-server/src/lib.rs").test_code);
    assert!(!classify("crates/bench/src/bin/server_smoke.rs").test_code);
    assert_clean("l007_tests_dir_clean.rs");
}

#[test]
fn l007_spares_the_exec_pool_crate_itself() {
    use lint::classify;
    assert!(classify("crates/exec-pool/src/lib.rs").pool_code);
    assert!(!classify("crates/relstore/src/par.rs").pool_code);
    // The pool's own `thread::scope` must not fire.
    let src = "pub fn go() { std::thread::scope(|_s| {}); }";
    assert!(lint::lint_source("crates/exec-pool/src/lib.rs", src).is_empty());
    assert!(!lint::lint_source("crates/relstore/src/par.rs", src).is_empty());
}

#[test]
fn l009_fires_on_opposite_lock_orders_in_one_file() {
    let rules = rules_of("l009_fire.rs");
    assert!(!rules.is_empty(), "opposite lock orders must close a cycle");
    assert!(rules.iter().all(|r| *r == Rule::L009), "{rules:?}");
}

#[test]
fn l009_spares_a_consistent_global_order() {
    assert_clean("l009_clean.rs");
}

#[test]
fn l009_catches_cross_file_cycles_via_the_call_graph() {
    // The cycle spans two files: metrics holds its registry lock while
    // calling into the journal; the journal holds its ring lock while
    // calling back into metrics. Only the joint call graph sees it.
    let a = fixture("l009_x_registry.rs");
    let b = fixture("l009_x_journal.rs");
    let joint = lint::lint_files(&[a.as_path(), b.as_path()]).unwrap();
    assert!(
        joint.iter().any(|f| f.finding.rule == Rule::L009),
        "joint lint must find the cross-file cycle; got:\n{}",
        joint
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        joint
            .iter()
            .any(|f| f.finding.msg.contains("metrics-registry")
                && f.finding.msg.contains("journal-ring")),
        "the finding names both lock classes in the cycle"
    );
    // Each half alone is clean: the cycle is interprocedural, not a
    // same-function token pattern.
    assert_clean("l009_x_registry.rs");
    assert_clean("l009_x_journal.rs");
}

#[test]
fn l010_fires_on_guard_held_across_blocking() {
    let rules = rules_of("l010_fire.rs");
    assert_eq!(
        rules,
        vec![Rule::L010, Rule::L010],
        "direct sync_all + helper resolving to sync_data"
    );
}

#[test]
fn l010_spares_scoped_and_dropped_guards() {
    assert_clean("l010_clean.rs");
}

#[test]
fn l011_fires_on_silently_discarded_results() {
    let rules = rules_of("l011_fire.rs");
    assert_eq!(
        rules.iter().filter(|r| **r == Rule::L011).count(),
        2,
        "statement-level `.ok();` + `let _ =` on a Result call: {rules:?}"
    );
    // The `let _ =` shape also draws L002's generic-discard finding;
    // L011 adds the callee-aware *why*.
    assert!(rules.iter().all(|r| *r == Rule::L011 || *r == Rule::L002));
}

#[test]
fn l011_spares_propagated_and_consumed_results() {
    assert_clean("l011_clean.rs");
}

#[test]
fn l012_fires_on_untraced_command_entry_points() {
    assert_eq!(rules_of("l012_fire.rs"), vec![Rule::L012]);
}

#[test]
fn l012_spares_direct_and_transitive_spans() {
    assert_clean("l012_clean.rs");
}

#[test]
fn reasoned_suppressions_silence_the_rule() {
    assert_clean("suppress_ok.rs");
}

#[test]
fn reasonless_suppressions_suppress_nothing_and_fire_l006() {
    let rules = rules_of("suppress_bad.rs");
    // Both unwraps still fire; both bad suppressions are L006 findings.
    assert_eq!(rules.iter().filter(|r| **r == Rule::L001).count(), 2);
    assert_eq!(rules.iter().filter(|r| **r == Rule::L006).count(), 2);
    assert_eq!(rules.len(), 4);
}

#[test]
fn findings_render_with_pseudo_path_and_line() {
    let findings = lint_file(&fixture("l004_fire.rs")).unwrap();
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/vquel/src/demo.rs:"),
        "pseudo-path drives the rendered location: {rendered}"
    );
    assert!(rendered.contains(": L004 "), "{rendered}");
}

#[test]
fn workspace_self_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let (findings, scanned) = lint_workspace(root).unwrap();
    assert!(scanned > 50, "expected a real workspace, scanned {scanned}");
    assert!(
        findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
