//! Rule-catalog fixture tests: every rule has a firing and a non-firing
//! snippet under `tests/fixtures/`, plus the suppression contract and a
//! self-lint pass over the whole workspace.

use lint::{lint_file, lint_workspace, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture and return its rule ids, one per finding, in order.
fn rules_of(name: &str) -> Vec<Rule> {
    let findings = lint_file(&fixture(name)).unwrap();
    findings.iter().map(|f| f.finding.rule).collect()
}

fn assert_clean(name: &str) {
    let findings = lint_file(&fixture(name)).unwrap();
    assert!(
        findings.is_empty(),
        "{name} should be clean, got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn l001_fires_on_panicking_library_code() {
    let rules = rules_of("l001_fire.rs");
    assert_eq!(
        rules.len(),
        5,
        "unwrap, expect, todo!, unreachable!, panic!"
    );
    assert!(rules.iter().all(|r| *r == Rule::L001));
}

#[test]
fn l001_spares_tests_docs_and_typed_errors() {
    assert_clean("l001_clean.rs");
}

#[test]
fn l002_fires_on_discarded_guards() {
    let rules = rules_of("l002_fire.rs");
    assert_eq!(
        rules.len(),
        3,
        "`let _ = span`, bare span statement, generic `let _ =`"
    );
    assert!(rules.iter().all(|r| *r == Rule::L002));
}

#[test]
fn l002_spares_named_guards_and_explicit_drops() {
    assert_clean("l002_clean.rs");
}

#[test]
fn l003_fires_on_wall_clock_in_cost_code() {
    let rules = rules_of("l003_fire.rs");
    assert!(rules.len() >= 2, "Instant::now and SystemTime::now");
    assert!(rules.iter().all(|r| *r == Rule::L003));
}

#[test]
fn l003_spares_counter_arithmetic_and_test_timing() {
    assert_clean("l003_clean.rs");
}

#[test]
fn l004_fires_on_unjustified_unsafe() {
    assert_eq!(rules_of("l004_fire.rs"), vec![Rule::L004]);
}

#[test]
fn l008_fires_on_owned_page_copies_on_par_path() {
    let rules = rules_of("l008_fire.rs");
    assert_eq!(
        rules.len(),
        2,
        "PageSnapshot::Raw construction and .snapshot_page() call"
    );
    assert!(rules.iter().all(|r| *r == Rule::L008));
}

#[test]
fn l008_spares_lease_views_and_test_code() {
    assert_clean("l008_clean.rs");
}

#[test]
fn l004_spares_safety_commented_unsafe() {
    assert_clean("l004_clean.rs");
}

#[test]
fn l005_fires_on_ignored_tests() {
    assert_eq!(rules_of("l005_fire.rs"), vec![Rule::L005, Rule::L005]);
}

#[test]
fn l005_spares_idents_strings_and_docs() {
    assert_clean("l005_clean.rs");
}

#[test]
fn l006_fires_on_reasonless_allow() {
    assert_eq!(rules_of("l006_fire.rs"), vec![Rule::L006, Rule::L006]);
}

#[test]
fn l006_spares_reasoned_allow() {
    assert_clean("l006_clean.rs");
}

#[test]
fn l007_fires_on_raw_thread_creation_outside_the_pool() {
    let rules = rules_of("l007_fire.rs");
    assert_eq!(
        rules,
        vec![Rule::L007, Rule::L007, Rule::L007],
        "thread::spawn, thread::scope, thread::Builder"
    );
}

#[test]
fn l007_spares_pool_usage_and_test_threads() {
    assert_clean("l007_clean.rs");
}

#[test]
fn l007_spares_service_threads_in_server_code() {
    // `exec_pool::ServiceThread` is the sanctioned escape hatch for
    // named long-lived threads — and the fixture's pseudo-path is an
    // engine crate, so this also proves the service-thread idiom is
    // L001/L002-clean.
    assert_clean("l007_service_clean.rs");
}

#[test]
fn l007_spares_integration_test_directories() {
    // Integration tests carry `#[test]` without a `#[cfg(test)]` wrapper,
    // so the exemption is path-scoped: anything under a `tests/` dir.
    use lint::classify;
    assert!(classify("crates/orpheus-server/tests/concurrent_sessions.rs").test_code);
    assert!(classify("tests/smoke.rs").test_code);
    assert!(!classify("crates/orpheus-server/src/lib.rs").test_code);
    assert!(!classify("crates/bench/src/bin/server_smoke.rs").test_code);
    assert_clean("l007_tests_dir_clean.rs");
}

#[test]
fn l007_spares_the_exec_pool_crate_itself() {
    use lint::classify;
    assert!(classify("crates/exec-pool/src/lib.rs").pool_code);
    assert!(!classify("crates/relstore/src/par.rs").pool_code);
    // The pool's own `thread::scope` must not fire.
    let src = "pub fn go() { std::thread::scope(|_s| {}); }";
    assert!(lint::lint_source("crates/exec-pool/src/lib.rs", src).is_empty());
    assert!(!lint::lint_source("crates/relstore/src/par.rs", src).is_empty());
}

#[test]
fn reasoned_suppressions_silence_the_rule() {
    assert_clean("suppress_ok.rs");
}

#[test]
fn reasonless_suppressions_suppress_nothing_and_fire_l006() {
    let rules = rules_of("suppress_bad.rs");
    // Both unwraps still fire; both bad suppressions are L006 findings.
    assert_eq!(rules.iter().filter(|r| **r == Rule::L001).count(), 2);
    assert_eq!(rules.iter().filter(|r| **r == Rule::L006).count(), 2);
    assert_eq!(rules.len(), 4);
}

#[test]
fn findings_render_with_pseudo_path_and_line() {
    let findings = lint_file(&fixture("l004_fire.rs")).unwrap();
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/vquel/src/demo.rs:"),
        "pseudo-path drives the rendered location: {rendered}"
    );
    assert!(rendered.contains(": L004 "), "{rendered}");
}

#[test]
fn workspace_self_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let (findings, scanned) = lint_workspace(root).unwrap();
    assert!(scanned > 50, "expected a real workspace, scanned {scanned}");
    assert!(
        findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
