//! Lineage inference (§8.4): from pairwise similarities to a derivation
//! forest.
//!
//! Each artifact derives from at most one earlier artifact (the workflow
//! model of §8.3); the inferred lineage is therefore a forest. Edges are
//! scored by a combination of row overlap, key-set overlap, and schema
//! overlap; orientation follows timestamps; and each artifact keeps its
//! best-scoring incoming edge above a confidence threshold — the maximum
//! spanning arborescence of the (timestamp-acyclic) score graph.

use crate::explain::{explain_edge, shared_key, Operation};
use crate::repo::{Artifact, UntrackedRepository};
use crate::sketch::candidate_pairs;
use std::collections::HashSet;

/// Inference parameters.
#[derive(Debug, Clone, Copy)]
pub struct InferConfig {
    /// Min-hash similarity floor for candidate pairs (§8.6). Set to 0 to
    /// disable pruning (exact all-pairs).
    pub sketch_floor: f64,
    /// Minimum combined score for an edge to be emitted.
    pub score_threshold: f64,
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            sketch_floor: 0.1,
            score_threshold: 0.35,
        }
    }
}

/// An inferred derivation edge `from → to` with its score and explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredEdge {
    pub from: usize,
    pub to: usize,
    pub score: f64,
    pub operation: Operation,
}

/// The inferred lineage forest.
#[derive(Debug, Clone, Default)]
pub struct LineageGraph {
    pub edges: Vec<InferredEdge>,
}

impl LineageGraph {
    /// Parent of an artifact, if inferred.
    pub fn parent_of(&self, artifact: usize) -> Option<&InferredEdge> {
        self.edges.iter().find(|e| e.to == artifact)
    }

    /// Edge set as (from, to) pairs.
    pub fn edge_pairs(&self) -> HashSet<(usize, usize)> {
        self.edges.iter().map(|e| (e.from, e.to)).collect()
    }
}

/// Similarity score of a (src → dst) pair in [0, 1]: a blend of row-hash
/// overlap, key-set overlap, and schema overlap. Row-preserving operations
/// can change every row, so key overlap carries the most weight.
pub fn pair_score(src: &Artifact, dst: &Artifact) -> f64 {
    // Row multiset overlap.
    let s_rows: HashSet<u64> = src.row_hashes().into_iter().collect();
    let d_rows: HashSet<u64> = dst.row_hashes().into_iter().collect();
    let row_j = jaccard(&s_rows, &d_rows);
    // Key overlap via the best shared candidate key.
    let key_j = shared_key(src, dst).map(|(_, _, j)| j).unwrap_or(0.0);
    // Schema overlap.
    let s_cols: HashSet<&String> = src.columns.iter().collect();
    let d_cols: HashSet<&String> = dst.columns.iter().collect();
    let col_j = jaccard(&s_cols, &d_cols);
    0.3 * row_j + 0.5 * key_j + 0.2 * col_j
}

fn jaccard<T: std::hash::Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = a.len() as f64 + b.len() as f64 - inter;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Infer the lineage forest of a repository.
pub fn infer_lineage(repo: &UntrackedRepository, config: InferConfig) -> LineageGraph {
    let arts = &repo.artifacts;
    let pairs: Vec<(usize, usize)> = if config.sketch_floor > 0.0 {
        candidate_pairs(arts, config.sketch_floor)
    } else {
        let mut all = Vec::new();
        for i in 0..arts.len() {
            for j in (i + 1)..arts.len() {
                all.push((i, j));
            }
        }
        all
    };

    // Best incoming edge per artifact: among candidate pairs, orient by
    // timestamp (older → newer; ties broken by index order).
    let mut best: Vec<Option<InferredEdge>> = vec![None; arts.len()];
    for (i, j) in pairs {
        let (from, to) = if (arts[i].timestamp, i) <= (arts[j].timestamp, j) {
            (i, j)
        } else {
            (j, i)
        };
        let score = pair_score(&arts[from], &arts[to]);
        if score < config.score_threshold {
            continue;
        }
        let better = best[to].as_ref().map(|e| score > e.score).unwrap_or(true);
        if better {
            let operation = explain_edge(&arts[from], &arts[to]);
            best[to] = Some(InferredEdge {
                from,
                to,
                score,
                operation,
            });
        }
    }

    LineageGraph {
        edges: best.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &str, ts: i64, rows: Vec<Vec<i64>>) -> Artifact {
        Artifact::new(name, vec!["id".into(), "x".into()], rows, ts)
    }

    #[test]
    fn chain_is_recovered() {
        // a → b (filter) → c (append).
        let mut repo = UntrackedRepository::new();
        let a = repo.add(art("a", 0, (0..100).map(|i| vec![i, i]).collect()));
        let b = repo.add(art("b", 10, (0..80).map(|i| vec![i, i]).collect()));
        let c = repo.add(art("c", 20, (0..90).map(|i| vec![i, i]).collect()));
        let g = infer_lineage(&repo, InferConfig::default());
        assert_eq!(g.parent_of(a), None);
        assert_eq!(g.parent_of(b).map(|e| e.from), Some(a));
        // c's rows overlap b's more than a's? c ⊃ b, score(b→c) with key
        // jaccard 80/90 vs score(a→c) 90/100 — a wins slightly; either
        // parent is a plausible lineage. Assert it picked *some* parent.
        assert!(g.parent_of(c).is_some());
    }

    #[test]
    fn unrelated_artifacts_get_no_parent() {
        let mut repo = UntrackedRepository::new();
        repo.add(art("a", 0, (0..50).map(|i| vec![i, i]).collect()));
        let b = repo.add(art("b", 5, (9000..9050).map(|i| vec![i, i]).collect()));
        let g = infer_lineage(&repo, InferConfig::default());
        assert!(g.parent_of(b).is_none());
        assert!(g.edges.is_empty());
    }

    #[test]
    fn timestamps_orient_edges() {
        let mut repo = UntrackedRepository::new();
        // Same data, b older than a despite insertion order.
        let a = repo.add(art("a", 100, (0..50).map(|i| vec![i, i]).collect()));
        let b = repo.add(art("b", 50, (0..50).map(|i| vec![i, i]).collect()));
        let g = infer_lineage(&repo, InferConfig::default());
        let e = g.parent_of(a).expect("a derives from b");
        assert_eq!(e.from, b);
        assert_eq!(e.operation, Operation::Copy);
    }

    #[test]
    fn row_preserving_transform_detected_despite_changed_rows() {
        // Normalization changes every row; only the keys survive. The
        // 0.5-weighted key overlap must carry the edge.
        let mut repo = UntrackedRepository::new();
        let a = repo.add(art("a", 0, (0..100).map(|i| vec![i, i * 7]).collect()));
        let b = repo.add(art("b", 1, (0..100).map(|i| vec![i, i % 10]).collect()));
        let g = infer_lineage(&repo, InferConfig::default());
        let e = g.parent_of(b).expect("transform edge found");
        assert_eq!(e.from, a);
        assert_eq!(e.operation, Operation::RowPreservingTransform);
    }

    #[test]
    fn sketch_pruning_matches_exact_on_clear_cases() {
        let mut repo = UntrackedRepository::new();
        repo.add(art("a", 0, (0..100).map(|i| vec![i, i]).collect()));
        repo.add(art("b", 1, (0..95).map(|i| vec![i, i]).collect()));
        repo.add(art("x", 2, (5000..5100).map(|i| vec![i, i]).collect()));
        let pruned = infer_lineage(&repo, InferConfig::default());
        let exact = infer_lineage(
            &repo,
            InferConfig {
                sketch_floor: 0.0,
                ..InferConfig::default()
            },
        );
        assert_eq!(pruned.edge_pairs(), exact.edge_pairs());
    }
}
