//! # provenance — the generalized provenance manager (Chapter 8)
//!
//! OrpheusDB's "from-scratch" assumption requires users to register every
//! version with full derivation metadata. This crate removes it: given an
//! **untracked repository** — a pile of dataset files with no metadata
//! beyond modification timestamps — it infers the lineage relationships
//! among them:
//!
//! 1. **Candidate pruning** ([`sketch`]): min-hash sketches of row and
//!    column sets prune the O(n²) pair space (§8.6, accelerating the
//!    workflow);
//! 2. **Edge inference** ([`infer`]): surviving pairs are scored by
//!    row/key/column overlap and oriented by timestamp; a maximum-likelihood
//!    lineage forest is the maximum spanning arborescence of the score
//!    graph (§8.4);
//! 3. **Structural explanation** ([`explain`]): each inferred edge is
//!    classified as the data-science operation that most plausibly produced
//!    it — row-preserving transforms (column addition/normalization),
//!    filters, appends, updates, projections (§8.5);
//! 4. **Evaluation** ([`metrics`]): precision/recall against ground truth,
//!    with [`synth`] generating workloads of known lineage (§8.8).

pub mod explain;
pub mod infer;
pub mod metrics;
pub mod repo;
pub mod sketch;
pub mod synth;

pub use explain::{explain_edge, Operation};
pub use infer::{infer_lineage, InferConfig, InferredEdge, LineageGraph};
pub use metrics::{score_edges, PrecisionRecall};
pub use repo::{Artifact, UntrackedRepository};
pub use synth::{synthesize, SynthConfig};
