//! Precision/recall scoring of inferred lineage against ground truth
//! (§8.8).

use crate::explain::Operation;
use crate::infer::LineageGraph;
use std::collections::HashMap;

/// Evaluation scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of inferred edges that are true edges.
    pub precision: f64,
    /// Fraction of true edges that were inferred.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Among correctly inferred edges, the fraction whose operation label
    /// matches the ground truth.
    pub operation_accuracy: f64,
    pub inferred: usize,
    pub truth: usize,
}

/// Score an inferred lineage graph against `(parent, child, op)` truth.
pub fn score_edges(
    inferred: &LineageGraph,
    truth: &[(usize, usize, Operation)],
) -> PrecisionRecall {
    let truth_map: HashMap<(usize, usize), Operation> =
        truth.iter().map(|&(p, c, op)| ((p, c), op)).collect();
    let mut correct = 0usize;
    let mut op_correct = 0usize;
    for e in &inferred.edges {
        if let Some(&op) = truth_map.get(&(e.from, e.to)) {
            correct += 1;
            if e.operation == op {
                op_correct += 1;
            }
        }
    }
    let precision = if inferred.edges.is_empty() {
        0.0
    } else {
        correct as f64 / inferred.edges.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        correct as f64 / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
        operation_accuracy: if correct == 0 {
            0.0
        } else {
            op_correct as f64 / correct as f64
        },
        inferred: inferred.edges.len(),
        truth: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_lineage, InferConfig};
    use crate::synth::{synthesize, SynthConfig};

    #[test]
    fn end_to_end_inference_quality() {
        // The §8.8-style experiment: on linear-ish synthetic workloads the
        // inferred lineage should recover most true edges.
        let mut total_f1 = 0.0;
        let mut total_op = 0.0;
        // Per-seed F1 varies roughly 0.48..0.84; average enough runs that
        // the gate tests inference quality rather than PRNG-stream luck.
        let runs = 10;
        for seed in 0..runs {
            let w = synthesize(SynthConfig {
                derivations: 25,
                seed,
                ..SynthConfig::default()
            });
            let g = infer_lineage(&w.repo, InferConfig::default());
            let s = score_edges(&g, &w.truth);
            total_f1 += s.f1;
            total_op += s.operation_accuracy;
        }
        let avg_f1 = total_f1 / runs as f64;
        let avg_op = total_op / runs as f64;
        assert!(avg_f1 > 0.6, "average F1 too low: {avg_f1}");
        assert!(avg_op > 0.6, "operation accuracy too low: {avg_op}");
    }

    #[test]
    fn perfect_and_empty_scores() {
        let w = synthesize(SynthConfig {
            derivations: 5,
            ..SynthConfig::default()
        });
        let empty = LineageGraph::default();
        let s = score_edges(&empty, &w.truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }
}
