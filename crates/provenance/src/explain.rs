//! Structural explanations (§8.5): classify what operation most plausibly
//! derived one artifact from another.

use crate::repo::Artifact;
use std::collections::{HashMap, HashSet};

/// Data-science operations the explainer recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Same rows, byte-identical (a copy).
    Copy,
    /// Same row count and key set; one or more columns added
    /// (feature engineering).
    ColumnAddition,
    /// Same row count and key set; columns removed.
    Projection,
    /// Same row count and key set; same columns, values transformed
    /// (normalization/cleaning) — the canonical row-preserving operation.
    RowPreservingTransform,
    /// Target's keys are a strict subset (selection/filter).
    Filter,
    /// Target's keys are a strict superset (append/ingest).
    Append,
    /// Same keys mostly, some rows changed and some added/removed (edits).
    Update,
    /// No structural pattern matched.
    Unknown,
}

impl Operation {
    pub fn name(self) -> &'static str {
        match self {
            Operation::Copy => "copy",
            Operation::ColumnAddition => "column-addition",
            Operation::Projection => "projection",
            Operation::RowPreservingTransform => "row-preserving-transform",
            Operation::Filter => "filter",
            Operation::Append => "append",
            Operation::Update => "update",
            Operation::Unknown => "unknown",
        }
    }
}

/// The best shared candidate-key column pair between two artifacts: the
/// pair of (source column, target column) whose value sets overlap most.
pub fn shared_key(src: &Artifact, dst: &Artifact) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize, f64)> = None;
    for &sc in &src.candidate_keys() {
        let s_set = src.key_set(sc);
        if s_set.is_empty() {
            continue;
        }
        for &dc in &dst.candidate_keys() {
            let d_set = dst.key_set(dc);
            let inter = s_set.intersection(&d_set).count() as f64;
            let union = (s_set.len() + d_set.len()) as f64 - inter;
            if union == 0.0 {
                continue;
            }
            let j = inter / union;
            if best.map(|(_, _, b)| j > b).unwrap_or(true) {
                best = Some((sc, dc, j));
            }
        }
    }
    best
}

/// Classify the derivation `src → dst`.
pub fn explain_edge(src: &Artifact, dst: &Artifact) -> Operation {
    // Identical contents (any column order difference counts as transform).
    if src.columns == dst.columns && src.rows == dst.rows {
        return Operation::Copy;
    }

    let src_cols: HashSet<&String> = src.columns.iter().collect();
    let dst_cols: HashSet<&String> = dst.columns.iter().collect();

    let Some((sk, dk, key_jaccard)) = shared_key(src, dst) else {
        return Operation::Unknown;
    };
    if key_jaccard < 0.05 {
        return Operation::Unknown;
    }
    let s_keys = src.key_set(sk);
    let d_keys = dst.key_set(dk);

    if s_keys == d_keys {
        // Row-preserving family: distinguish by schema.
        if dst_cols.is_superset(&src_cols) && dst_cols.len() > src_cols.len() {
            return Operation::ColumnAddition;
        }
        if dst_cols.is_subset(&src_cols) && dst_cols.len() < src_cols.len() {
            return Operation::Projection;
        }
        if src.columns == dst.columns {
            return Operation::RowPreservingTransform;
        }
        // Renamed columns etc.
        return Operation::RowPreservingTransform;
    }
    if d_keys.is_subset(&s_keys) {
        return Operation::Filter;
    }
    if d_keys.is_superset(&s_keys) {
        return Operation::Append;
    }
    // Mixed adds/removes on a largely shared key set.
    if key_jaccard > 0.5 {
        return Operation::Update;
    }
    Operation::Unknown
}

/// Fraction of `dst` rows whose key exists in `src` with identical
/// non-key values (used by the inference scorer to distinguish
/// updates from transforms).
pub fn unchanged_row_fraction(src: &Artifact, dst: &Artifact) -> f64 {
    let Some((sk, dk, _)) = shared_key(src, dst) else {
        return 0.0;
    };
    let by_key: HashMap<i64, &Vec<i64>> = src.rows.iter().map(|r| (r[sk], r)).collect();
    if dst.rows.is_empty() {
        return 0.0;
    }
    let shared_cols: Vec<(usize, usize)> = dst
        .columns
        .iter()
        .enumerate()
        .filter_map(|(dc, name)| src.column_index(name).map(|sc| (sc, dc)))
        .collect();
    let mut unchanged = 0usize;
    for row in &dst.rows {
        if let Some(srow) = by_key.get(&row[dk]) {
            if shared_cols.iter().all(|&(sc, dc)| srow[sc] == row[dc]) {
                unchanged += 1;
            }
        }
    }
    unchanged as f64 / dst.rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Artifact {
        Artifact::new(
            "base",
            vec!["id".into(), "x".into()],
            (0..50).map(|i| vec![i, i * 10]).collect(),
            0,
        )
    }

    #[test]
    fn classify_copy() {
        let a = base();
        let mut b = base();
        b.name = "copy".into();
        assert_eq!(explain_edge(&a, &b), Operation::Copy);
    }

    #[test]
    fn classify_column_addition() {
        let a = base();
        let b = Artifact::new(
            "plus",
            vec!["id".into(), "x".into(), "norm".into()],
            (0..50).map(|i| vec![i, i * 10, i]).collect(),
            1,
        );
        assert_eq!(explain_edge(&a, &b), Operation::ColumnAddition);
    }

    #[test]
    fn classify_projection() {
        let a = base();
        let b = Artifact::new(
            "proj",
            vec!["id".into()],
            (0..50).map(|i| vec![i]).collect(),
            1,
        );
        assert_eq!(explain_edge(&a, &b), Operation::Projection);
    }

    #[test]
    fn classify_row_preserving_transform() {
        let a = base();
        let b = Artifact::new(
            "norm",
            vec!["id".into(), "x".into()],
            (0..50).map(|i| vec![i, i]).collect(), // x normalized
            1,
        );
        assert_eq!(explain_edge(&a, &b), Operation::RowPreservingTransform);
    }

    #[test]
    fn classify_filter_and_append() {
        let a = base();
        let filtered = Artifact::new(
            "f",
            a.columns.clone(),
            (0..25).map(|i| vec![i, i * 10]).collect(),
            1,
        );
        assert_eq!(explain_edge(&a, &filtered), Operation::Filter);
        let appended = Artifact::new(
            "g",
            a.columns.clone(),
            (0..60).map(|i| vec![i, i * 10]).collect(),
            1,
        );
        assert_eq!(explain_edge(&a, &appended), Operation::Append);
    }

    #[test]
    fn classify_update() {
        let a = base();
        // Drop 5 keys, add 5 new ones, keep the bulk.
        let rows: Vec<Vec<i64>> = (5..55).map(|i| vec![i, i * 10]).collect();
        let b = Artifact::new("u", a.columns.clone(), rows, 1);
        assert_eq!(explain_edge(&a, &b), Operation::Update);
    }

    #[test]
    fn unrelated_is_unknown() {
        let a = base();
        let b = Artifact::new(
            "other",
            vec!["k".into(), "v".into()],
            (5000..5050).map(|i| vec![i, i]).collect(),
            1,
        );
        assert_eq!(explain_edge(&a, &b), Operation::Unknown);
    }

    #[test]
    fn unchanged_fraction() {
        let a = base();
        let mut rows: Vec<Vec<i64>> = (0..50).map(|i| vec![i, i * 10]).collect();
        for row in rows.iter_mut().take(10) {
            row[1] = -1; // 10 of 50 changed
        }
        let b = Artifact::new("u", a.columns.clone(), rows, 1);
        let f = unchanged_row_fraction(&a, &b);
        assert!((f - 0.8).abs() < 1e-9);
    }
}
