//! Untracked repositories: artifacts with data but no lineage metadata.

use std::collections::HashSet;

/// A dataset artifact found in a shared folder: a table with named columns,
/// integer cells, and only a filesystem timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<i64>>,
    /// Filesystem modification time (seconds); the only metadata available.
    pub timestamp: i64,
}

impl Artifact {
    pub fn new(
        name: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<i64>>,
        timestamp: i64,
    ) -> Self {
        let a = Artifact {
            name: name.into(),
            columns,
            rows,
            timestamp,
        };
        debug_assert!(a.rows.iter().all(|r| r.len() == a.columns.len()));
        a
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Values of one column.
    pub fn column_values(&self, idx: usize) -> Vec<i64> {
        self.rows.iter().map(|r| r[idx]).collect()
    }

    /// Columns whose values are all distinct — candidate keys (§8.4 infers
    /// row-preserving derivations by matching key sets).
    pub fn candidate_keys(&self) -> Vec<usize> {
        (0..self.num_cols())
            .filter(|&c| {
                let mut seen = HashSet::with_capacity(self.rows.len());
                self.rows.iter().all(|r| seen.insert(r[c]))
            })
            .collect()
    }

    /// The set of values of a column (for key-set comparison).
    pub fn key_set(&self, col: usize) -> HashSet<i64> {
        self.rows.iter().map(|r| r[col]).collect()
    }

    /// Row fingerprints: hash of the full row (order-insensitive multiset
    /// comparisons between artifacts).
    pub fn row_hashes(&self) -> Vec<u64> {
        self.rows.iter().map(|r| hash_row(r)).collect()
    }
}

/// Deterministic row hash.
pub fn hash_row(row: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &v in row {
        h ^= v as u64;
        h = h.wrapping_mul(0x100000001b3);
        h ^= h >> 29;
    }
    h
}

/// A collection of artifacts with unknown lineage.
#[derive(Debug, Clone, Default)]
pub struct UntrackedRepository {
    pub artifacts: Vec<Artifact>,
}

impl UntrackedRepository {
    pub fn new() -> Self {
        UntrackedRepository::default()
    }

    pub fn add(&mut self, artifact: Artifact) -> usize {
        self.artifacts.push(artifact);
        self.artifacts.len() - 1
    }

    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Artifact {
        Artifact::new(
            "t",
            vec!["id".into(), "x".into()],
            vec![vec![1, 10], vec![2, 10], vec![3, 30]],
            100,
        )
    }

    #[test]
    fn candidate_keys_detects_unique_columns() {
        let a = table();
        assert_eq!(a.candidate_keys(), vec![0]);
    }

    #[test]
    fn key_set_and_hashes() {
        let a = table();
        assert_eq!(a.key_set(0), [1, 2, 3].into_iter().collect());
        let h = a.row_hashes();
        assert_eq!(h.len(), 3);
        assert_ne!(h[0], h[1]);
        // Hash is deterministic.
        assert_eq!(h, table().row_hashes());
    }

    #[test]
    fn repository_add() {
        let mut r = UntrackedRepository::new();
        assert!(r.is_empty());
        r.add(table());
        assert_eq!(r.len(), 1);
    }
}
