//! Min-hash sketches for candidate-pair pruning (§8.6).
//!
//! Computing exact overlaps between all `O(n²)` artifact pairs is the
//! workflow bottleneck; a small min-hash signature per artifact estimates
//! Jaccard similarity in `O(k)` per pair, and only pairs above a similarity
//! floor proceed to exact scoring.

use crate::repo::Artifact;

/// Number of hash functions in a sketch.
pub const SKETCH_SIZE: usize = 32;

/// A min-hash signature over an artifact's row-hash set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sketch {
    sig: [u64; SKETCH_SIZE],
}

fn mix(x: u64, salt: u64) -> u64 {
    let mut z = x ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Sketch {
    /// Sketch of an artifact's rows.
    pub fn of_rows(artifact: &Artifact) -> Sketch {
        Self::of_items(artifact.row_hashes().into_iter())
    }

    /// Sketch of arbitrary item hashes.
    pub fn of_items(items: impl Iterator<Item = u64>) -> Sketch {
        let mut sig = [u64::MAX; SKETCH_SIZE];
        for item in items {
            for (i, s) in sig.iter_mut().enumerate() {
                let h = mix(item, 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                if h < *s {
                    *s = h;
                }
            }
        }
        Sketch { sig }
    }

    /// Estimated Jaccard similarity: fraction of matching signature slots.
    pub fn jaccard(&self, other: &Sketch) -> f64 {
        let matches = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / SKETCH_SIZE as f64
    }
}

impl Sketch {
    /// Sketch of an artifact's distinct cell values. Row-preserving
    /// transforms rewrite rows but keep key values, so value sketches keep
    /// those pairs alive through pruning.
    pub fn of_values(artifact: &Artifact) -> Sketch {
        let mut values: Vec<u64> = artifact
            .rows
            .iter()
            .flat_map(|r| r.iter().map(|&v| v as u64 ^ 0xA5A5_5A5A_DEAD_BEEF))
            .collect();
        values.sort_unstable();
        values.dedup();
        Self::of_items(values.into_iter())
    }
}

/// Candidate pairs whose estimated row *or* value similarity exceeds
/// `floor`, from all `n·(n−1)/2` pairs. Returns `(i, j)` with `i < j`.
pub fn candidate_pairs(artifacts: &[Artifact], floor: f64) -> Vec<(usize, usize)> {
    let rows: Vec<Sketch> = artifacts.iter().map(Sketch::of_rows).collect();
    let values: Vec<Sketch> = artifacts.iter().map(Sketch::of_values).collect();
    let mut out = Vec::new();
    for i in 0..artifacts.len() {
        for j in (i + 1)..artifacts.len() {
            let sim = rows[i].jaccard(&rows[j]).max(values[i].jaccard(&values[j]));
            if sim >= floor {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(name: &str, rows: Vec<Vec<i64>>) -> Artifact {
        Artifact::new(name, vec!["id".into(), "x".into()], rows, 0)
    }

    #[test]
    fn identical_artifacts_have_similarity_one() {
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i * 2]).collect();
        let a = artifact("a", rows.clone());
        let b = artifact("b", rows);
        assert_eq!(Sketch::of_rows(&a).jaccard(&Sketch::of_rows(&b)), 1.0);
    }

    #[test]
    fn disjoint_artifacts_have_low_similarity() {
        let a = artifact("a", (0..100).map(|i| vec![i, i]).collect());
        let b = artifact("b", (1000..1100).map(|i| vec![i, i]).collect());
        assert!(Sketch::of_rows(&a).jaccard(&Sketch::of_rows(&b)) < 0.2);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // 80% overlap → estimate near 0.8 (min-hash is unbiased).
        let a = artifact("a", (0..100).map(|i| vec![i, i]).collect());
        let b = artifact("b", (20..120).map(|i| vec![i, i]).collect());
        // True Jaccard = 80 / 120 ≈ 0.667.
        let est = Sketch::of_rows(&a).jaccard(&Sketch::of_rows(&b));
        assert!((est - 0.667).abs() < 0.25, "estimate {est}");
    }

    #[test]
    fn pruning_keeps_similar_pairs() {
        let arts = vec![
            artifact("a", (0..100).map(|i| vec![i, i]).collect()),
            artifact("b", (5..105).map(|i| vec![i, i]).collect()),
            artifact("c", (9000..9100).map(|i| vec![i, i]).collect()),
        ];
        let pairs = candidate_pairs(&arts, 0.3);
        assert!(pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(1, 2)));
    }
}
