//! Synthetic untracked repositories with known lineage (§8.8's evaluation
//! workloads): a base table evolved by random data-science operations, the
//! true derivation edges recorded as ground truth.

use crate::explain::Operation;
use crate::repo::{Artifact, UntrackedRepository};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of artifacts to derive (plus the base).
    pub derivations: usize,
    /// Rows in the base table.
    pub base_rows: usize,
    /// Columns in the base table (first is the key).
    pub base_cols: usize,
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            derivations: 20,
            base_rows: 500,
            base_cols: 6,
            seed: 7,
        }
    }
}

/// A synthesized workload: repository + ground-truth edges with the
/// operation that produced each.
#[derive(Debug, Clone)]
pub struct SynthWorkload {
    pub repo: UntrackedRepository,
    /// `(parent, child, operation)` ground truth.
    pub truth: Vec<(usize, usize, Operation)>,
}

/// Generate a workload.
pub fn synthesize(config: SynthConfig) -> SynthWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut repo = UntrackedRepository::new();
    let mut truth = Vec::new();

    let columns: Vec<String> = (0..config.base_cols)
        .map(|i| if i == 0 { "id".into() } else { format!("c{i}") })
        .collect();
    let mut next_key = config.base_rows as i64;
    let base_rows: Vec<Vec<i64>> = (0..config.base_rows as i64)
        .map(|i| {
            let mut row = vec![i];
            for c in 1..config.base_cols {
                row.push((i * 31 + c as i64 * 7) % 1000);
            }
            row
        })
        .collect();
    let base = repo.add(Artifact::new("base", columns, base_rows, 0));

    for step in 1..=config.derivations {
        // Derive from a random existing artifact.
        let parent_idx = rng.random_range(0..repo.len());
        let parent = repo.artifacts[parent_idx].clone();
        let op = match rng.random_range(0..6u32) {
            0 => Operation::ColumnAddition,
            1 => Operation::Projection,
            2 => Operation::RowPreservingTransform,
            3 => Operation::Filter,
            4 => Operation::Append,
            _ => Operation::Update,
        };
        let name = format!("{}_{}", parent.name, op.name());
        let ts = step as i64 * 10;
        let child = match op {
            Operation::ColumnAddition => {
                let mut columns = parent.columns.clone();
                columns.push(format!("derived{step}"));
                let rows = parent
                    .rows
                    .iter()
                    .map(|r| {
                        let mut row = r.clone();
                        row.push(r.iter().sum::<i64>() % 997);
                        row
                    })
                    .collect();
                Artifact::new(name, columns, rows, ts)
            }
            Operation::Projection if parent.num_cols() > 2 => {
                // Keep the key and drop the last column.
                let keep = parent.num_cols() - 1;
                let columns = parent.columns[..keep].to_vec();
                let rows = parent.rows.iter().map(|r| r[..keep].to_vec()).collect();
                Artifact::new(name, columns, rows, ts)
            }
            Operation::RowPreservingTransform if parent.num_cols() > 1 => {
                // Normalize one non-key column.
                let col = 1 + rng.random_range(0..parent.num_cols() - 1);
                let rows = parent
                    .rows
                    .iter()
                    .map(|r| {
                        let mut row = r.clone();
                        row[col] = (row[col] % 10) + 1000 * step as i64;
                        row
                    })
                    .collect();
                Artifact::new(name, parent.columns.clone(), rows, ts)
            }
            Operation::Filter if parent.num_rows() > 10 => {
                let keep = parent.num_rows() * 7 / 10;
                let rows = parent.rows[..keep].to_vec();
                Artifact::new(name, parent.columns.clone(), rows, ts)
            }
            Operation::Append => {
                let mut rows = parent.rows.clone();
                for _ in 0..(parent.num_rows() / 5).max(1) {
                    let mut row = vec![next_key];
                    next_key += 1;
                    for c in 1..parent.num_cols() {
                        row.push((next_key * 13 + c as i64) % 1000);
                    }
                    rows.push(row);
                }
                Artifact::new(name, parent.columns.clone(), rows, ts)
            }
            Operation::Update if parent.num_rows() > 10 && parent.num_cols() > 1 => {
                let mut rows = parent.rows.clone();
                // Change a tenth of the rows, drop a couple, add a couple.
                let n = rows.len();
                for row in rows.iter_mut().take(n / 10) {
                    row[1] = (row[1] + 1) % 1000;
                }
                rows.truncate(n - 2);
                for _ in 0..2 {
                    let mut row = vec![next_key];
                    next_key += 1;
                    for c in 1..parent.num_cols() {
                        row.push((next_key * 17 + c as i64) % 1000);
                    }
                    rows.push(row);
                }
                Artifact::new(name, parent.columns.clone(), rows, ts)
            }
            // Fallback when a precondition failed: plain copy.
            _ => Artifact::new(name, parent.columns.clone(), parent.rows.clone(), ts),
        };
        let actual_op = if child.columns == parent.columns && child.rows == parent.rows {
            Operation::Copy
        } else {
            op
        };
        let child_idx = repo.add(child);
        truth.push((parent_idx, child_idx, actual_op));
    }

    let _ = base;
    SynthWorkload { repo, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let w = synthesize(SynthConfig::default());
        assert_eq!(w.repo.len(), 21);
        assert_eq!(w.truth.len(), 20);
        // Every child has exactly one true parent, and parents precede
        // children in timestamp.
        for &(p, c, _) in &w.truth {
            assert!(w.repo.artifacts[p].timestamp < w.repo.artifacts[c].timestamp);
        }
    }

    #[test]
    fn deterministic() {
        let a = synthesize(SynthConfig::default());
        let b = synthesize(SynthConfig::default());
        assert_eq!(a.truth.len(), b.truth.len());
        for (x, y) in a.truth.iter().zip(&b.truth) {
            assert_eq!(x, y);
        }
        let c = synthesize(SynthConfig {
            seed: 99,
            ..SynthConfig::default()
        });
        assert!(
            a.truth != c.truth || a.repo.artifacts.len() != c.repo.artifacts.len() || {
                // Different seeds may coincidentally match in ops but the data
                // should differ somewhere.
                a.repo
                    .artifacts
                    .iter()
                    .zip(&c.repo.artifacts)
                    .any(|(x, y)| x != y)
            }
        );
    }
}
