//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.10` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer ranges. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and
//! statistically strong enough for benchmark-dataset generation (it is
//! the same family `rand`'s `SmallRng` uses).

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface: uniformly distributed 64-bit outputs.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sample types produced by [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types over which [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased sampling of `[0, span)` (`span == 0` means the full 2^64 range)
/// by widening multiplication with rejection (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniform sample of the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Legacy alias: `rand 0.8`-style code uses `Rng` for the extension trait.
pub use crate::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic across platforms and runs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into four nonzero words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let u = rng.random_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn full_range_inclusive_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }
}
