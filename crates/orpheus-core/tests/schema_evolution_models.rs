//! Regression test: incremental commits across a schema change must leave
//! every physical model serving type-correct checkouts of *old* versions
//! (per-version tables freeze their schema; §4.3's single-pool widening
//! has to be applied on read).

use orpheus_core::cvd::Cvd;
use orpheus_core::models::{load_cvd, ModelKind};
use orpheus_core::Vid;
use partition::Rid;
use relstore::{Column, CostTracker, DataType, Database, ExecContext, Schema, Value};

#[test]
fn incremental_commit_across_widening_serves_aligned_rows() {
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int64),
        Column::new("x", DataType::Int64),
    ]);
    let (cvd0, v0) = Cvd::init(
        "t",
        schema,
        vec!["k".into()],
        vec![vec![Value::Int64(1), Value::Int64(7)]],
        "a",
    )
    .unwrap();

    for kind in ModelKind::all() {
        let mut cvd = cvd0.clone();
        let mut db = Database::new();
        let mut model = kind.build(cvd.name());
        load_cvd(model.as_mut(), &mut db, &cvd).unwrap();

        // Schema evolves AFTER the physical store was loaded: x widens to
        // decimal and a new column appears.
        let new_schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("x", DataType::Float64),
            Column::new("note", DataType::Text),
        ]);
        let res = cvd
            .commit_with_schema(
                &[v0],
                &new_schema,
                vec![vec![
                    Value::Int64(1),
                    Value::Float64(7.5),
                    Value::from("updated"),
                ]],
                "widen",
                "a",
            )
            .unwrap();
        let new_rids: Vec<Rid> = ((cvd.num_records() - res.new_records)..cvd.num_records())
            .map(|i| Rid(i as u64))
            .collect();
        model
            .apply_commit(&mut db, &cvd, res.vid, &new_rids, &mut CostTracker::new())
            .unwrap();

        // Old version's checkout must match the (widened) logical record:
        // x = Float64(7.0), note = NULL.
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, v0, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1, "{}", kind.name());
        assert_eq!(rows[0][2], Value::Float64(7.0), "{} x type", kind.name());
        assert_eq!(rows[0][3], Value::Null, "{} padded column", kind.name());

        // New version serves the committed values.
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, res.vid, &mut ctx).unwrap();
        assert_eq!(rows[0][2], Value::Float64(7.5), "{}", kind.name());
        assert_eq!(rows[0][3], Value::from("updated"), "{}", kind.name());
        let _ = Vid(0);
    }
}
