//! Integration tests for the versioned query layer (§3.3.2) against a
//! multi-version protein-interaction CVD, exercising the query paths the
//! command surface builds on.

use orpheus_core::cvd::Cvd;
use orpheus_core::models::{load_cvd, SplitByRlist};
use orpheus_core::query::{predicate_expr, VersionedQuery};
use orpheus_core::Vid;
use relstore::{AggFunc, BinOp, Column, DataType, Database, ExecContext, Schema, Value};

fn row(p1: &str, p2: &str, coex: i64) -> Vec<Value> {
    vec![Value::from(p1), Value::from(p2), Value::Int64(coex)]
}

/// Four versions: v0 base; v1 bumps one score; v2 adds records; v3 merges.
fn setup() -> (Database, Cvd, SplitByRlist) {
    let schema = Schema::new(vec![
        Column::new("protein1", DataType::Text),
        Column::new("protein2", DataType::Text),
        Column::new("coexpression", DataType::Int64),
    ]);
    let (mut cvd, v0) = Cvd::init(
        "Interaction",
        schema,
        vec!["protein1".into(), "protein2".into()],
        vec![row("A", "B", 10), row("C", "D", 90), row("E", "F", 50)],
        "alice",
    )
    .unwrap();
    let base: Vec<Vec<Value>> = cvd
        .checkout_rows(&[v0])
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let mut m1 = base.clone();
    m1[0][2] = Value::Int64(95);
    let v1 = cvd.commit(&[v0], m1, "bump AB", "bob").unwrap().vid;
    let mut m2 = base.clone();
    m2.push(row("G", "H", 99));
    m2.push(row("I", "J", 5));
    let v2 = cvd.commit(&[v0], m2, "add GH IJ", "carol").unwrap().vid;
    let merged: Vec<Vec<Value>> = cvd
        .checkout_rows(&[v1, v2])
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    cvd.commit(&[v1, v2], merged, "merge", "dave").unwrap();

    let mut db = Database::new();
    let mut model = SplitByRlist::new(cvd.name());
    load_cvd(&mut model, &mut db, &cvd).unwrap();
    (db, cvd, model)
}

#[test]
fn select_across_versions_unions_records() {
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    // v1 ∪ v2 with coexpression > 80: AB(95 in v1), CD(90 in both), GH(99).
    let pred = predicate_expr(&cvd, &("coexpression".into(), BinOp::Gt, Value::Int64(80))).unwrap();
    let rs = q
        .select_versions(&[Vid(1), Vid(2)], Some(pred), None, &mut ctx)
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn limit_caps_results() {
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    let rs = q
        .select_versions(&[Vid(3)], None, Some(2), &mut ctx)
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn aggregate_by_version_counts_and_sums() {
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    let rs = q
        .aggregate_by_version(AggFunc::Count, "rid", None, &mut ctx)
        .unwrap();
    // v0: 3, v1: 3, v2: 5, v3: 5.
    let counts: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(counts, vec![(0, 3), (1, 3), (2, 5), (3, 5)]);

    let rs = q
        .aggregate_by_version(AggFunc::Max, "coexpression", None, &mut ctx)
        .unwrap();
    let max_v3 = rs.rows.iter().find(|r| r[0] == Value::Int64(3)).unwrap();
    assert_eq!(max_v3[1], Value::Int64(99));
}

#[test]
fn aggregate_with_predicate_filters_first() {
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    let pred = predicate_expr(&cvd, &("protein1".into(), BinOp::Eq, Value::from("A"))).unwrap();
    let rs = q
        .aggregate_by_version(AggFunc::Count, "rid", Some(pred), &mut ctx)
        .unwrap();
    // Every version has exactly one (A, B) record.
    for r in &rs.rows {
        assert_eq!(r[1], Value::Int64(1));
    }
}

#[test]
fn versions_where_aggregate_selects_versions() {
    // §4.1's example: "find versions where the total count of tuples with
    // protein1 = X is greater than N" — here versions with > 4 records.
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    let vids = q
        .versions_where_aggregate(
            AggFunc::Count,
            "rid",
            None,
            BinOp::Gt,
            Value::Int64(4),
            &mut ctx,
        )
        .unwrap();
    assert_eq!(vids, vec![Vid(2), Vid(3)]);
}

#[test]
fn v_diff_and_v_intersect_materialize() {
    let (db, cvd, model) = setup();
    let q = VersionedQuery::new(&db, &cvd, &model);
    let mut ctx = ExecContext::new();
    // v1 \ v0 = the bumped AB record.
    let rs = q.v_diff(Vid(1), Vid(0), &mut ctx).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][3], Value::Int64(95));
    // Records common to all four versions: CD and EF.
    let all: Vec<Vid> = (0..4).map(Vid).collect();
    let rs = q.v_intersect(&all, &mut ctx).unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn graph_primitives_on_the_merge() {
    let (_, cvd, _) = setup();
    // ancestor(v3) = {v0, v1, v2}; descendant(v0) = {v1, v2, v3};
    // parent(v3) = {v1, v2}.
    let mut anc = cvd.graph().ancestors(Vid(3));
    anc.sort();
    assert_eq!(anc, vec![Vid(0), Vid(1), Vid(2)]);
    let mut desc = cvd.graph().descendants(Vid(0));
    desc.sort();
    assert_eq!(desc, vec![Vid(1), Vid(2), Vid(3)]);
    assert_eq!(cvd.graph().parents(Vid(3)), &[Vid(1), Vid(2)]);
    assert_eq!(cvd.meta(Vid(3)).unwrap().author, "dave");
}

#[test]
fn checkout_costs_reflect_version_sizes() {
    let (db, cvd, model) = setup();
    use orpheus_core::models::VersioningModel;
    let mut small = ExecContext::new();
    model.checkout(&db, &cvd, Vid(0), &mut small).unwrap();
    let mut large = ExecContext::new();
    model.checkout(&db, &cvd, Vid(3), &mut large).unwrap();
    // Both scan the same shared data table, so page costs match, but the
    // larger version emits more tuples.
    assert!(large.tracker.tuples >= small.tracker.tuples);
}
