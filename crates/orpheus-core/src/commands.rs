//! The OrpheusDB command surface (§3.3): git-style version control
//! commands, the access-controlled staging area, user management, CSV
//! import/export, and the `run` command for versioned SQL.
//!
//! `OrpheusDb` plays the role of the middleware in Fig. 3.1: the query
//! translator ([`crate::query`]), record/version managers
//! ([`crate::cvd`]), partition optimizer ([`crate::partitioned`] +
//! [`partition`]), provenance manager (the staging registry here), and the
//! access controller (staging-table ownership checks).

use crate::catalog;
use crate::cvd::{CommitResult, Cvd};
use crate::error::{Error, Result};
use crate::models::{load_cvd, SplitByRlist, VersioningModel};
use crate::partitioned::PartitionedStore;
use crate::query::{parse_query, predicate_expr, QueryResult, VQuery, VersionedQuery};
use partition::{lyresplit_for_budget, Vid};
use relstore::{Column, DataType, Database, ExecContext, Row, Schema, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// A CVD registered in the system, with its physical representation.
struct CvdHandle {
    cvd: Cvd,
    model: SplitByRlist,
    partitioned: Option<PartitionedStore>,
}

/// Provenance metadata of an uncommitted checkout (staging table or file):
/// which CVD and parent versions it derives from, who owns it, and when it
/// was created (§3.2, provenance manager).
#[derive(Debug, Clone, PartialEq)]
pub struct StagingInfo {
    pub cvd: String,
    pub parents: Vec<Vid>,
    pub owner: String,
    pub created_at: u64,
}

/// Output of [`OrpheusDb::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutput {
    Message(String),
    Version(Vid),
    Table(QueryResult),
    Listing(Vec<String>),
    Csv(String),
}

/// The OrpheusDB middleware.
pub struct OrpheusDb {
    db: Database,
    cvds: HashMap<String, CvdHandle>,
    users: Vec<String>,
    current_user: Option<String>,
    staging: HashMap<String, StagingInfo>,
    clock: u64,
    /// Cumulative cost accounting across every command this instance ran.
    /// Commands absorb their per-query trackers here instead of dropping
    /// them, so `metrics` reports lifetime estimated I/O.
    tracker: RefCell<relstore::CostTracker>,
    /// Morsel workers for checkout and version queries. `1` (the default)
    /// keeps every plan sequential, bit-for-bit identical to the
    /// single-threaded engine.
    threads: usize,
    /// Whether `commit` ends with its own durability point (the default).
    /// The server's group-commit path turns this off and issues one
    /// checkpoint per *batch* of commits instead, so N concurrent commits
    /// cost one WAL fsync rather than N.
    auto_checkpoint: bool,
    /// Data directory of a durable instance; every durability point also
    /// writes the catalog snapshot (`catalog.orc`) here, so `open_durable`
    /// can reload the CVDs after a crash. `None` in memory.
    data_dir: Option<std::path::PathBuf>,
    /// Slow-query threshold in milliseconds (`ORPHEUS_SLOW_MS`, default
    /// 100): any command taking at least this long logs one structured
    /// line to stderr with its trace id and top self-time spans. `0`
    /// logs every command. Always on — independent of journal sampling.
    slow_ms: u64,
}

/// Worker count an instance starts with: `ORPHEUS_THREADS` when set to a
/// positive integer, otherwise 1 (sequential).
fn default_threads() -> usize {
    std::env::var("ORPHEUS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Default for OrpheusDb {
    fn default() -> Self {
        Self::new()
    }
}

impl OrpheusDb {
    pub fn new() -> Self {
        OrpheusDb {
            db: Database::new(),
            cvds: HashMap::new(),
            users: Vec::new(),
            current_user: None,
            staging: HashMap::new(),
            clock: 0,
            tracker: RefCell::new(relstore::CostTracker::new()),
            threads: default_threads(),
            auto_checkpoint: true,
            data_dir: None,
            slow_ms: obs::journal::env_slow_ms(),
        }
    }

    /// An OrpheusDB instance whose relational storage lives in `dir`
    /// behind a write-ahead log: every `commit` ends with an atomic
    /// checkpoint, and reopening after a crash replays the log. The
    /// returned report says what recovery repaired.
    ///
    /// Each durability point also snapshots the logical catalog (users,
    /// CVDs, version graphs, record payloads) into `catalog.orc` in `dir`;
    /// reopening loads that snapshot and re-materializes the physical
    /// models, so committed versions survive even `kill -9`. Uncommitted
    /// staging tables are deliberately *not* snapshotted — a crash
    /// discards uncommitted work, like a lost session.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<(Self, relstore::RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        let (db, report) = Database::open_durable(&dir, pool_pages)?;
        let mut odb = OrpheusDb {
            db,
            cvds: HashMap::new(),
            users: Vec::new(),
            current_user: None,
            staging: HashMap::new(),
            clock: 0,
            tracker: RefCell::new(relstore::CostTracker::new()),
            threads: default_threads(),
            auto_checkpoint: true,
            data_dir: Some(dir.clone()),
            slow_ms: obs::journal::env_slow_ms(),
        };
        if let Some(snap) = catalog::read_snapshot(&dir)? {
            odb.users = snap.users;
            odb.clock = snap.clock;
            for cvd in snap.cvds {
                let mut model = SplitByRlist::new(cvd.name());
                load_cvd(&mut model, &mut odb.db, &cvd)?;
                odb.cvds.insert(
                    cvd.name().to_owned(),
                    CvdHandle {
                        cvd,
                        model,
                        partitioned: None,
                    },
                );
            }
        }
        Ok((odb, report))
    }

    /// Whether `commit` ends with its own checkpoint.
    pub fn auto_checkpoint(&self) -> bool {
        self.auto_checkpoint
    }

    /// Toggle the per-commit checkpoint. With `false`, callers own
    /// durability: they must call [`checkpoint`](Self::checkpoint)
    /// themselves (the server's group-commit loop does this once per
    /// batch). Data is still fully WAL-logged either way — this only
    /// moves *when* the atomic durability point happens.
    pub fn set_auto_checkpoint(&mut self, on: bool) {
        self.auto_checkpoint = on;
    }

    /// Morsel workers used by checkout and version queries.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Set the morsel worker count. `1` runs every plan sequentially;
    /// zero clamps to 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The worker pool queries run on, or `None` at one thread (the
    /// sequential operators are used unmodified).
    ///
    /// Parallel checkout and query plans ship zero-copy page leases to
    /// the workers, which requires clean pages. On a durable database the
    /// per-commit [`checkpoint`](Self::checkpoint) (on by default)
    /// guarantees that; uncheckpointed pages — including everything on an
    /// in-memory database, where checkpoint is a no-op — fall back to
    /// per-page copies counted in `pagestore.pool.bytes_copied_to_workers`
    /// — same bytes out, just not free.
    fn worker_pool(&self) -> Option<relstore::WorkerPool> {
        if self.threads > 1 {
            Some(relstore::WorkerPool::with_observability(
                self.threads,
                self.db.metrics().clone(),
                self.db.recorder().clone(),
            ))
        } else {
            None
        }
    }

    /// Slow-query threshold in milliseconds.
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// Override the slow-query threshold (`ORPHEUS_SLOW_MS` sets the
    /// initial value); `0` logs every command.
    pub fn set_slow_ms(&mut self, ms: u64) {
        self.slow_ms = ms;
    }

    /// Whether the storage layer has a write-ahead log attached.
    pub fn is_durable(&self) -> bool {
        self.db.is_durable()
    }

    /// Force a durability point (`checkpoint`): flush every dirty page
    /// under WAL protection and persist the catalog snapshot next to the
    /// page file. Returns `false` (doing nothing) on an in-memory
    /// instance.
    pub fn checkpoint(&self) -> Result<bool> {
        let flushed = self.db.checkpoint()?;
        if flushed {
            self.persist_catalog()?;
        }
        Ok(flushed)
    }

    /// Write the catalog snapshot of a durable instance (no-op in memory).
    /// CVDs are serialized in name order so identical logical state yields
    /// identical snapshot bytes.
    fn persist_catalog(&self) -> Result<()> {
        let Some(dir) = &self.data_dir else {
            return Ok(());
        };
        let mut cvds: Vec<&Cvd> = self.cvds.values().map(|h| &h.cvd).collect();
        cvds.sort_by_key(|c| c.name());
        catalog::write_snapshot(dir, &self.users, self.clock, &cvds)
    }

    /// Replay the write-ahead log (`recover`), as after a crash.
    pub fn recover(&self) -> Result<relstore::RecoveryReport> {
        Ok(self.db.recover()?)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    // -- user management (`create_user`, `config`, `whoami`) ---------------

    pub fn create_user(&mut self, name: &str) -> Result<()> {
        if self.users.iter().any(|u| u == name) {
            return Err(Error::UserError(format!("user {name} already exists")));
        }
        self.users.push(name.to_owned());
        Ok(())
    }

    /// Log in (`config`).
    pub fn login(&mut self, name: &str) -> Result<()> {
        if !self.users.iter().any(|u| u == name) {
            return Err(Error::UserError(format!("no such user: {name}")));
        }
        self.current_user = Some(name.to_owned());
        Ok(())
    }

    pub fn whoami(&self) -> Result<&str> {
        self.current_user
            .as_deref()
            .ok_or_else(|| Error::UserError("no user logged in".into()))
    }

    // -- observability (`stats`, `metrics`, `spans`) ------------------------

    /// Buffer-pool I/O counters accumulated since the last reset.
    pub fn io_stats(&self) -> relstore::IoStats {
        self.db.io_stats()
    }

    /// Zero the buffer-pool I/O counters (`stats reset`).
    pub fn reset_io_stats(&self) {
        self.db.reset_io_stats()
    }

    /// The scoped span recorder every command and pool operation writes to.
    pub fn recorder(&self) -> &obs::Recorder {
        self.db.recorder()
    }

    /// The scoped metrics registry (latency histograms live here; counters
    /// are refreshed by [`publish_metrics`](Self::publish_metrics)).
    pub fn metrics(&self) -> &obs::Registry {
        self.db.metrics()
    }

    /// Lifetime estimated cost counters accumulated across commands.
    pub fn cost_tracker(&self) -> relstore::CostTracker {
        *self.tracker.borrow()
    }

    /// Refresh the registry's counters from the pool's cumulative
    /// `IoStats` and the lifetime cost tracker. Idempotent (counters are
    /// set, not added); histograms are untouched — they accumulate as
    /// commands run.
    pub fn publish_metrics(&self) {
        self.db.publish_metrics();
        self.tracker.borrow().publish(self.db.metrics());
        self.db.recorder().journal().publish(self.db.metrics());
    }

    /// Render the shared pool's counters for the `stats` shell command.
    pub fn stats_report(&self) -> String {
        let s = self.db.io_stats();
        let mut report = format!(
            "buffer pool: {} frames × {} B pages\n\
             logical reads : {}\n\
             buffer hits   : {} ({:.1}% hit rate)\n\
             physical reads: {}\n\
             evictions     : {}\n\
             pages written : {} ({} eviction write-backs, {} flushed)",
            self.db.pool().capacity(),
            relstore::PAGE_SIZE,
            s.logical_reads,
            s.hits(),
            s.hit_rate() * 100.0,
            s.physical_reads,
            s.evictions,
            s.pages_written(),
            s.write_backs,
            s.flushed_writes,
        );
        if self.db.is_durable() {
            report.push_str(&format!(
                "\nwal           : {} records / {} B, {} fsync(s), {} checkpoint(s)",
                s.wal_appends, s.wal_bytes, s.wal_fsyncs, s.checkpoints
            ));
        }
        report
    }

    // -- cvd lifecycle ------------------------------------------------------

    /// `init`: register a new CVD from a schema and initial rows.
    pub fn init_cvd(
        &mut self,
        name: &str,
        schema: Schema,
        pk: Vec<String>,
        rows: Vec<Row>,
    ) -> Result<Vid> {
        if self.cvds.contains_key(name) {
            return Err(Error::CvdExists(name.to_owned()));
        }
        let author = self.whoami()?.to_owned();
        let (cvd, v0) = Cvd::init(name, schema, pk, rows, &author)?;
        let mut model = SplitByRlist::new(name);
        load_cvd(&mut model, &mut self.db, &cvd)?;
        self.cvds.insert(
            name.to_owned(),
            CvdHandle {
                cvd,
                model,
                partitioned: None,
            },
        );
        Ok(v0)
    }

    /// `log`: render a CVD's version graph as text — the command-line
    /// analogue of the demo's version-graph visualization (the SIGMOD'17 demo).
    pub fn log(&self, cvd_name: &str) -> Result<String> {
        let cvd = self.cvd(cvd_name)?;
        let mut out = String::new();
        for meta in cvd.metas().iter().rev() {
            let parents = if meta.parents.is_empty() {
                "(root)".to_string()
            } else {
                meta.parents
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let records = cvd.version_records(meta.vid)?.len();
            out.push_str(&format!(
                "* {}  ← {parents}
    author: {}  records: {records}  msg: {}
",
                meta.vid, meta.author, meta.message
            ));
        }
        Ok(out)
    }

    /// `ls`: all CVD names.
    pub fn list_cvds(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cvds.keys().cloned().collect();
        names.sort();
        names
    }

    /// `drop`: remove a CVD and its physical tables.
    pub fn drop_cvd(&mut self, name: &str) -> Result<()> {
        let handle = self
            .cvds
            .remove(name)
            .ok_or_else(|| Error::CvdNotFound(name.to_owned()))?;
        for t in self
            .db
            .tables_with_prefix(&handle.model.table_prefix())
            .into_iter()
            .map(str::to_owned)
            .collect::<Vec<_>>()
        {
            // Best-effort cleanup: the table may already be gone.
            drop(self.db.drop_table(&t));
        }
        if let Some(p) = handle.partitioned {
            p.drop_tables(&mut self.db);
        }
        self.staging.retain(|_, info| info.cvd != name);
        Ok(())
    }

    fn handle(&self, name: &str) -> Result<&CvdHandle> {
        self.cvds
            .get(name)
            .ok_or_else(|| Error::CvdNotFound(name.to_owned()))
    }

    pub fn cvd(&self, name: &str) -> Result<&Cvd> {
        Ok(&self.handle(name)?.cvd)
    }

    /// Staging provenance info of a checked-out table.
    pub fn staging_info(&self, table: &str) -> Option<&StagingInfo> {
        self.staging.get(table)
    }

    // -- checkout / commit ---------------------------------------------------

    /// `checkout [cvd] -v [vids] -t [table]`: materialize one or more
    /// versions into a private staging table.
    pub fn checkout(&mut self, cvd_name: &str, versions: &[Vid], table: &str) -> Result<()> {
        let _span = self.db.recorder().enter("orpheus.checkout");
        let start = Instant::now();
        let owner = self.whoami()?.to_owned();
        let created_at = self.tick();
        let handle = self.handle(cvd_name)?;
        let rows = handle.cvd.checkout_rows(versions)?;
        let schema = handle.cvd.schema().clone();
        if self.db.has_table(table) {
            return Err(Error::Storage(relstore::Error::TableExists(
                table.to_owned(),
            )));
        }
        let t = self.db.create_table(table, schema)?;
        for (_, row) in rows {
            t.insert(row)?;
        }
        self.staging.insert(
            table.to_owned(),
            StagingInfo {
                cvd: cvd_name.to_owned(),
                parents: versions.to_vec(),
                owner,
                created_at,
            },
        );
        self.db
            .metrics()
            .observe_duration("orpheus.checkout.latency_us", start.elapsed());
        Ok(())
    }

    /// Access-control check on a staging table (§3.3.1: only the user who
    /// checked a table out may read or commit it).
    fn authorize(&self, table: &str) -> Result<&StagingInfo> {
        let info = self
            .staging
            .get(table)
            .ok_or_else(|| Error::NotCheckedOut(table.to_owned()))?;
        let user = self.whoami()?;
        if info.owner != user {
            return Err(Error::PermissionDenied {
                user: user.to_owned(),
                table: table.to_owned(),
            });
        }
        Ok(info)
    }

    /// Mutable access to a staging table for the current user (to run
    /// modifications before committing).
    pub fn staging_table_mut(&mut self, table: &str) -> Result<&mut relstore::Table> {
        self.authorize(table)?;
        self.db.table_mut(table).map_err(Error::Storage)
    }

    pub fn staging_table(&self, table: &str) -> Result<&relstore::Table> {
        self.authorize(table)?;
        self.db.table(table).map_err(Error::Storage)
    }

    /// `commit -t [table] -m [message]`: add the (possibly modified)
    /// staging table back to its CVD as a new version, then drop it from
    /// the staging area.
    pub fn commit(&mut self, table: &str, message: &str) -> Result<CommitResult> {
        let _span = self.db.recorder().enter("orpheus.commit");
        let start = Instant::now();
        let info = self.authorize(table)?.clone();
        let author = self.whoami()?.to_owned();
        let staged = self.db.table(table)?;
        let schema = staged.schema().clone();
        let rows: Vec<Row> = staged.iter().map(|(_, r)| r.clone()).collect();
        let handle = self
            .cvds
            .get_mut(&info.cvd)
            .ok_or_else(|| Error::CvdNotFound(info.cvd.clone()))?;
        let result = if &schema == handle.cvd.schema() {
            handle.cvd.commit(&info.parents, rows, message, &author)?
        } else {
            handle
                .cvd
                .commit_with_schema(&info.parents, &schema, rows, message, &author)?
        };
        // Physical apply: new rids are those the commit introduced.
        let new_rids: Vec<partition::Rid> = {
            let total = handle.cvd.num_records();
            ((total - result.new_records)..total)
                .map(|i| partition::Rid(i as u64))
                .collect()
        };
        handle.model.apply_commit(
            &mut self.db,
            &handle.cvd,
            result.vid,
            &new_rids,
            &mut self.tracker.borrow_mut(),
        )?;
        if let Some(p) = handle.partitioned.as_mut() {
            // Online maintenance: attach to the best parent's partition.
            let best_parent = info
                .parents
                .iter()
                .max_by_key(|&&pv| handle.cvd.graph().weight(pv, result.vid))
                .copied();
            let mut tracker = self.tracker.borrow_mut();
            match best_parent {
                Some(parent) => {
                    let pid = p.partitioning().partition_of(parent);
                    p.append_version(
                        &mut self.db,
                        &handle.cvd,
                        result.vid,
                        pid,
                        false,
                        &mut tracker,
                    )?;
                }
                None => {
                    let pid = p.partitioning().num_partitions();
                    p.append_version(
                        &mut self.db,
                        &handle.cvd,
                        result.vid,
                        pid,
                        true,
                        &mut tracker,
                    )?;
                }
            }
        }
        // Cleanup: remove the staging table (§3.3.1).
        self.db.drop_table(table)?;
        self.staging.remove(table);
        // Durability point: once the version graph and data tables hold
        // the new version, checkpoint so a crash cannot lose it. On an
        // in-memory instance this is a no-op; under group commit the
        // server issues one checkpoint per batch instead.
        if self.auto_checkpoint {
            self.checkpoint()?;
        }
        self.db
            .metrics()
            .observe_duration("orpheus.commit.latency_us", start.elapsed());
        Ok(result)
    }

    /// `checkout … -f file.csv`: materialize into CSV text instead of a
    /// table (for analysis in Python/R, §3.3.1).
    pub fn checkout_csv(&mut self, cvd_name: &str, versions: &[Vid], file: &str) -> Result<String> {
        let owner = self.whoami()?.to_owned();
        let created_at = self.tick();
        let handle = self.handle(cvd_name)?;
        let rows = handle.cvd.checkout_rows(versions)?;
        let csv = to_csv(handle.cvd.schema(), rows.iter().map(|(_, r)| r.as_slice()));
        self.staging.insert(
            file.to_owned(),
            StagingInfo {
                cvd: cvd_name.to_owned(),
                parents: versions.to_vec(),
                owner,
                created_at,
            },
        );
        Ok(csv)
    }

    /// `commit -f file.csv -s schema`: commit CSV contents with an explicit
    /// schema string (`name:type,…`) so columns map correctly.
    pub fn commit_csv(
        &mut self,
        file: &str,
        csv: &str,
        schema_spec: &str,
        message: &str,
    ) -> Result<CommitResult> {
        let _span = self.db.recorder().enter("orpheus.commit");
        let start = Instant::now();
        let info = self.authorize(file)?.clone();
        let author = self.whoami()?.to_owned();
        let schema = parse_schema_spec(schema_spec)?;
        let rows = from_csv(&schema, csv)?;
        let handle = self
            .cvds
            .get_mut(&info.cvd)
            .ok_or_else(|| Error::CvdNotFound(info.cvd.clone()))?;
        let result = if &schema == handle.cvd.schema() {
            handle.cvd.commit(&info.parents, rows, message, &author)?
        } else {
            handle
                .cvd
                .commit_with_schema(&info.parents, &schema, rows, message, &author)?
        };
        let new_rids: Vec<partition::Rid> = {
            let total = handle.cvd.num_records();
            ((total - result.new_records)..total)
                .map(|i| partition::Rid(i as u64))
                .collect()
        };
        handle.model.apply_commit(
            &mut self.db,
            &handle.cvd,
            result.vid,
            &new_rids,
            &mut self.tracker.borrow_mut(),
        )?;
        self.staging.remove(file);
        self.db
            .metrics()
            .observe_duration("orpheus.commit.latency_us", start.elapsed());
        Ok(result)
    }

    /// `diff -v a b`: records in one version but not the other.
    pub fn diff(&self, cvd_name: &str, a: Vid, b: Vid) -> Result<(QueryResult, QueryResult)> {
        let _span = self.db.recorder().enter("orpheus.diff");
        let handle = self.handle(cvd_name)?;
        let q =
            VersionedQuery::new(&self.db, &handle.cvd, &handle.model).with_pool(self.worker_pool());
        let mut ctx = ExecContext::new();
        let left = q.v_diff(a, b, &mut ctx)?;
        let right = q.v_diff(b, a, &mut ctx)?;
        self.tracker.borrow_mut().absorb(&ctx.tracker);
        Ok((left, right))
    }

    /// `optimize`: run LyreSplit under a storage threshold
    /// `γ = gamma_factor × |R|` and materialize the partitioned store.
    pub fn optimize(&mut self, cvd_name: &str, gamma_factor: f64) -> Result<usize> {
        let handle = self
            .cvds
            .get_mut(cvd_name)
            .ok_or_else(|| Error::CvdNotFound(cvd_name.to_owned()))?;
        let tree = handle.cvd.tree();
        let gamma = (gamma_factor * handle.cvd.num_records() as f64) as u64;
        let result = lyresplit_for_budget(&tree, gamma);
        let _span = self.db.recorder().enter("orpheus.optimize");
        if let Some(old) = handle.partitioned.take() {
            old.drop_tables(&mut self.db);
        }
        let store = PartitionedStore::build(&mut self.db, &handle.cvd, result.partitioning)?;
        let n = store.partitioning().num_partitions();
        handle.partitioned = Some(store);
        Ok(n)
    }

    /// `plan_storage`: solve the materialization-budget problem for a
    /// CVD's version graph — which versions stay fully materialized and
    /// which are stored as deltas under `C ≤ β = factor × C_min`
    /// (deltastore Problem 7.3, LMG heuristic; the branch-and-bound in
    /// `deltastore::exact` validates the heuristic in its own tests).
    /// Costs are record counts: a materialization weighs `|records(v)|`,
    /// a parent→child delta weighs the symmetric record difference.
    pub fn plan_storage(&self, cvd_name: &str, factor: f64) -> Result<Vec<String>> {
        let _span = self.db.recorder().enter("orpheus.plan_storage");
        let handle = self.handle(cvd_name)?;
        let cvd = &handle.cvd;
        let n = cvd.num_versions();
        let mut graph = deltastore::StorageGraph::new(n, false);
        for (i, meta) in cvd.metas().iter().enumerate() {
            let vid = Vid(i as u32);
            let node = i + 1; // deltastore versions are 1-based
            let recs = cvd.version_records(vid)?;
            graph.add_materialization(node, recs.len() as u64, recs.len() as u64);
            for &p in &meta.parents {
                let (only_a, only_b) = cvd.diff(p, vid)?;
                let d = (only_a.len() + only_b.len()).max(1) as u64;
                graph.add_delta(p.0 as usize + 1, node, d, d);
            }
        }
        let plan = deltastore::plan_with_budget(&graph, factor);
        let mat = plan.materialized();
        let mut out = vec![
            format!(
                "budget β = {} records ({} × min storage {})",
                plan.beta, plan.factor, plan.min_storage
            ),
            format!(
                "materialized {} of {n} version(s): {}",
                mat.len(),
                mat.iter()
                    .map(|v| format!("v{}", v - 1))
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        ];
        out.push(format!(
            "storage {} | sum recreation {} | max recreation {}",
            plan.solution.storage_cost(),
            plan.solution.sum_recreation(),
            plan.solution.max_recreation()
        ));
        Ok(out)
    }

    /// Checkout served by the partitioned store when one exists.
    pub fn checkout_rows_fast(&self, cvd_name: &str, vid: Vid) -> Result<(Vec<Row>, ExecContext)> {
        let _span = self.db.recorder().enter("orpheus.checkout");
        let handle = self.handle(cvd_name)?;
        let mut ctx = ExecContext::new();
        let pool = self.worker_pool();
        let rows = match &handle.partitioned {
            Some(p) => p.checkout_with_pool(&self.db, vid, pool.as_ref(), &mut ctx)?,
            None => handle
                .model
                .checkout_with_pool(&self.db, vid, pool.as_ref(), &mut ctx)?,
        };
        self.tracker.borrow_mut().absorb(&ctx.tracker);
        Ok((rows, ctx))
    }

    /// `run`: execute a versioned SQL string (§3.3.2).
    pub fn run(&self, sql: &str) -> Result<QueryResult> {
        let _span = self.db.recorder().enter("orpheus.query");
        let start = Instant::now();
        let parsed = parse_query(sql)?;
        let mut ctx = ExecContext::new();
        let result = match parsed {
            VQuery::SelectVersions {
                cvd,
                versions,
                predicate,
                limit,
            } => {
                let handle = self.handle(&cvd)?;
                let pred = predicate
                    .as_ref()
                    .map(|p| predicate_expr(&handle.cvd, p))
                    .transpose()?;
                let q = VersionedQuery::new(&self.db, &handle.cvd, &handle.model)
                    .with_pool(self.worker_pool());
                q.select_versions(&versions, pred, limit, &mut ctx)
            }
            VQuery::AggregateByVersion {
                cvd,
                agg,
                agg_col,
                predicate,
            } => {
                let handle = self.handle(&cvd)?;
                let pred = predicate
                    .as_ref()
                    .map(|p| predicate_expr(&handle.cvd, p))
                    .transpose()?;
                let q = VersionedQuery::new(&self.db, &handle.cvd, &handle.model)
                    .with_pool(self.worker_pool());
                let col = if agg_col == "rid" { "rid" } else { &agg_col };
                q.aggregate_by_version(agg, col, pred, &mut ctx)
            }
            VQuery::Diff { cvd, a, b } => {
                let handle = self.handle(&cvd)?;
                let q = VersionedQuery::new(&self.db, &handle.cvd, &handle.model)
                    .with_pool(self.worker_pool());
                q.v_diff(a, b, &mut ctx)
            }
            VQuery::Intersect { cvd, versions } => {
                let handle = self.handle(&cvd)?;
                let q = VersionedQuery::new(&self.db, &handle.cvd, &handle.model)
                    .with_pool(self.worker_pool());
                q.v_intersect(&versions, &mut ctx)
            }
            VQuery::JoinVersions {
                cvd,
                left,
                right,
                on,
            } => {
                let handle = self.handle(&cvd)?;
                let q = VersionedQuery::new(&self.db, &handle.cvd, &handle.model)
                    .with_pool(self.worker_pool());
                q.join_versions(left, right, &on, &mut ctx)
            }
        };
        self.tracker.borrow_mut().absorb(&ctx.tracker);
        self.db
            .metrics()
            .observe_duration("orpheus.query.latency_us", start.elapsed());
        result
    }

    /// `explain analyze <query>`: run the query through an instrumented
    /// plan and report estimated vs. actual figures per operator, plus the
    /// buffer pool's `IoStats` delta across the whole execution. The root
    /// operator's inclusive measured page reads reconcile with that delta.
    pub fn explain_analyze(&self, sql: &str) -> Result<relstore::ExplainReport> {
        let _span = self.db.recorder().enter("orpheus.query");
        let start = Instant::now();
        let parsed = parse_query(sql)?;
        let handle = self.handle(crate::explain::cvd_of(&parsed))?;
        let pool = self.worker_pool();
        let (mut plan, node) = crate::explain::build_instrumented(
            &self.db,
            &handle.cvd,
            &handle.model,
            &parsed,
            pool.as_ref(),
        )?;
        let pool_before = self.db.io_stats();
        let mut ctx = ExecContext::new();
        relstore::collect(plan.as_mut(), &mut ctx)?;
        drop(plan);
        self.tracker.borrow_mut().absorb(&ctx.tracker);
        let wall = start.elapsed();
        self.db
            .metrics()
            .observe_duration("orpheus.query.latency_us", wall);
        Ok(relstore::ExplainReport {
            root: node.snapshot(),
            pool_delta: self.db.io_stats().since(&pool_before),
            wall,
        })
    }

    /// An immutable, thread-safe snapshot of a CVD for lock-free reads.
    /// Server sessions pin one of these and evaluate versioned SQL against
    /// it on their own thread, without ever entering the engine thread.
    pub fn snapshot(&self, cvd: &str) -> Result<crate::snapshot::Snapshot> {
        Ok(crate::snapshot::Snapshot::of(self.cvd(cvd)?))
    }

    /// Execute `line` on behalf of `user`, auto-registering unknown users
    /// — the multi-session entry point. The instance-wide `config` login
    /// is saved and restored around the command, so interleaved sessions
    /// never observe each other's identity (the engine serializes
    /// `execute_as` calls; this makes each call self-contained).
    pub fn execute_as(&mut self, user: &str, line: &str) -> Result<CommandOutput> {
        if !self.users.iter().any(|u| u == user) {
            self.users.push(user.to_owned());
        }
        let prev = self.current_user.replace(user.to_owned());
        let out = self.execute(line);
        self.current_user = prev;
        out
    }

    /// Execute a command-line style command string; the textual surface of
    /// §3.3.1 (e.g. `checkout Interaction -v 1 -t my_table`).
    ///
    /// Every non-introspection command runs under an `orpheus.request`
    /// span: a fresh trace id is minted here (CLI/shell), or the open
    /// server-session trace is inherited, so morsel-worker and WAL spans
    /// downstream re-attach to this request. Commands at or over the
    /// slow-query threshold additionally log one structured line to
    /// stderr (stdout stays byte-identical across thread counts).
    pub fn execute(&mut self, line: &str) -> Result<CommandOutput> {
        let cmd = line.split_whitespace().next().unwrap_or("");
        // Introspection commands read the observability state; tracing
        // them would perturb the very tree/journal they render.
        if matches!(cmd, "spans" | "metrics" | "stats" | "trace" | "threads") {
            return self.dispatch(line);
        }
        let started = std::time::Instant::now();
        let (trace_id, result) = {
            let span = self.db.recorder().enter_request("orpheus.request");
            let trace_id = span.trace_id();
            (trace_id, self.dispatch(line))
        };
        let elapsed = started.elapsed();
        if elapsed.as_millis() as u64 >= self.slow_ms {
            self.log_slow_query(line, trace_id, elapsed);
        }
        result
    }

    /// One line per over-threshold command: trace id, latency, statement,
    /// and the top-3 self-time spans from the journal (when the trace was
    /// sampled). Written to stderr so CI's stdout determinism diff and
    /// shell pipelines never see it.
    fn log_slow_query(&self, line: &str, trace_id: u64, elapsed: std::time::Duration) {
        let events = self.db.recorder().journal().trace_events(trace_id);
        let top = obs::journal::self_times(&events);
        let spans = if top.is_empty() {
            " spans=(journal disabled or unsampled)".to_owned()
        } else {
            let mut s = String::from(" spans=");
            for (i, (name, us)) in top.iter().take(3).enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{name}:{us}us"));
            }
            s
        };
        eprintln!(
            "slow-query trace={trace_id:#x} ms={} stmt={line:?}{spans}",
            elapsed.as_millis()
        );
    }

    fn dispatch(&mut self, line: &str) -> Result<CommandOutput> {
        let args: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = args.first() else {
            return Err(Error::Parse("empty command".into()));
        };
        match cmd {
            "create_user" => {
                let name = arg_at(&args, 1)?;
                self.create_user(name)?;
                Ok(CommandOutput::Message(format!("created user {name}")))
            }
            "config" => {
                let name = arg_at(&args, 1)?;
                self.login(name)?;
                Ok(CommandOutput::Message(format!("logged in as {name}")))
            }
            "whoami" => Ok(CommandOutput::Message(self.whoami()?.to_owned())),
            "ls" => Ok(CommandOutput::Listing(self.list_cvds())),
            "log" => {
                let name = arg_at(&args, 1)?;
                Ok(CommandOutput::Message(self.log(name)?))
            }
            "drop" => {
                let name = arg_at(&args, 1)?;
                self.drop_cvd(name)?;
                Ok(CommandOutput::Message(format!("dropped {name}")))
            }
            "checkout" => {
                let cvd = arg_at(&args, 1)?.to_owned();
                let versions = flag_values(&args, "-v")?
                    .iter()
                    .map(|s| s.parse::<u32>().map(Vid))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|e| Error::Parse(format!("bad version id: {e}")))?;
                let table = flag_value(&args, "-t")?.to_owned();
                self.checkout(&cvd, &versions, &table)?;
                Ok(CommandOutput::Message(format!(
                    "checked out {} version(s) of {cvd} into {table}",
                    versions.len()
                )))
            }
            "insert" => {
                // `insert <table> <csv values…>`: append one row to a
                // checked-out staging table — how network sessions (which
                // cannot reach `staging_table_mut` across the wire) modify
                // a checkout before committing it.
                let table = arg_at(&args, 1)?.to_owned();
                let rest = line
                    .trim_start()
                    .strip_prefix(cmd)
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix(&table))
                    .map(str::trim)
                    .unwrap_or("");
                if rest.is_empty() {
                    return Err(Error::Parse("usage: insert <table> <csv values>".into()));
                }
                let t = self.staging_table_mut(&table)?;
                let schema = t.schema().clone();
                let row = parse_csv_row(&schema, rest)?;
                t.insert(row)?;
                Ok(CommandOutput::Message(format!(
                    "inserted 1 row into {table}"
                )))
            }
            "init" => {
                // `init <cvd> -f <csv path> -s <schema> [-k pk,…]`: bulk
                // load from a server-side CSV file (the CLI shell has its
                // own client-side variant of this command).
                let name = arg_at(&args, 1)?.to_owned();
                let path = flag_value(&args, "-f")?;
                let spec = flag_value(&args, "-s")?;
                let pk: Vec<String> = flag_value(&args, "-k")
                    .map(|s| s.split(',').map(str::to_owned).collect())
                    .unwrap_or_default();
                let schema = parse_schema_spec(spec)?;
                let csv = std::fs::read_to_string(path)
                    .map_err(|e| Error::Parse(format!("cannot read {path}: {e}")))?;
                let rows = from_csv(&schema, &csv)?;
                let v0 = self.init_cvd(&name, schema, pk, rows)?;
                Ok(CommandOutput::Message(format!(
                    "initialized {name} at {v0}"
                )))
            }
            "commit" => {
                let table = flag_value(&args, "-t")?.to_owned();
                let message = flag_values(&args, "-m")?.join(" ");
                let result = self.commit(&table, &message)?;
                Ok(CommandOutput::Version(result.vid))
            }
            "diff" => {
                let cvd = arg_at(&args, 1)?.to_owned();
                let vs = flag_values(&args, "-v")?;
                if vs.len() != 2 {
                    return Err(Error::Parse("diff needs exactly two versions".into()));
                }
                let a = Vid(vs[0].parse().map_err(|_| Error::Parse("bad vid".into()))?);
                let b = Vid(vs[1].parse().map_err(|_| Error::Parse("bad vid".into()))?);
                let (left, _right) = self.diff(&cvd, a, b)?;
                Ok(CommandOutput::Table(left))
            }
            "optimize" => {
                let cvd = arg_at(&args, 1)?.to_owned();
                let gamma: f64 = flag_value(&args, "-g")
                    .unwrap_or("2.0")
                    .parse()
                    .map_err(|_| Error::Parse("bad gamma".into()))?;
                let parts = self.optimize(&cvd, gamma)?;
                Ok(CommandOutput::Message(format!(
                    "partitioned {cvd} into {parts} partition(s)"
                )))
            }
            "plan_storage" => {
                let cvd = arg_at(&args, 1)?.to_owned();
                let factor = match flag_value(&args, "-b") {
                    Ok(s) => deltastore::budget::parse_mat_budget(s)
                        .map_err(|m| Error::Parse(format!("bad budget factor: {m}")))?,
                    Err(_) => deltastore::budget::env_budget()
                        .unwrap_or(deltastore::budget::DEFAULT_FACTOR),
                };
                Ok(CommandOutput::Listing(self.plan_storage(&cvd, factor)?))
            }
            "run" => {
                let sql = line[cmd.len()..].trim();
                Ok(CommandOutput::Table(self.run(sql)?))
            }
            "explain" => {
                let usage = || Error::Parse("usage: explain analyze [--json] <query>".into());
                let rest = line[cmd.len()..].trim_start();
                let rest = rest.strip_prefix("analyze").ok_or_else(usage)?.trim_start();
                let (json, sql) = match rest.strip_prefix("--json") {
                    Some(r) => (true, r.trim_start()),
                    None => (false, rest),
                };
                if sql.is_empty() {
                    return Err(usage());
                }
                let report = self.explain_analyze(sql)?;
                Ok(CommandOutput::Message(if json {
                    report.to_json().to_string_pretty()
                } else {
                    report.to_text()
                }))
            }
            "metrics" => match args.get(1) {
                Some(&"reset") => {
                    self.db.metrics().reset();
                    Ok(CommandOutput::Message("metrics reset".into()))
                }
                Some(&"--json") => {
                    self.publish_metrics();
                    Ok(CommandOutput::Message(
                        self.db.metrics().to_json().to_string_pretty(),
                    ))
                }
                None => {
                    self.publish_metrics();
                    Ok(CommandOutput::Message(self.db.metrics().render_text()))
                }
                Some(other) => Err(Error::Parse(format!("unknown metrics option: {other}"))),
            },
            "trace" => match (args.get(1), args.get(2)) {
                (Some(&"dump"), Some(&"--json")) => Ok(CommandOutput::Message(
                    self.db.recorder().journal().to_chrome_jsonl(),
                )),
                (Some(&"dump"), None) => Ok(CommandOutput::Message(
                    self.db.recorder().journal().summary_text(),
                )),
                (Some(&"reset"), None) => {
                    self.db.recorder().journal().clear();
                    Ok(CommandOutput::Message("trace journal reset".into()))
                }
                _ => Err(Error::Parse(
                    "usage: trace dump [--json] | trace reset".into(),
                )),
            },
            "spans" => match args.get(1) {
                Some(&"reset") => {
                    self.db.recorder().reset();
                    Ok(CommandOutput::Message("span tree reset".into()))
                }
                Some(&"--json") => Ok(CommandOutput::Message(
                    self.db.recorder().report().to_json().to_string_pretty(),
                )),
                None => Ok(CommandOutput::Message(
                    self.db.recorder().report().to_text(),
                )),
                Some(other) => Err(Error::Parse(format!("unknown spans option: {other}"))),
            },
            "stats" => {
                if args.get(1) == Some(&"reset") {
                    self.reset_io_stats();
                    Ok(CommandOutput::Message("buffer-pool counters reset".into()))
                } else {
                    Ok(CommandOutput::Message(self.stats_report()))
                }
            }
            "threads" => match args.get(1) {
                Some(n) => {
                    let n: usize = n
                        .parse()
                        .map_err(|_| Error::Parse(format!("invalid thread count: {n}")))?;
                    self.set_threads(n);
                    Ok(CommandOutput::Message(format!(
                        "morsel workers set to {}",
                        self.threads()
                    )))
                }
                None => Ok(CommandOutput::Message(format!(
                    "morsel workers: {}",
                    self.threads()
                ))),
            },
            "checkpoint" => {
                if self.checkpoint()? {
                    Ok(CommandOutput::Message("checkpoint complete".into()))
                } else {
                    Ok(CommandOutput::Message(
                        "in-memory instance: nothing to checkpoint (open with a data \
                         directory for durability)"
                            .into(),
                    ))
                }
            }
            "recover" => {
                let report = self.recover()?;
                Ok(CommandOutput::Message(format!("recovery: {report}")))
            }
            other => Err(Error::Parse(format!("unknown command: {other}"))),
        }
    }
}

fn arg_at<'a>(args: &[&'a str], i: usize) -> Result<&'a str> {
    args.get(i)
        .copied()
        .ok_or_else(|| Error::Parse("missing argument".into()))
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Result<&'a str> {
    args.iter()
        .position(|&a| a == flag)
        .and_then(|i| args.get(i + 1).copied())
        .ok_or_else(|| Error::Parse(format!("missing {flag} <value>")))
}

fn flag_values<'a>(args: &[&'a str], flag: &str) -> Result<Vec<&'a str>> {
    let start = args
        .iter()
        .position(|&a| a == flag)
        .ok_or_else(|| Error::Parse(format!("missing {flag}")))?;
    let vals: Vec<&str> = args[start + 1..]
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .copied()
        .collect();
    if vals.is_empty() {
        return Err(Error::Parse(format!("missing values for {flag}")));
    }
    Ok(vals)
}

// ---------------------------------------------------------------------------
// CSV import/export
// ---------------------------------------------------------------------------

/// Serialize rows to CSV with a header line.
pub fn to_csv<'a>(schema: &Schema, rows: impl Iterator<Item = &'a [Value]>) -> String {
    let mut out = String::new();
    let header: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Text(s) if s.contains(',') || s.contains('"') => {
                    format!("\"{}\"", s.replace('"', "\"\""))
                }
                other => other.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV text (with header) into rows of the given schema.
pub fn from_csv(schema: &Schema, csv: &str) -> Result<Vec<Row>> {
    let mut lines = csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::Parse("empty csv".into()))?;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() != schema.len() {
        return Err(Error::Parse(format!(
            "csv has {} columns, schema expects {}",
            names.len(),
            schema.len()
        )));
    }
    let mut rows = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        rows.push(parse_csv_row(schema, line)?);
    }
    Ok(rows)
}

/// Parse one CSV data line (no header) into a row of the given schema.
/// Shared by [`from_csv`] and the `insert` command.
pub fn parse_csv_row(schema: &Schema, line: &str) -> Result<Row> {
    let fields = split_csv_line(line);
    if fields.len() != schema.len() {
        return Err(Error::Parse(format!(
            "csv row has {} fields, expected {}",
            fields.len(),
            schema.len()
        )));
    }
    let mut row = Vec::with_capacity(fields.len());
    for (field, col) in fields.iter().zip(schema.columns()) {
        let v = if field.is_empty() {
            Value::Null
        } else {
            match col.dtype {
                DataType::Int64 => Value::Int64(
                    field
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad int: {field}")))?,
                ),
                DataType::Float64 => Value::Float64(
                    field
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float: {field}")))?,
                ),
                DataType::Bool => Value::Bool(field == "true"),
                DataType::Text => Value::Text(field.clone()),
                DataType::IntArray => {
                    return Err(Error::Parse("arrays not supported in csv".into()))
                }
            }
        };
        row.push(v);
    }
    Ok(row)
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parse a schema spec string: `name:int,name:text,name:float,name:bool`.
pub fn parse_schema_spec(spec: &str) -> Result<Schema> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| Error::Parse(format!("bad schema entry: {part}")))?;
        let dtype = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => DataType::Int64,
            "float" | "decimal" | "double" => DataType::Float64,
            "text" | "string" | "varchar" => DataType::Text,
            "bool" | "boolean" => DataType::Bool,
            other => return Err(Error::Parse(format!("unknown type: {other}"))),
        };
        cols.push(Column::nullable(name.trim().to_owned(), dtype));
    }
    Ok(Schema::new(cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> OrpheusDb {
        let mut odb = OrpheusDb::new();
        odb.create_user("alice").unwrap();
        odb.create_user("bob").unwrap();
        odb.login("alice").unwrap();
        let schema = Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("coexpression", DataType::Int64),
        ]);
        let rows = vec![
            vec![Value::from("A"), Value::from("B"), Value::Int64(10)],
            vec![Value::from("C"), Value::from("D"), Value::Int64(90)],
            vec![Value::from("E"), Value::from("F"), Value::Int64(50)],
        ];
        odb.init_cvd(
            "Interaction",
            schema,
            vec!["protein1".into(), "protein2".into()],
            rows,
        )
        .unwrap();
        odb
    }

    #[test]
    fn plan_storage_reports_materializations_under_budget() {
        let mut odb = setup();
        // Grow a few versions so the plan has real deltas to choose from.
        for i in 0..4 {
            odb.checkout("Interaction", &[Vid(i)], "w").unwrap();
            let t = odb.staging_table_mut("w").unwrap();
            t.insert(vec![
                Value::from(format!("X{i}")),
                Value::from(format!("Y{i}")),
                Value::Int64(i as i64),
            ])
            .unwrap();
            odb.commit("w", "grow").unwrap();
        }
        let out = odb.execute("plan_storage Interaction -b 1.0").unwrap();
        let CommandOutput::Listing(lines) = out else {
            panic!("expected listing, got {out:?}");
        };
        assert!(lines[0].contains("budget β"), "{lines:?}");
        assert!(lines[1].contains("materialized"), "{lines:?}");
        // With β = C_min only the root anchors; deltas carry the rest.
        assert!(lines[1].contains("1 of 5"), "{lines:?}");
        // A loose budget may only lower the recreation objective.
        let loose = odb.execute("plan_storage Interaction -b 5.0").unwrap();
        let CommandOutput::Listing(loose_lines) = loose else {
            panic!("expected listing");
        };
        assert!(loose_lines[2].contains("sum recreation"), "{loose_lines:?}");
        // Bad factors are parse errors, not silent defaults.
        assert!(odb.execute("plan_storage Interaction -b nope").is_err());
        assert!(odb.execute("plan_storage Interaction -b 0.5").is_err());
    }

    #[test]
    fn checkout_modify_commit_cycle() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "work").unwrap();
        {
            let t = odb.staging_table_mut("work").unwrap();
            let id = t
                .iter()
                .find(|(_, r)| r[0] == Value::from("A"))
                .map(|(id, _)| id)
                .unwrap();
            let mut row = t.get(id).unwrap().clone();
            row[2] = Value::Int64(11);
            t.update(id, row).unwrap();
        }
        let res = odb.commit("work", "bump AB").unwrap();
        assert_eq!(res.vid, Vid(1));
        assert_eq!(res.new_records, 1);
        // Staging table is gone after commit.
        assert!(odb.staging_table("work").is_err());
        let meta = odb.cvd("Interaction").unwrap().meta(Vid(1)).unwrap();
        assert_eq!(meta.parents, vec![Vid(0)]);
        assert_eq!(meta.author, "alice");
        assert_eq!(meta.message, "bump AB");
    }

    #[test]
    fn access_control_blocks_other_users() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "private").unwrap();
        odb.login("bob").unwrap();
        assert!(matches!(
            odb.staging_table("private"),
            Err(Error::PermissionDenied { .. })
        ));
        assert!(matches!(
            odb.commit("private", "steal"),
            Err(Error::PermissionDenied { .. })
        ));
        odb.login("alice").unwrap();
        assert!(odb.commit("private", "mine").is_ok());
    }

    #[test]
    fn command_strings_roundtrip() {
        let mut odb = setup();
        let out = odb.execute("whoami").unwrap();
        assert_eq!(out, CommandOutput::Message("alice".into()));
        odb.execute("checkout Interaction -v 0 -t t1").unwrap();
        let out = odb.execute("commit -t t1 -m no changes").unwrap();
        assert_eq!(out, CommandOutput::Version(Vid(1)));
        let out = odb.execute("ls").unwrap();
        assert_eq!(out, CommandOutput::Listing(vec!["Interaction".into()]));
        let out = odb
            .execute("run SELECT * FROM VERSION 0 OF CVD Interaction WHERE coexpression > 40")
            .unwrap();
        match out {
            CommandOutput::Table(t) => assert_eq!(t.rows.len(), 2),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn versioned_sql_aggregate() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            t.insert(vec![Value::from("G"), Value::from("H"), Value::Int64(99)])
                .unwrap();
        }
        odb.commit("w", "insert GH").unwrap();
        let result = odb
            .run("SELECT vid, count(*) FROM CVD Interaction GROUP BY vid")
            .unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0], vec![Value::Int64(0), Value::Int64(3)]);
        assert_eq!(result.rows[1], vec![Value::Int64(1), Value::Int64(4)]);
    }

    #[test]
    fn csv_checkout_commit() {
        let mut odb = setup();
        let csv = odb
            .checkout_csv("Interaction", &[Vid(0)], "data.csv")
            .unwrap();
        assert!(csv.starts_with("protein1,protein2,coexpression\n"));
        assert_eq!(csv.lines().count(), 4);
        // Edit the csv externally: change a value.
        let edited = csv.replace("A,B,10", "A,B,12");
        let res = odb
            .commit_csv(
                "data.csv",
                &edited,
                "protein1:text,protein2:text,coexpression:int",
                "via csv",
            )
            .unwrap();
        assert_eq!(res.new_records, 1);
    }

    #[test]
    fn optimize_builds_partitions_and_serves_checkouts() {
        let mut odb = setup();
        // A couple of divergent versions.
        for i in 0..4 {
            let table = format!("t{i}");
            odb.checkout("Interaction", &[Vid(i)], &table).unwrap();
            {
                let t = odb.staging_table_mut(&table).unwrap();
                t.insert(vec![
                    Value::from(format!("X{i}")),
                    Value::from("Y"),
                    Value::Int64(i as i64),
                ])
                .unwrap();
            }
            odb.commit(&table, "grow").unwrap();
        }
        let parts = odb.optimize("Interaction", 2.0).unwrap();
        assert!(parts >= 1);
        let (rows, _ctx) = odb.checkout_rows_fast("Interaction", Vid(4)).unwrap();
        assert_eq!(
            rows.len(),
            odb.cvd("Interaction")
                .unwrap()
                .version_records(Vid(4))
                .unwrap()
                .len()
        );
        // Committing after optimize appends to the partitioned store.
        odb.checkout("Interaction", &[Vid(4)], "post").unwrap();
        let res = odb.commit("post", "after optimize").unwrap();
        let (rows, _) = odb.checkout_rows_fast("Interaction", res.vid).unwrap();
        assert!(!rows.is_empty());
    }

    #[test]
    fn run_v_diff_and_intersect() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            let id = t.iter().next().map(|(id, _)| id).unwrap();
            let mut row = t.get(id).unwrap().clone();
            row[2] = Value::Int64(1234);
            t.update(id, row).unwrap();
        }
        odb.commit("w", "change one").unwrap();
        let diff = odb
            .run("SELECT * FROM V_DIFF(1, 0) OF CVD Interaction")
            .unwrap();
        assert_eq!(diff.rows.len(), 1);
        assert_eq!(diff.rows[0][3], Value::Int64(1234));
        let common = odb
            .run("SELECT * FROM V_INTERSECT(0, 1) OF CVD Interaction")
            .unwrap();
        assert_eq!(common.rows.len(), 2);
    }

    #[test]
    fn log_renders_version_graph() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        odb.commit("w", "second").unwrap();
        let out = odb.log("Interaction").unwrap();
        // Newest first, with parent pointers and metadata.
        let first = out.lines().next().unwrap();
        assert!(first.starts_with("* v1"), "{first}");
        assert!(out.contains("← v0"));
        assert!(out.contains("(root)"));
        assert!(out.contains("msg: second"));
        assert!(odb.log("nope").is_err());
    }

    #[test]
    fn run_cross_version_join() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            let id = t
                .iter()
                .find(|(_, r)| r[0] == Value::from("A"))
                .map(|(id, _)| id)
                .unwrap();
            let mut row = t.get(id).unwrap().clone();
            row[2] = Value::Int64(11);
            t.update(id, row).unwrap();
        }
        odb.commit("w", "bump").unwrap();
        // Join v0 × v1 on coexpression: the two unchanged records match
        // themselves (90=90, 50=50); the changed pair (10 vs 11) does not.
        let rs = odb
            .run("SELECT * FROM VERSION 0 OF CVD Interaction JOIN VERSION 1 ON coexpression")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        // Output carries both sides' attributes.
        assert_eq!(rs.schema.len(), 8);
    }

    #[test]
    fn drop_removes_everything() {
        let mut odb = setup();
        odb.execute("drop Interaction").unwrap();
        assert!(odb.cvd("Interaction").is_err());
        assert!(odb
            .run("SELECT * FROM VERSION 0 OF CVD Interaction")
            .is_err());
    }

    #[test]
    fn csv_quoting_roundtrip() {
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("x", DataType::Int64),
        ]);
        let rows = vec![
            vec![Value::from("a,b"), Value::Int64(1)],
            vec![Value::from("q\"uote"), Value::Int64(2)],
        ];
        let csv = to_csv(&schema, rows.iter().map(|r| r.as_slice()));
        let parsed = from_csv(&schema, &csv).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn schema_spec_parsing() {
        let s = parse_schema_spec("a:int, b:text, c:float, d:bool").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.column(2).unwrap().dtype, DataType::Float64);
        assert!(parse_schema_spec("nope").is_err());
        assert!(parse_schema_spec("x:blob").is_err());
    }

    #[test]
    fn commit_checkpoints_a_durable_instance() {
        let dir = std::env::temp_dir().join(format!("orpheus-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut odb, report) = OrpheusDb::open_durable(&dir, 64).unwrap();
            assert!(!report.did_work());
            assert!(odb.is_durable());
            odb.create_user("alice").unwrap();
            odb.login("alice").unwrap();
            let schema = Schema::new(vec![Column::new("x", DataType::Int64)]);
            odb.init_cvd("d", schema, vec!["x".into()], vec![vec![Value::Int64(1)]])
                .unwrap();
            odb.checkout("d", &[Vid(0)], "w").unwrap();
            odb.staging_table_mut("w")
                .unwrap()
                .insert(vec![Value::Int64(2)])
                .unwrap();
            let before = odb.io_stats().checkpoints;
            odb.commit("w", "add 2").unwrap();
            assert!(
                odb.io_stats().checkpoints > before,
                "commit on a durable instance must end in a checkpoint"
            );
            // The shell surface: `checkpoint` and `recover` respond.
            match odb.execute("checkpoint").unwrap() {
                CommandOutput::Message(m) => assert!(m.contains("checkpoint complete"), "{m}"),
                other => panic!("expected message, got {other:?}"),
            }
            match odb.execute("recover").unwrap() {
                CommandOutput::Message(m) => assert!(m.contains("recovery:"), "{m}"),
                other => panic!("expected message, got {other:?}"),
            }
        }
        // Reopen: the committed pages survive process death.
        let (odb, _) = OrpheusDb::open_durable(&dir, 64).unwrap();
        assert!(odb.db.pool().num_pages() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The catalog snapshot brings the full logical state back after a
    /// hard crash (no clean shutdown): versions, records, authors, users —
    /// and the reopened instance accepts new commits on top.
    #[test]
    fn reopened_durable_instance_recovers_the_catalog() {
        let dir = std::env::temp_dir().join(format!("orpheus-catrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut odb, _) = OrpheusDb::open_durable(&dir, 64).unwrap();
            odb.create_user("alice").unwrap();
            odb.login("alice").unwrap();
            let schema = Schema::new(vec![
                Column::new("k", DataType::Int64),
                Column::new("x", DataType::Int64),
            ]);
            odb.init_cvd(
                "d",
                schema,
                vec!["k".into()],
                vec![vec![Value::Int64(1), Value::Int64(10)]],
            )
            .unwrap();
            odb.checkout("d", &[Vid(0)], "w").unwrap();
            odb.staging_table_mut("w")
                .unwrap()
                .insert(vec![Value::Int64(2), Value::Int64(20)])
                .unwrap();
            odb.commit("w", "add 2").unwrap();
            // No explicit checkpoint and no clean drop-order shutdown:
            // the commit's own durability point must be enough.
        }
        let (mut odb, _) = OrpheusDb::open_durable(&dir, 64).unwrap();
        odb.login("alice").unwrap(); // users survived
        let v1 = odb.run("SELECT * FROM VERSION 1 OF CVD d").unwrap();
        assert_eq!(v1.rows.len(), 2, "committed version survived the reopen");
        assert_eq!(odb.cvd("d").unwrap().meta(Vid(1)).unwrap().author, "alice");
        // The recovered instance is fully writable.
        odb.checkout("d", &[Vid(1)], "w2").unwrap();
        odb.staging_table_mut("w2")
            .unwrap()
            .insert(vec![Value::Int64(3), Value::Int64(30)])
            .unwrap();
        let r = odb.commit("w2", "post-recovery").unwrap();
        assert_eq!(r.vid, Vid(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_command_is_informative_in_memory() {
        let mut odb = setup();
        match odb.execute("checkpoint").unwrap() {
            CommandOutput::Message(m) => assert!(m.contains("in-memory"), "{m}"),
            other => panic!("expected message, got {other:?}"),
        }
        assert!(odb.execute("recover").is_err(), "recover needs a WAL");
    }

    /// The tentpole acceptance test: EXPLAIN ANALYZE on a hash join over
    /// two versions prints estimated and actual rows, measured page reads,
    /// and per-operator wall time — and the root operator's inclusive
    /// measured I/O reconciles with the pool's own `IoStats` delta.
    #[test]
    fn explain_analyze_join_reconciles_with_pool_delta() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            t.insert(vec![Value::from("G"), Value::from("H"), Value::Int64(90)])
                .unwrap();
        }
        odb.commit("w", "add GH").unwrap();
        let sql = "SELECT * FROM VERSION 0 OF CVD Interaction JOIN VERSION 1 ON coexpression";
        let expected = odb.run(sql).unwrap().rows.len() as u64;
        let report = odb.explain_analyze(sql).unwrap();
        assert_eq!(report.root.stats.rows, expected);
        assert_eq!(report.root.children.len(), 2, "join has two inputs");
        // Reconciliation: the instrumented root saw exactly the page
        // traffic the pool recorded across the query.
        assert_eq!(
            report.root.stats.measured.logical_reads, report.pool_delta.logical_reads,
            "root inclusive measured reads must match the pool delta"
        );
        assert_eq!(
            report.root.stats.measured.physical_reads,
            report.pool_delta.physical_reads
        );
        assert!(report.root.stats.measured.logical_reads > 0);
        let text = report.to_text();
        assert!(
            text.contains("HashJoin v0.coexpression=v1.coexpression"),
            "{text}"
        );
        // Parallel plans fuse the probe scan into the join node.
        if odb.threads() > 1 {
            assert!(text.contains("ParHashJoin rid=rid"), "{text}");
        } else {
            assert!(text.contains("SeqScan Interaction__sbr_data"), "{text}");
        }
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains("act rows="), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("pool delta:"), "{text}");
    }

    /// Every query form the parser accepts builds an instrumented plan
    /// whose actual row count agrees with the uninstrumented `run` path.
    #[test]
    fn explain_analyze_matches_run_for_every_query_form() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            t.insert(vec![Value::from("G"), Value::from("H"), Value::Int64(99)])
                .unwrap();
        }
        odb.commit("w", "grow").unwrap();
        let queries = [
            "SELECT * FROM VERSION 0, 1 OF CVD Interaction WHERE coexpression > 40 LIMIT 2",
            "SELECT vid, count(*) FROM CVD Interaction GROUP BY vid",
            "SELECT vid, sum(coexpression) FROM CVD Interaction WHERE coexpression > 40 GROUP BY vid",
            "SELECT * FROM V_DIFF(1, 0) OF CVD Interaction",
            "SELECT * FROM V_INTERSECT(0, 1) OF CVD Interaction",
            "SELECT * FROM VERSION 0 OF CVD Interaction JOIN VERSION 1 ON coexpression",
        ];
        for sql in queries {
            let expected = odb.run(sql).unwrap().rows.len() as u64;
            let report = odb.explain_analyze(sql).unwrap();
            assert_eq!(report.root.stats.rows, expected, "{sql}");
            assert_eq!(
                report.root.stats.measured.logical_reads, report.pool_delta.logical_reads,
                "{sql}"
            );
            // The shell command renders the same report.
            let out = odb.execute(&format!("explain analyze {sql}")).unwrap();
            match out {
                CommandOutput::Message(m) => assert!(m.contains("act rows="), "{m}"),
                other => panic!("expected message, got {other:?}"),
            }
        }
        // JSON form parses and carries the plan tree.
        let out = odb
            .execute("explain analyze --json SELECT * FROM V_DIFF(1, 0) OF CVD Interaction")
            .unwrap();
        match out {
            CommandOutput::Message(m) => {
                let doc = obs::parse(&m).unwrap();
                assert!(doc.get_path("plan/act_rows").is_some(), "{m}");
                assert!(doc.get_path("pool_delta/logical_reads").is_some(), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    /// Regression (drift audit): commit paths used to pass a throwaway
    /// `CostTracker` to `apply_commit`, losing the charges. They must
    /// accumulate in the instance-wide tracker, as must query trackers.
    #[test]
    fn command_costs_accumulate_in_the_lifetime_tracker() {
        let mut odb = setup();
        assert_eq!(odb.cost_tracker().tuples, 0);
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        {
            let t = odb.staging_table_mut("w").unwrap();
            t.insert(vec![Value::from("G"), Value::from("H"), Value::Int64(7)])
                .unwrap();
        }
        odb.commit("w", "add").unwrap();
        let after_commit = odb.cost_tracker();
        assert!(
            after_commit.tuples > 0,
            "apply_commit charges must land in the cumulative tracker"
        );
        odb.run("SELECT * FROM VERSION 1 OF CVD Interaction")
            .unwrap();
        let after_query = odb.cost_tracker();
        assert!(after_query.tuples > after_commit.tuples);
        assert!(
            after_query.measured.logical_reads > 0,
            "measured side absorbed"
        );
        // Online partition maintenance also charges the tracker.
        odb.optimize("Interaction", 2.0).unwrap();
        odb.checkout("Interaction", &[Vid(1)], "w2").unwrap();
        odb.commit("w2", "maintained").unwrap();
        assert!(odb.cost_tracker().index_tuples > after_query.index_tuples);
    }

    #[test]
    fn metrics_command_exports_counters_and_latency_histograms() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        odb.commit("w", "noop").unwrap();
        odb.run("SELECT * FROM VERSION 1 OF CVD Interaction")
            .unwrap();
        let out = odb.execute("metrics --json").unwrap();
        let m = match out {
            CommandOutput::Message(m) => m,
            other => panic!("expected message, got {other:?}"),
        };
        let doc = obs::parse(&m).unwrap();
        let reads = doc
            .get_path("counters/pagestore.pool.logical_reads")
            .and_then(obs::Json::as_f64)
            .unwrap();
        assert!(reads > 0.0, "{m}");
        assert!(
            doc.get_path("gauges/pagestore.pool.hit_ratio").is_some(),
            "{m}"
        );
        assert!(
            doc.get_path("counters/relstore.tracker.tuples")
                .and_then(obs::Json::as_f64)
                .unwrap()
                > 0.0,
            "{m}"
        );
        for h in [
            "histograms/orpheus.commit.latency_us",
            "histograms/orpheus.checkout.latency_us",
            "histograms/orpheus.query.latency_us",
        ] {
            let p50 = doc
                .get_path(&format!("{h}/p50"))
                .and_then(obs::Json::as_f64)
                .unwrap_or_else(|| panic!("missing {h}: {m}"));
            let p99 = doc
                .get_path(&format!("{h}/p99"))
                .and_then(obs::Json::as_f64)
                .unwrap();
            assert!(p50 <= p99, "{h}: p50 {p50} > p99 {p99}");
        }
        // Text form and reset.
        match odb.execute("metrics").unwrap() {
            CommandOutput::Message(t) => assert!(t.contains("orpheus.commit.latency_us"), "{t}"),
            other => panic!("expected message, got {other:?}"),
        }
        odb.execute("metrics reset").unwrap();
        match odb.execute("metrics --json").unwrap() {
            CommandOutput::Message(t) => {
                let doc = obs::parse(&t).unwrap();
                assert!(doc
                    .get_path("histograms/orpheus.commit.latency_us")
                    .is_none());
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn spans_command_shows_the_command_tree() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "w").unwrap();
        odb.commit("w", "noop").unwrap();
        odb.run("SELECT * FROM VERSION 1 OF CVD Interaction")
            .unwrap();
        match odb.execute("spans").unwrap() {
            CommandOutput::Message(m) => {
                assert!(m.contains("orpheus.checkout"), "{m}");
                assert!(m.contains("orpheus.commit"), "{m}");
                assert!(m.contains("orpheus.query"), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        match odb.execute("spans --json").unwrap() {
            CommandOutput::Message(m) => {
                obs::parse(&m).unwrap();
            }
            other => panic!("expected message, got {other:?}"),
        }
        odb.execute("spans reset").unwrap();
        match odb.execute("spans").unwrap() {
            CommandOutput::Message(m) => assert!(m.contains("no spans"), "{m}"),
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn traced_commit_attributes_wal_fsync_to_the_request() {
        let dir = std::env::temp_dir().join(format!("orpheus-trace-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut odb, _) = OrpheusDb::open_durable(&dir, 64).unwrap();
            odb.execute("create_user alice").unwrap();
            odb.execute("config alice").unwrap();
            let csv = dir.join("seed.csv");
            std::fs::write(&csv, "x\n1\n2\n").unwrap();
            odb.execute(&format!("init d -f {} -s x:int -k x", csv.display()))
                .unwrap();
            odb.execute("checkout d -v 0 -t w").unwrap();
            odb.execute("insert w 3").unwrap();
            odb.execute("commit -t w -m add3").unwrap();
            // The WAL fsync of the commit's checkpoint is journaled under
            // the same trace as the commit's own request span.
            let events = odb.recorder().journal().snapshot();
            let fsync = events
                .iter()
                .find(|e| e.phase == obs::Phase::End && e.name.as_ref() == "pagestore.wal.fsync")
                .unwrap_or_else(|| panic!("no fsync event journaled: {events:?}"));
            assert_ne!(fsync.trace_id, 0);
            let same_trace: Vec<&str> = events
                .iter()
                .filter(|e| e.trace_id == fsync.trace_id && e.phase == obs::Phase::End)
                .map(|e| e.name.as_ref())
                .collect();
            assert!(same_trace.contains(&"orpheus.request"), "{same_trace:?}");
            assert!(same_trace.contains(&"orpheus.commit"), "{same_trace:?}");
            // Each executed command minted its own trace.
            let request_traces: std::collections::HashSet<u64> = events
                .iter()
                .filter(|e| e.name.as_ref() == "orpheus.request")
                .map(|e| e.trace_id)
                .collect();
            assert!(request_traces.len() >= 5, "{request_traces:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_query_task_events_carry_the_request_trace() {
        let mut odb = setup();
        odb.set_threads(2);
        odb.execute("checkout Interaction -v 0 -t w").unwrap();
        odb.execute("run SELECT * FROM VERSION 0 OF CVD Interaction")
            .unwrap();
        let events = odb.recorder().journal().snapshot();
        let task = events
            .iter()
            .find(|e| e.phase == obs::Phase::End && e.name.as_ref() == "exec.pool.task")
            .unwrap_or_else(|| panic!("no pool task event journaled: {events:?}"));
        assert_ne!(task.trace_id, 0);
        let same_trace: Vec<&str> = events
            .iter()
            .filter(|e| e.trace_id == task.trace_id)
            .map(|e| e.name.as_ref())
            .collect();
        assert!(same_trace.contains(&"orpheus.request"), "{same_trace:?}");
        // The worker latency histogram was merged into the registry.
        assert!(odb
            .metrics()
            .histogram("exec.pool.task.latency_us")
            .is_some());
    }

    #[test]
    fn trace_dump_and_reset_commands_export_the_journal() {
        let mut odb = setup();
        odb.execute("checkout Interaction -v 0 -t w").unwrap();
        match odb.execute("trace dump").unwrap() {
            CommandOutput::Message(m) => {
                assert!(m.contains("journal:"), "{m}");
                assert!(m.contains("trace 0x"), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        match odb.execute("trace dump --json").unwrap() {
            CommandOutput::Message(m) => {
                assert!(!m.is_empty());
                for line in m.lines() {
                    let missing = obs::missing_keys(
                        line,
                        &["name", "ph", "ts", "pid", "tid", "args/trace", "args/span"],
                    )
                    .unwrap();
                    assert!(missing.is_empty(), "{missing:?} in {line}");
                }
            }
            other => panic!("expected message, got {other:?}"),
        }
        odb.execute("trace reset").unwrap();
        match odb.execute("trace dump --json").unwrap() {
            CommandOutput::Message(m) => assert!(m.is_empty(), "{m}"),
            other => panic!("expected message, got {other:?}"),
        }
        assert!(odb.execute("trace bogus").is_err());
        assert!(odb.execute("trace dump --bogus").is_err());
    }

    #[test]
    fn journal_counters_appear_in_published_metrics() {
        let mut odb = setup();
        odb.execute("checkout Interaction -v 0 -t w").unwrap();
        let m = match odb.execute("metrics --json").unwrap() {
            CommandOutput::Message(m) => m,
            other => panic!("expected message, got {other:?}"),
        };
        let doc = obs::parse(&m).unwrap();
        let recorded = doc
            .get_path("counters/obs.journal.recorded")
            .and_then(obs::Json::as_f64)
            .unwrap();
        assert!(recorded > 0.0, "{m}");
        assert_eq!(
            doc.get_path("counters/obs.journal.dropped")
                .and_then(obs::Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn slow_query_log_threshold_zero_logs_without_breaking_commands() {
        // The slow-query line goes to stderr (stdout stays deterministic),
        // so here we only assert the logging path runs and commands still
        // succeed with the threshold forced to "log everything".
        let mut odb = setup();
        odb.set_slow_ms(0);
        assert_eq!(odb.slow_ms(), 0);
        odb.execute("checkout Interaction -v 0 -t w").unwrap();
        match odb.execute("run SELECT * FROM VERSION 0 OF CVD Interaction") {
            Ok(CommandOutput::Table(t)) => assert_eq!(t.rows.len(), 3),
            other => panic!("expected table, got {other:?}"),
        }
    }

    /// Regression: `stats` on an in-memory instance must not report WAL
    /// traffic — there is no WAL, and printing zeros misleads experiments
    /// comparing durable vs in-memory runs.
    #[test]
    fn stats_report_omits_wal_section_without_a_wal() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "work").unwrap();
        match odb.execute("stats").unwrap() {
            CommandOutput::Message(m) => {
                assert!(
                    !m.contains("wal"),
                    "in-memory stats must not mention WAL: {m}"
                )
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn durable_metrics_include_wal_fsyncs() {
        let dir = std::env::temp_dir().join(format!("orpheus-obs-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut odb, _) = OrpheusDb::open_durable(&dir, 64).unwrap();
            odb.create_user("alice").unwrap();
            odb.login("alice").unwrap();
            let schema = Schema::new(vec![Column::new("x", DataType::Int64)]);
            odb.init_cvd("d", schema, vec!["x".into()], vec![vec![Value::Int64(1)]])
                .unwrap();
            odb.checkout("d", &[Vid(0)], "w").unwrap();
            odb.staging_table_mut("w")
                .unwrap()
                .insert(vec![Value::Int64(2)])
                .unwrap();
            odb.commit("w", "add 2").unwrap();
            // The durable stats line reports fsyncs alongside records.
            let stats = odb.stats_report();
            assert!(stats.contains("fsync(s)"), "{stats}");
            // And metrics --json carries the WAL fsync counter.
            let out = odb.execute("metrics --json").unwrap();
            let m = match out {
                CommandOutput::Message(m) => m,
                other => panic!("expected message, got {other:?}"),
            };
            let doc = obs::parse(&m).unwrap();
            let fsyncs = doc
                .get_path("counters/pagestore.wal.fsyncs")
                .and_then(obs::Json::as_f64)
                .unwrap();
            assert!(fsyncs > 0.0, "{m}");
            // WAL activity shows up as spans nested under the checkpoint.
            let report = odb.recorder().report();
            assert!(report.find("pagestore.checkpoint").is_some());
            assert!(report.find("pagestore.wal.fsync").is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_command_reports_and_resets_pool_counters() {
        let mut odb = setup();
        odb.checkout("Interaction", &[Vid(0)], "work").unwrap();
        assert!(odb.io_stats().logical_reads > 0);
        let out = odb.execute("stats").unwrap();
        match out {
            CommandOutput::Message(m) => {
                assert!(m.contains("hit rate"), "report missing hit rate: {m}");
                assert!(m.contains("physical reads"), "report missing reads: {m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        odb.execute("stats reset").unwrap();
        assert_eq!(odb.io_stats(), relstore::IoStats::default());
    }

    /// A CVD big enough to span several morsels (16 pages ≈ 800 rows per
    /// morsel), with a second version whose diff against v0 is non-trivial.
    fn setup_large() -> OrpheusDb {
        let mut odb = OrpheusDb::new();
        odb.create_user("alice").unwrap();
        odb.login("alice").unwrap();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("grp", DataType::Int64),
            Column::new("score", DataType::Int64),
        ]);
        let rows: Vec<Row> = (0..2500i64)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i % 7),
                    Value::Int64(i * 3 % 101),
                ]
            })
            .collect();
        odb.init_cvd("Big", schema, vec!["k".into()], rows).unwrap();
        odb.checkout("Big", &[Vid(0)], "work").unwrap();
        {
            let t = odb.staging_table_mut("work").unwrap();
            let targets: Vec<_> = t
                .iter()
                .filter(|(_, r)| r[0].as_i64().unwrap() % 5 == 0)
                .map(|(id, r)| (id, r.clone()))
                .collect();
            for (id, mut row) in targets {
                row[2] = Value::Int64(row[2].as_i64().unwrap() + 1000);
                t.update(id, row).unwrap();
            }
        }
        odb.commit("work", "bump every fifth score").unwrap();
        odb
    }

    /// The tentpole determinism guarantee: every checkout, diff, and
    /// versioned-query output is byte-identical at every thread count —
    /// `threads 1` runs the unmodified sequential operators, higher counts
    /// run the morsel-parallel ones.
    #[test]
    fn parallel_outputs_identical_across_thread_counts() {
        let mut odb = setup_large();
        let queries = [
            "SELECT * FROM VERSION 0, 1 OF CVD Big WHERE score > 500 LIMIT 900",
            "SELECT * FROM VERSION 1 OF CVD Big",
            "SELECT vid, sum(score) FROM CVD Big GROUP BY vid",
            "SELECT * FROM V_DIFF(1, 0) OF CVD Big",
            "SELECT * FROM V_INTERSECT(0, 1) OF CVD Big",
            "SELECT * FROM VERSION 0 OF CVD Big JOIN VERSION 1 ON k",
        ];
        odb.set_threads(1);
        let base_checkout = odb.checkout_rows_fast("Big", Vid(1)).unwrap().0;
        let base_diff = odb.diff("Big", Vid(0), Vid(1)).unwrap();
        let base_queries: Vec<_> = queries.iter().map(|q| odb.run(q).unwrap()).collect();
        for threads in [2, 4, 8] {
            odb.set_threads(threads);
            assert_eq!(
                odb.checkout_rows_fast("Big", Vid(1)).unwrap().0,
                base_checkout,
                "checkout diverged at {threads} threads"
            );
            assert_eq!(
                odb.diff("Big", Vid(0), Vid(1)).unwrap(),
                base_diff,
                "diff diverged at {threads} threads"
            );
            for (q, base) in queries.iter().zip(&base_queries) {
                assert_eq!(
                    &odb.run(q).unwrap(),
                    base,
                    "query {q:?} diverged at {threads} threads"
                );
            }
        }
        // The partitioned store's checkout path as well.
        odb.set_threads(1);
        odb.optimize("Big", 4.0).unwrap();
        let base_part = odb.checkout_rows_fast("Big", Vid(1)).unwrap().0;
        assert_eq!(base_part, base_checkout);
        for threads in [2, 4, 8] {
            odb.set_threads(threads);
            assert_eq!(
                odb.checkout_rows_fast("Big", Vid(1)).unwrap().0,
                base_part,
                "partitioned checkout diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn explain_analyze_parallel_plan_reports_workers() {
        let mut odb = setup_large();
        odb.set_threads(4);
        let rows = odb.run("SELECT * FROM VERSION 1 OF CVD Big").unwrap().rows;
        let report = odb
            .explain_analyze("SELECT * FROM VERSION 1 OF CVD Big")
            .unwrap();
        let text = report.to_text();
        assert!(text.contains("ParHashJoin"), "{text}");
        assert!(text.contains("workers=4"), "{text}");
        assert!(text.contains("rows/worker="), "{text}");
        // Per-worker row counts reconcile with the query's output.
        assert_eq!(report.root.worker_rows.len(), 4);
        assert_eq!(
            report.root.worker_rows.iter().sum::<u64>(),
            rows.len() as u64
        );
        // At one thread the plan (and its rendering) is the sequential one.
        odb.set_threads(1);
        let seq = odb
            .explain_analyze("SELECT * FROM VERSION 1 OF CVD Big")
            .unwrap();
        let seq_text = seq.to_text();
        assert!(!seq_text.contains("workers="), "{seq_text}");
        assert!(seq_text.contains("HashJoin"), "{seq_text}");
    }
}
