//! The collaborative versioned dataset (CVD): record manager, version
//! manager, and schema evolution (Chapters 3–4).
//!
//! A CVD corresponds to one relation and implicitly contains many versions
//! of it. Records are immutable: any modification yields a new record with
//! a fresh `rid`. Versions form a DAG (the version graph); each version is
//! a set of `rid`s plus metadata (Fig. 4.2). The `Cvd` struct here is the
//! *logical* source of truth; the physical representations of Chapter 4
//! ([`crate::models`]) are materialized from it.

use crate::error::{Error, Result};
use partition::{Bipartite, Rid, VersionGraph, VersionTree, Vid};
use relstore::{DataType, Row, Schema, Value};
use std::collections::HashMap;

/// Identifier of an entry in the attribute table (§4.3).
pub type AttrId = u32;

/// One row of the attribute table: a (name, type) pair. Any property change
/// of an attribute creates a new entry (Fig. 4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub id: AttrId,
    pub name: String,
    pub dtype: DataType,
}

/// One row of the metadata table (Fig. 4.2a).
#[derive(Debug, Clone, PartialEq)]
pub struct VersionMeta {
    pub vid: Vid,
    pub parents: Vec<Vid>,
    /// Logical checkout timestamp (when the parent was materialized).
    pub checkout_t: u64,
    /// Logical commit timestamp.
    pub commit_t: u64,
    pub message: String,
    pub author: String,
    /// Attribute-table ids present in this version.
    pub attributes: Vec<AttrId>,
}

/// Result of a commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitResult {
    pub vid: Vid,
    /// Records added to the CVD by this commit (new or modified rows).
    pub new_records: usize,
    /// Records reused from the parent version(s).
    pub reused_records: usize,
}

/// Canonical byte encoding of a row, used to detect identical records
/// during commit (the no-cross-version-diff rule compares the committed
/// table against its parent versions only, §3.3.1).
fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for v in row {
        match v {
            Value::Int64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float64(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
            Value::IntArray(a) => {
                out.push(5);
                out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                for x in a {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::Null => out.push(0),
        }
    }
    out
}

/// A collaborative versioned dataset.
#[derive(Debug, Clone)]
pub struct Cvd {
    name: String,
    /// The union ("single-pool", §4.3) schema over all versions.
    schema: Schema,
    /// Primary-key column names (stable across schema evolution).
    pk_names: Vec<String>,
    /// Record payloads by rid, padded to the current union schema width.
    records: Vec<Row>,
    version_records: Vec<Vec<Rid>>,
    graph: VersionGraph,
    metas: Vec<VersionMeta>,
    attributes: Vec<Attribute>,
    clock: u64,
}

impl Cvd {
    /// Initialize a CVD from an initial table of records (the `init`
    /// command). Creates version `v0`.
    pub fn init(
        name: impl Into<String>,
        schema: Schema,
        pk_names: Vec<String>,
        rows: Vec<Row>,
        author: &str,
    ) -> Result<(Cvd, Vid)> {
        for pk in &pk_names {
            schema.index_of(pk)?;
        }
        let attributes: Vec<Attribute> = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| Attribute {
                id: i as AttrId,
                name: c.name.clone(),
                dtype: c.dtype,
            })
            .collect();
        let mut cvd = Cvd {
            name: name.into(),
            schema,
            pk_names,
            records: Vec::new(),
            version_records: Vec::new(),
            graph: VersionGraph::new(),
            metas: Vec::new(),
            attributes,
            clock: 0,
        };
        let attr_ids: Vec<AttrId> = cvd.attributes.iter().map(|a| a.id).collect();
        cvd.check_pk(&rows)?;
        let mut rids = Vec::with_capacity(rows.len());
        for row in rows {
            cvd.schema.check_row(&row)?;
            rids.push(cvd.push_record(row));
        }
        rids.sort_unstable();
        let vid = cvd.graph.add_version(rids.len() as u64, &[]);
        cvd.version_records.push(rids);
        let t = cvd.tick();
        cvd.metas.push(VersionMeta {
            vid,
            parents: Vec::new(),
            checkout_t: t,
            commit_t: t,
            message: "init".into(),
            author: author.into(),
            attributes: attr_ids,
        });
        Ok((cvd, vid))
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn push_record(&mut self, row: Row) -> Rid {
        let rid = Rid(self.records.len() as u64);
        self.records.push(row);
        rid
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The union schema across all versions (without the `rid` column).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn pk_names(&self) -> &[String] {
        &self.pk_names
    }

    pub fn pk_cols(&self) -> Result<Vec<usize>> {
        self.pk_names
            .iter()
            .map(|n| self.schema.index_of(n).map_err(Error::Storage))
            .collect()
    }

    pub fn num_versions(&self) -> usize {
        self.graph.num_versions()
    }

    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    pub fn latest_version(&self) -> Vid {
        Vid(self.graph.num_versions() as u32 - 1)
    }

    pub fn graph(&self) -> &VersionGraph {
        &self.graph
    }

    pub fn meta(&self, v: Vid) -> Result<&VersionMeta> {
        self.metas.get(v.idx()).ok_or(Error::VersionNotFound(v.0))
    }

    pub fn metas(&self) -> &[VersionMeta] {
        &self.metas
    }

    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    pub fn record(&self, r: Rid) -> &Row {
        &self.records[r.idx()]
    }

    pub fn version_records(&self, v: Vid) -> Result<&[Rid]> {
        self.version_records
            .get(v.idx())
            .map(|r| r.as_slice())
            .ok_or(Error::VersionNotFound(v.0))
    }

    // -- catalog snapshot support (crate::catalog) --------------------------

    /// All record payloads in rid order, for the durable catalog snapshot.
    pub(crate) fn records_raw(&self) -> &[Row] {
        &self.records
    }

    /// All per-version rid lists in vid order.
    pub(crate) fn version_records_raw(&self) -> &[Vec<Rid>] {
        &self.version_records
    }

    pub(crate) fn clock_raw(&self) -> u64 {
        self.clock
    }

    /// Rebuild a CVD from a decoded catalog snapshot. The version graph is
    /// derived state: it is regrown here exactly as `init`/`commit` grew
    /// it, version by version in vid order, with parent-edge weights
    /// recomputed from the rid intersections.
    // lint: the nine fields mirror the snapshot layout 1:1; a builder would
    // hide which parts of a CVD the catalog format carries.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        pk_names: Vec<String>,
        records: Vec<Row>,
        version_records: Vec<Vec<Rid>>,
        metas: Vec<VersionMeta>,
        attributes: Vec<Attribute>,
        clock: u64,
    ) -> Result<Cvd> {
        if metas.len() != version_records.len() {
            return Err(Error::Internal(format!(
                "catalog snapshot: {} version metas for {} rid lists",
                metas.len(),
                version_records.len()
            )));
        }
        let mut graph = VersionGraph::new();
        for (idx, meta) in metas.iter().enumerate() {
            let rids = &version_records[idx];
            if meta.vid.idx() != idx {
                return Err(Error::Internal(format!(
                    "catalog snapshot: meta #{idx} carries vid {}",
                    meta.vid
                )));
            }
            let edges: Vec<(Vid, u64)> = meta
                .parents
                .iter()
                .map(|&p| {
                    version_records
                        .get(p.idx())
                        .filter(|_| p.idx() < idx)
                        .map(|prs| (p, partition::graph::intersect_count(prs, rids)))
                        .ok_or_else(|| {
                            Error::Internal(format!(
                                "catalog snapshot: version {} lists missing parent {p}",
                                meta.vid
                            ))
                        })
                })
                .collect::<Result<_>>()?;
            graph.add_version(rids.len() as u64, &edges);
        }
        Ok(Cvd {
            name,
            schema,
            pk_names,
            records,
            version_records,
            graph,
            metas,
            attributes,
            clock,
        })
    }

    fn check_version(&self, v: Vid) -> Result<()> {
        if v.idx() < self.num_versions() {
            Ok(())
        } else {
            Err(Error::VersionNotFound(v.0))
        }
    }

    /// Enforce the per-version primary-key constraint (§3.1): within one
    /// version, no two records share pk values. Across versions duplicates
    /// are fine.
    fn check_pk(&self, rows: &[Row]) -> Result<()> {
        if self.pk_names.is_empty() {
            return Ok(());
        }
        let cols: Vec<usize> = self
            .pk_names
            .iter()
            .filter_map(|n| self.schema.index_of(n).ok())
            .collect();
        let mut seen = std::collections::HashSet::with_capacity(rows.len());
        for row in rows {
            let key: Vec<u8> = encode_row(
                &cols
                    .iter()
                    .map(|&c| row.get(c).cloned().unwrap_or(Value::Null))
                    .collect::<Vec<_>>(),
            );
            if !seen.insert(key) {
                return Err(Error::PrimaryKeyViolation(format!(
                    "duplicate key in committed version of {}",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// Materialize the records of one or more versions, applying the
    /// precedence-based merge of §3.3.1: records are added in the order the
    /// versions are listed; a record whose primary key was already added is
    /// omitted.
    pub fn checkout_rows(&self, versions: &[Vid]) -> Result<Vec<(Rid, Row)>> {
        for &v in versions {
            self.check_version(v)?;
        }
        let pk_cols = self.pk_cols()?;
        let mut out: Vec<(Rid, Row)> = Vec::new();
        let mut seen_pk = std::collections::HashSet::new();
        for &v in versions {
            for &rid in &self.version_records[v.idx()] {
                let row = &self.records[rid.idx()];
                if pk_cols.is_empty() {
                    out.push((rid, row.clone()));
                    continue;
                }
                let key = encode_row(&pk_cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>());
                if seen_pk.insert(key) {
                    out.push((rid, row.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Commit a modified table as a new version derived from `parents`.
    ///
    /// `rows` are full-width rows in the CVD's current union schema. Per
    /// the no-cross-version-diff rule, each row is compared against the
    /// parent versions only: identical rows reuse the parent's rid, all
    /// others get fresh rids (even if equal to some distant ancestor's
    /// record).
    pub fn commit(
        &mut self,
        parents: &[Vid],
        rows: Vec<Row>,
        message: &str,
        author: &str,
    ) -> Result<CommitResult> {
        for &p in parents {
            self.check_version(p)?;
        }
        self.check_pk(&rows)?;
        // Parent lookup: encoded row -> rid.
        let mut parent_index: HashMap<Vec<u8>, Rid> = HashMap::new();
        for &p in parents {
            for &rid in &self.version_records[p.idx()] {
                parent_index.insert(encode_row(&self.records[rid.idx()]), rid);
            }
        }
        let mut rids = Vec::with_capacity(rows.len());
        let mut new_records = 0usize;
        for row in rows {
            self.schema.check_row(&row)?;
            match parent_index.get(&encode_row(&row)) {
                Some(&rid) => rids.push(rid),
                None => {
                    rids.push(self.push_record(row));
                    new_records += 1;
                }
            }
        }
        let reused = rids.len() - new_records;
        rids.sort_unstable();
        rids.dedup();

        let edges: Vec<(Vid, u64)> = parents
            .iter()
            .map(|&p| {
                let w = partition::graph::intersect_count(&self.version_records[p.idx()], &rids);
                (p, w)
            })
            .collect();
        let vid = self.graph.add_version(rids.len() as u64, &edges);
        self.version_records.push(rids);
        let t = self.tick();
        let attrs = self.attributes.iter().map(|a| a.id).collect();
        self.metas.push(VersionMeta {
            vid,
            parents: parents.to_vec(),
            checkout_t: t.saturating_sub(1),
            commit_t: t,
            message: message.into(),
            author: author.into(),
            attributes: attrs,
        });
        Ok(CommitResult {
            vid,
            new_records,
            reused_records: reused,
        })
    }

    /// Commit rows whose schema differs from the CVD's: new attributes are
    /// appended to the single-pool schema (older records padded with NULL),
    /// type changes are widened (integer → decimal → string, §4.3), and
    /// attributes missing from `schema` are simply absent from the new
    /// version's attribute list.
    pub fn commit_with_schema(
        &mut self,
        parents: &[Vid],
        schema: &Schema,
        rows: Vec<Row>,
        message: &str,
        author: &str,
    ) -> Result<CommitResult> {
        // Evolve the union schema and build the column mapping.
        let mut mapping = Vec::with_capacity(schema.len());
        let mut version_attrs: Vec<AttrId> = Vec::with_capacity(schema.len());
        for col in schema.columns() {
            let target = match self.schema.index_of(&col.name) {
                Ok(idx) => {
                    let existing = self
                        .schema
                        .column(idx)
                        .ok_or_else(|| Error::Internal(format!("schema column #{idx} missing")))?
                        .dtype;
                    if existing != col.dtype {
                        let general = existing.generalize(col.dtype).ok_or_else(|| {
                            Error::SchemaEvolution(format!(
                                "attribute {}: cannot reconcile {} with {}",
                                col.name, existing, col.dtype
                            ))
                        })?;
                        if general != existing {
                            // Widen the stored records in place.
                            self.schema
                                .widen_column(&col.name, general)
                                .map_err(Error::Storage)?;
                            for row in &mut self.records {
                                if let Some(w) = row[idx].widen(general) {
                                    row[idx] = w;
                                }
                            }
                        }
                    }
                    idx
                }
                Err(_) => {
                    // Brand-new attribute: extend schema, pad old records.
                    let idx = self
                        .schema
                        .add_column(relstore::Column::nullable(col.name.clone(), col.dtype))
                        .map_err(Error::Storage)?;
                    for row in &mut self.records {
                        row.push(Value::Null);
                    }
                    idx
                }
            };
            // Attribute-table entry for (name, current dtype).
            let dtype = self
                .schema
                .column(target)
                .ok_or_else(|| Error::Internal(format!("schema column #{target} missing")))?
                .dtype;
            let attr_id = match self
                .attributes
                .iter()
                .find(|a| a.name == col.name && a.dtype == dtype)
            {
                Some(a) => a.id,
                None => {
                    let id = self.attributes.len() as AttrId;
                    self.attributes.push(Attribute {
                        id,
                        name: col.name.clone(),
                        dtype,
                    });
                    id
                }
            };
            version_attrs.push(attr_id);
            mapping.push(target);
        }

        // Re-project rows into the union layout, widening values as needed.
        // The target dtypes are resolved once up front: per-row schema
        // lookups are wasted work, and a missing column is a typed error.
        let dst_dtypes: Vec<_> = mapping
            .iter()
            .map(|&dst| {
                self.schema
                    .column(dst)
                    .map(|c| c.dtype)
                    .ok_or_else(|| Error::Internal(format!("schema column #{dst} missing")))
            })
            .collect::<Result<_>>()?;
        let width = self.schema.len();
        let projected: Vec<Row> = rows
            .into_iter()
            .map(|row| {
                let mut out = vec![Value::Null; width];
                for (src, &dst) in mapping.iter().enumerate() {
                    out[dst] = row[src].widen(dst_dtypes[src]).unwrap_or(Value::Null);
                }
                out
            })
            .collect();

        let mut result = self.commit(parents, projected, message, author)?;
        // Overwrite the version's attribute list with the committed schema.
        self.metas[result.vid.idx()].attributes = version_attrs;
        result.vid = self.metas[result.vid.idx()].vid;
        Ok(result)
    }

    /// `diff`: rids in `a` but not in `b`, and vice versa (§3.3.1(a)).
    pub fn diff(&self, a: Vid, b: Vid) -> Result<(Vec<Rid>, Vec<Rid>)> {
        self.check_version(a)?;
        self.check_version(b)?;
        let ra = &self.version_records[a.idx()];
        let rb = &self.version_records[b.idx()];
        let only_a = ra
            .iter()
            .copied()
            .filter(|r| rb.binary_search(r).is_err())
            .collect();
        let only_b = rb
            .iter()
            .copied()
            .filter(|r| ra.binary_search(r).is_err())
            .collect();
        Ok((only_a, only_b))
    }

    /// `v_intersect`: records present in all given versions (§3.3.2(c)).
    pub fn v_intersect(&self, versions: &[Vid]) -> Result<Vec<Rid>> {
        if versions.is_empty() {
            return Ok(Vec::new());
        }
        for &v in versions {
            self.check_version(v)?;
        }
        let mut acc: Vec<Rid> = self.version_records[versions[0].idx()].clone();
        for &v in &versions[1..] {
            let set = &self.version_records[v.idx()];
            acc.retain(|r| set.binary_search(r).is_ok());
        }
        Ok(acc)
    }

    /// The bipartite version–record graph of this CVD.
    pub fn bipartite(&self) -> Bipartite {
        let mut b = Bipartite::new(self.records.len() as u64);
        for records in &self.version_records {
            b.push_version(records.clone());
        }
        b
    }

    /// The version tree (with the DAG→tree transform of §5.3.1 if needed).
    pub fn tree(&self) -> VersionTree {
        let b = self.bipartite();
        self.graph.to_tree(Some(&b))
    }

    /// Rows of a version projected onto the attributes that version
    /// actually has (per its metadata attribute list).
    pub fn checkout_projected(&self, v: Vid) -> Result<(Schema, Vec<Row>)> {
        self.check_version(v)?;
        let meta = &self.metas[v.idx()];
        let cols: Vec<usize> = meta
            .attributes
            .iter()
            .map(|&a| {
                let attr = &self.attributes[a as usize];
                self.schema.index_of(&attr.name).map_err(Error::Storage)
            })
            .collect::<Result<_>>()?;
        let schema = self.schema.project(&cols);
        let rows = self.version_records[v.idx()]
            .iter()
            .map(|&rid| {
                let row = &self.records[rid.idx()];
                cols.iter().map(|&c| row[c].clone()).collect()
            })
            .collect();
        Ok((schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Column;

    fn protein_schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("neighborhood", DataType::Int64),
            Column::new("cooccurrence", DataType::Int64),
            Column::new("coexpression", DataType::Int64),
        ])
    }

    fn row(p1: &str, p2: &str, n: i64, co: i64, ce: i64) -> Row {
        vec![
            Value::from(p1),
            Value::from(p2),
            Value::Int64(n),
            Value::Int64(co),
            Value::Int64(ce),
        ]
    }

    fn init_cvd() -> (Cvd, Vid) {
        Cvd::init(
            "Interaction",
            protein_schema(),
            vec!["protein1".into(), "protein2".into()],
            vec![
                row("ENSP273047", "ENSP261890", 0, 53, 0),
                row("ENSP273047", "ENSP235932", 0, 87, 0),
                row("ENSP300413", "ENSP274242", 426, 0, 164),
            ],
            "alice",
        )
        .unwrap()
    }

    #[test]
    fn init_creates_v0() {
        let (cvd, v0) = init_cvd();
        assert_eq!(v0, Vid(0));
        assert_eq!(cvd.num_versions(), 1);
        assert_eq!(cvd.num_records(), 3);
        assert_eq!(cvd.version_records(v0).unwrap().len(), 3);
    }

    #[test]
    fn commit_reuses_unchanged_records() {
        let (mut cvd, v0) = init_cvd();
        let mut rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        // Modify one record's coexpression (an update), keep the rest.
        rows[0][4] = Value::Int64(83);
        let res = cvd
            .commit(&[v0], rows, "updated coexpression", "bob")
            .unwrap();
        assert_eq!(res.new_records, 1);
        assert_eq!(res.reused_records, 2);
        assert_eq!(cvd.num_records(), 4); // immutable records: one new rid
        let w = cvd.graph().weight(v0, res.vid);
        assert_eq!(w, 2);
    }

    #[test]
    fn commit_identical_table_shares_everything() {
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let res = cvd.commit(&[v0], rows, "no-op", "bob").unwrap();
        assert_eq!(res.new_records, 0);
        assert_eq!(
            cvd.version_records(res.vid).unwrap(),
            cvd.version_records(v0).unwrap()
        );
    }

    #[test]
    fn no_cross_version_diff_rule() {
        // Delete a record, commit, re-add it identically: it gets a NEW rid
        // because commits only compare against parents (§3.3.1).
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let deleted = rows[2].clone();
        let v1 = cvd
            .commit(&[v0], rows[..2].to_vec(), "delete", "bob")
            .unwrap()
            .vid;
        let mut back = rows[..2].to_vec();
        back.push(deleted);
        let res = cvd.commit(&[v1], back, "re-add", "bob").unwrap();
        assert_eq!(res.new_records, 1, "re-added record must get a fresh rid");
    }

    #[test]
    fn pk_enforced_within_version_not_across() {
        let (mut cvd, v0) = init_cvd();
        // Same pk twice in one commit → error.
        let dup = vec![row("A", "B", 1, 1, 1), row("A", "B", 2, 2, 2)];
        assert!(matches!(
            cvd.commit(&[v0], dup, "dup", "bob"),
            Err(Error::PrimaryKeyViolation(_))
        ));
        // Same pk as v0 with different attrs in a *different* version → ok.
        let other = vec![row("ENSP273047", "ENSP261890", 9, 9, 9)];
        assert!(cvd.commit(&[v0], other, "changed", "bob").is_ok());
    }

    #[test]
    fn multi_version_checkout_precedence() {
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut changed = rows.clone();
        changed[0][4] = Value::Int64(999);
        let v1 = cvd.commit(&[v0], changed, "change", "bob").unwrap().vid;
        // Checkout [v1, v0]: v1's record wins for the shared pk.
        let merged = cvd.checkout_rows(&[v1, v0]).unwrap();
        assert_eq!(merged.len(), 3);
        let first = merged
            .iter()
            .find(|(_, r)| r[0] == Value::from("ENSP273047") && r[1] == Value::from("ENSP261890"))
            .unwrap();
        assert_eq!(first.1[4], Value::Int64(999));
        // Reversed precedence: v0's record wins.
        let merged = cvd.checkout_rows(&[v0, v1]).unwrap();
        let first = merged
            .iter()
            .find(|(_, r)| r[0] == Value::from("ENSP273047") && r[1] == Value::from("ENSP261890"))
            .unwrap();
        assert_eq!(first.1[4], Value::Int64(0));
    }

    #[test]
    fn merge_commit_records_both_parents() {
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut a = rows.clone();
        a[0][2] = Value::Int64(1);
        let v1 = cvd.commit(&[v0], a, "branch a", "alice").unwrap().vid;
        let mut b = rows.clone();
        b[1][2] = Value::Int64(2);
        let v2 = cvd.commit(&[v0], b, "branch b", "bob").unwrap().vid;
        let merged_rows: Vec<Row> = cvd
            .checkout_rows(&[v1, v2])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let v3 = cvd
            .commit(&[v1, v2], merged_rows, "merge", "carol")
            .unwrap()
            .vid;
        assert_eq!(cvd.meta(v3).unwrap().parents, vec![v1, v2]);
        assert!(cvd.graph().has_merges());
        // Merge introduces no new records.
        assert_eq!(cvd.num_records(), 3 + 1 + 1);
    }

    #[test]
    fn diff_and_intersect() {
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut changed = rows.clone();
        changed[0][4] = Value::Int64(83);
        let v1 = cvd.commit(&[v0], changed, "x", "bob").unwrap().vid;
        let (only_a, only_b) = cvd.diff(v0, v1).unwrap();
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_b.len(), 1);
        let common = cvd.v_intersect(&[v0, v1]).unwrap();
        assert_eq!(common.len(), 2);
    }

    #[test]
    fn schema_evolution_adds_and_widens() {
        let (mut cvd, v0) = init_cvd();
        // Commit with cooccurrence as decimal and a new "source" column,
        // mirroring Fig. 4.3.
        let new_schema = Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("neighborhood", DataType::Int64),
            Column::new("cooccurrence", DataType::Float64),
            Column::new("coexpression", DataType::Int64),
            Column::new("source", DataType::Text),
        ]);
        let rows = vec![vec![
            Value::from("P1"),
            Value::from("P2"),
            Value::Int64(1),
            Value::Float64(0.5),
            Value::Int64(7),
            Value::from("lab"),
        ]];
        let res = cvd
            .commit_with_schema(&[v0], &new_schema, rows, "evolve", "bob")
            .unwrap();
        // The union schema widened cooccurrence and gained `source`.
        let idx = cvd.schema().index_of("cooccurrence").unwrap();
        assert_eq!(cvd.schema().column(idx).unwrap().dtype, DataType::Float64);
        assert!(cvd.schema().contains("source"));
        // Old records were widened and padded.
        let old = cvd.record(Rid(0));
        assert_eq!(old[3], Value::Float64(53.0));
        assert_eq!(old[5], Value::Null);
        // Attribute table gained two entries: decimal cooccurrence + source.
        assert_eq!(cvd.attributes().len(), 7);
        // v0's projection still shows five original attributes as integers…
        let (s0, _) = cvd.checkout_projected(v0).unwrap();
        assert_eq!(s0.len(), 5);
        // …while the new version projects six.
        let (s1, r1) = cvd.checkout_projected(res.vid).unwrap();
        assert_eq!(s1.len(), 6);
        assert_eq!(r1[0][5], Value::from("lab"));
    }

    #[test]
    fn version_not_found_errors() {
        let (cvd, _) = init_cvd();
        assert!(matches!(
            cvd.version_records(Vid(9)),
            Err(Error::VersionNotFound(9))
        ));
        assert!(cvd.checkout_rows(&[Vid(9)]).is_err());
    }

    #[test]
    fn bipartite_and_tree_roundtrip() {
        let (mut cvd, v0) = init_cvd();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut c = rows.clone();
        c[0][4] = Value::Int64(83);
        cvd.commit(&[v0], c, "x", "b").unwrap();
        let b = cvd.bipartite();
        assert_eq!(b.num_versions(), 2);
        assert_eq!(b.num_records(), 4);
        let t = cvd.tree();
        assert_eq!(t.num_records(), 4);
    }
}
