//! Approach 4.2: split-by-vlist — a data table plus a versioning table
//! mapping each `rid` to the array of versions containing it
//! (Fig. 3.2(c.i)).
//!
//! Commit still pays an array append per reused record (in the smaller
//! versioning table); checkout scans the versioning table for containment,
//! then hash-joins the matching rids with the data table.

use super::{data_row, data_schema, sync_table_schema, ModelKind, VersioningModel};
use crate::cvd::Cvd;
use crate::error::{Error, Result};
use partition::{Rid, Vid};
use relstore::{
    Column, DataType, Database, ExecContext, Executor, Expr, Filter, HashJoin, IndexKind, Project,
    Row, Schema, SeqScan, Value,
};

/// `{cvd}__svl_data` `[rid, attrs…]` + `{cvd}__svl_vmap` `[rid, vlist]`.
#[derive(Debug, Clone)]
pub struct SplitByVlist {
    cvd_name: String,
}

impl SplitByVlist {
    pub fn new(cvd_name: impl Into<String>) -> Self {
        SplitByVlist {
            cvd_name: cvd_name.into(),
        }
    }

    fn data_name(&self) -> String {
        format!("{}__svl_data", self.cvd_name)
    }

    fn vmap_name(&self) -> String {
        format!("{}__svl_vmap", self.cvd_name)
    }
}

impl VersioningModel for SplitByVlist {
    fn kind(&self) -> ModelKind {
        ModelKind::SplitByVlist
    }

    fn table_prefix(&self) -> String {
        format!("{}__svl_", self.cvd_name)
    }

    fn init(&mut self, db: &mut Database, cvd: &Cvd) -> Result<()> {
        let data = db.create_table(self.data_name(), data_schema(cvd))?;
        data.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        let vmap = db.create_table(
            self.vmap_name(),
            Schema::new(vec![
                Column::new("rid", DataType::Int64),
                Column::new("vlist", DataType::IntArray),
            ]),
        )?;
        vmap.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        Ok(())
    }

    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        {
            let data = db.table_mut(&self.data_name())?;
            sync_table_schema(data, cvd, 1)?;
            tracker.seq_scan(new_rids.len() as u64, &relstore::CostModel::default());
            for &rid in new_rids {
                data.insert(data_row(cvd, rid))?;
            }
        }
        let vmap = db.table_mut(&self.vmap_name())?;
        let new_set: std::collections::HashSet<Rid> = new_rids.iter().copied().collect();
        // UPDATE vmap SET vlist = vlist + vid WHERE rid IN (reused rids):
        // an array-append update per reused record, as in combined-table,
        // but on the narrower versioning table.
        for &rid in cvd.version_records(vid)? {
            if new_set.contains(&rid) {
                continue;
            }
            let ids = vmap.index_lookup("rid_pk", rid.0 as i64, tracker)?;
            for id in ids {
                let mut row = vmap
                    .get(id)
                    .ok_or_else(|| Error::Internal("index points at a missing row".into()))?
                    .clone();
                if let Value::IntArray(v) = &mut row[1] {
                    tracker.ops(v.len() as u64 + 1);
                    v.push(vid.0 as i64);
                }
                tracker.random_pages += 2; // heap read + write-back
                tracker.tuples += 1;
                vmap.update(id, row)?;
            }
        }
        for &rid in new_rids {
            vmap.insert(vec![
                Value::Int64(rid.0 as i64),
                Value::IntArray(vec![vid.0 as i64]),
            ])?;
        }
        Ok(())
    }

    fn checkout(
        &self,
        db: &Database,
        _cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        let vmap = db.table(&self.vmap_name())?;
        let data = db.table(&self.data_name())?;
        // tmp := SELECT rid FROM vmap WHERE ARRAY[vid] <@ vlist
        let scan = Box::new(SeqScan::new(vmap));
        let filt = Box::new(Filter::new(
            scan,
            Expr::array_has(Expr::col(1), vid.0 as i64),
        ));
        let rid_list = Box::new(Project::columns(filt, &[0]));
        // Hash join: build on tmp, probe the data table sequentially
        // (the plan §4.2 found best for these splits).
        let probe = Box::new(SeqScan::new(data));
        let join = Box::new(HashJoin::new(rid_list, probe, 0, 0));
        // Join output = [rid(tmp), rid(data), attrs…] → drop the build key.
        let cols: Vec<usize> = (1..join.schema().len()).collect();
        let mut project = Project::columns(join, &cols);
        Ok(project.collect(ctx)?)
    }

    fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::*;

    #[test]
    fn data_table_deduplicates_records() {
        let (cvd, _) = fig32_cvd();
        let (db, _model) = loaded(ModelKind::SplitByVlist, &cvd);
        let data = db.table(&format!("{}__svl_data", cvd.name())).unwrap();
        assert_eq!(data.live_row_count(), cvd.num_records());
        let vmap = db.table(&format!("{}__svl_vmap", cvd.name())).unwrap();
        assert_eq!(vmap.live_row_count(), cvd.num_records());
    }

    #[test]
    fn checkout_joins_data_table() {
        let (cvd, vids) = fig32_cvd();
        let (db, model) = loaded(ModelKind::SplitByVlist, &cvd);
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, vids[3], &mut ctx).unwrap();
        assert_eq!(rows.len(), 4);
        // Both tables were scanned fully.
        assert!(ctx.tracker.seq_pages >= 2);
    }
}
