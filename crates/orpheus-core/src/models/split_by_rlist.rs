//! Approach 4.3: split-by-rlist — the model OrpheusDB adopts
//! (Fig. 3.2(c.ii)).
//!
//! The versioning table maps each `vid` to the array of its records, so a
//! commit inserts exactly **one** versioning tuple (no array appends), and
//! a checkout reads one versioning tuple through the primary-key index,
//! unnests it, and hash-joins the rids with the data table.

use super::{data_row, data_schema, sync_table_schema, ModelKind, VersioningModel};
use crate::cvd::Cvd;
use crate::error::Result;
use partition::{Rid, Vid};
use relstore::{
    Column, DataType, Database, ExecContext, IndexKind, Row, Schema, Value, WorkerPool,
};

/// `{cvd}__sbr_data` `[rid, attrs…]` + `{cvd}__sbr_vtab` `[vid, rlist]`.
#[derive(Debug, Clone)]
pub struct SplitByRlist {
    cvd_name: String,
}

impl SplitByRlist {
    pub fn new(cvd_name: impl Into<String>) -> Self {
        SplitByRlist {
            cvd_name: cvd_name.into(),
        }
    }

    pub fn data_name(&self) -> String {
        format!("{}__sbr_data", self.cvd_name)
    }

    pub fn vtab_name(&self) -> String {
        format!("{}__sbr_vtab", self.cvd_name)
    }

    /// [`VersioningModel::checkout`] with an optional morsel worker pool:
    /// a multi-threaded pool runs the rid hash join morsel-parallel, any
    /// other value keeps the sequential plan. Both produce identical rows.
    pub fn checkout_with_pool(
        &self,
        db: &Database,
        vid: Vid,
        pool: Option<&WorkerPool>,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        let vtab = db.table(&self.vtab_name())?;
        let data = db.table(&self.data_name())?;
        // Retrieve the single versioning tuple via the vid primary key.
        let ids = vtab.index_lookup("vid_pk", vid.0 as i64, &mut ctx.tracker)?;
        let rows = vtab.fetch(&ids, Some(0), &mut ctx.tracker, &ctx.model);
        let row = rows
            .first()
            .ok_or(crate::error::Error::VersionNotFound(vid.0))?;
        let rlist: Vec<i64> = row[1].as_int_array().unwrap_or(&[]).to_vec();
        ctx.tracker.ops(rlist.len() as u64); // unnest(rlist)
                                             // Hash join: build on the unnested rlist, probe the data table.
        crate::query::rid_join_rows(data, rlist, pool, ctx)
    }
}

impl VersioningModel for SplitByRlist {
    fn kind(&self) -> ModelKind {
        ModelKind::SplitByRlist
    }

    fn table_prefix(&self) -> String {
        format!("{}__sbr_", self.cvd_name)
    }

    fn init(&mut self, db: &mut Database, cvd: &Cvd) -> Result<()> {
        let data = db.create_table(self.data_name(), data_schema(cvd))?;
        data.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        let vtab = db.create_table(
            self.vtab_name(),
            Schema::new(vec![
                Column::new("vid", DataType::Int64),
                Column::new("rlist", DataType::IntArray),
            ]),
        )?;
        vtab.create_index("vid_pk", "vid", true, IndexKind::BTree)?;
        Ok(())
    }

    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        {
            let data = db.table_mut(&self.data_name())?;
            sync_table_schema(data, cvd, 1)?;
            tracker.seq_scan(new_rids.len() as u64, &relstore::CostModel::default());
            for &rid in new_rids {
                data.insert(data_row(cvd, rid))?;
            }
        }
        // INSERT INTO vtab VALUES (vid, ARRAY[rids…]) — a single tuple.
        let vtab = db.table_mut(&self.vtab_name())?;
        let rlist: Vec<i64> = cvd
            .version_records(vid)?
            .iter()
            .map(|r| r.0 as i64)
            .collect();
        // One versioning tuple: a single page write.
        tracker.random_pages += 1;
        tracker.tuples += 1;
        vtab.insert(vec![Value::Int64(vid.0 as i64), Value::IntArray(rlist)])?;
        Ok(())
    }

    fn checkout(
        &self,
        db: &Database,
        _cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        self.checkout_with_pool(db, vid, None, ctx)
    }

    fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::*;

    #[test]
    fn versioning_table_one_row_per_version() {
        let (cvd, _) = fig32_cvd();
        let (db, _model) = loaded(ModelKind::SplitByRlist, &cvd);
        let vtab = db.table(&format!("{}__sbr_vtab", cvd.name())).unwrap();
        assert_eq!(vtab.live_row_count(), 4);
        // v3's rlist holds its 4 records.
        let row = vtab
            .iter()
            .find(|(_, r)| r[0] == Value::Int64(3))
            .unwrap()
            .1;
        assert_eq!(row[1].as_int_array().unwrap().len(), 4);
    }

    #[test]
    fn commit_is_single_versioning_insert() {
        // Structural proof of the cheap commit: committing a version with no
        // new records leaves the data table untouched.
        let (mut cvd, vids) = fig32_cvd();
        let (mut db, mut model) = loaded(ModelKind::SplitByRlist, &cvd);
        let before = db
            .table(&format!("{}__sbr_data", cvd.name()))
            .unwrap()
            .live_row_count();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[vids[3]])
            .unwrap()
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        let res = cvd.commit(&[vids[3]], rows, "noop", "eve").unwrap();
        model
            .apply_commit(
                &mut db,
                &cvd,
                res.vid,
                &[],
                &mut relstore::CostTracker::new(),
            )
            .unwrap();
        let data = db.table(&format!("{}__sbr_data", cvd.name())).unwrap();
        assert_eq!(data.live_row_count(), before);
        let vtab = db.table(&format!("{}__sbr_vtab", cvd.name())).unwrap();
        assert_eq!(vtab.live_row_count(), 5);
    }

    #[test]
    fn checkout_uses_vid_index_not_vtab_scan() {
        let (cvd, vids) = fig32_cvd();
        let (db, model) = loaded(ModelKind::SplitByRlist, &cvd);
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, vids[1], &mut ctx).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(ctx.tracker.index_tuples >= 1);
    }
}
