//! Approach 4.4: the delta-based model — each version stores its
//! modifications from a single precedent version (the parent sharing the
//! most records), with a tombstone flag for deletions, plus a precedent
//! metadata table mapping each version to its base.
//!
//! Checkout must replay the delta chain back to the root, remembering which
//! records were already decided — cheap commits, expensive checkouts, and
//! no way to run advanced queries without recreating versions (§4.1).

use super::{align_row_to_schema, data_row, data_schema, ModelKind, VersioningModel};
use crate::cvd::Cvd;
use crate::error::{Error, Result};
use partition::{Rid, Vid};
use relstore::{Column, DataType, Database, ExecContext, Row, Value};
use std::collections::HashMap;

/// Per-version delta tables `{cvd}__delta_v{vid}` `[rid, tombstone, attrs…]`
/// plus an in-model precedent map (vid → base vid).
#[derive(Debug, Clone)]
pub struct DeltaBased {
    cvd_name: String,
    /// The precedent metadata table: `base[vid] = None` for the root.
    base: HashMap<Vid, Option<Vid>>,
}

impl DeltaBased {
    pub fn new(cvd_name: impl Into<String>) -> Self {
        DeltaBased {
            cvd_name: cvd_name.into(),
            base: HashMap::new(),
        }
    }

    fn table_name(&self, vid: Vid) -> String {
        format!("{}__delta_v{}", self.cvd_name, vid.0)
    }

    /// The version this vid stores its delta against.
    pub fn base_of(&self, vid: Vid) -> Option<Vid> {
        self.base.get(&vid).copied().flatten()
    }

    fn delta_schema(cvd: &Cvd) -> relstore::Schema {
        let mut schema = data_schema(cvd);
        // [rid, tombstone, attrs…] — insert tombstone after rid by
        // rebuilding the column list.
        let mut cols = vec![
            schema.columns()[0].clone(),
            Column::new("tombstone", DataType::Bool),
        ];
        cols.extend(schema.columns()[1..].iter().cloned());
        schema = relstore::Schema::new(cols);
        schema
    }
}

impl VersioningModel for DeltaBased {
    fn kind(&self) -> ModelKind {
        ModelKind::DeltaBased
    }

    fn table_prefix(&self) -> String {
        format!("{}__delta_", self.cvd_name)
    }

    fn init(&mut self, _db: &mut Database, _cvd: &Cvd) -> Result<()> {
        Ok(())
    }

    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        _new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        // Base = the parent sharing the largest number of records (§4.1);
        // versions with multiple parents store the delta from one only.
        let parents = cvd.graph().parents(vid);
        let base = parents
            .iter()
            .max_by_key(|&&p| cvd.graph().weight(p, vid))
            .copied();
        self.base.insert(vid, base);

        let table = db.create_table(self.table_name(vid), Self::delta_schema(cvd))?;
        let rids = cvd.version_records(vid)?;
        match base {
            None => {
                // Root: everything is an insert.
                for &rid in rids {
                    let mut row = data_row(cvd, rid);
                    row.insert(1, Value::Bool(false));
                    table.insert(row)?;
                }
            }
            Some(b) => {
                let base_rids = cvd.version_records(b)?;
                // Inserts: in vid but not in base.
                for &rid in rids {
                    if base_rids.binary_search(&rid).is_err() {
                        let mut row = data_row(cvd, rid);
                        row.insert(1, Value::Bool(false));
                        table.insert(row)?;
                    }
                }
                // Deletes: in base but not in vid → tombstones.
                for &rid in base_rids {
                    if rids.binary_search(&rid).is_err() {
                        let mut row = data_row(cvd, rid);
                        row.insert(1, Value::Bool(true));
                        table.insert(row)?;
                    }
                }
            }
        }
        // Delta rows written sequentially into the fresh table.
        tracker.seq_scan(
            table.live_row_count() as u64,
            &relstore::CostModel::default(),
        );
        Ok(())
    }

    fn checkout(
        &self,
        db: &Database,
        cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        if !self.base.contains_key(&vid) {
            return Err(Error::VersionNotFound(vid.0));
        }
        // Walk the precedent chain target → root; the first occurrence of a
        // record (closest to the target) decides its fate.
        let mut seen: std::collections::HashSet<i64> = Default::default();
        let mut out = Vec::new();
        let mut cursor = Some(vid);
        while let Some(v) = cursor {
            let table = db.table(&self.table_name(v))?;
            let rows = table.scan_all(&mut ctx.tracker, &ctx.model);
            for mut row in rows {
                let rid = row[0]
                    .as_i64()
                    .ok_or_else(|| Error::Internal("delta rid column is not an integer".into()))?;
                if !seen.insert(rid) {
                    continue; // decided by a nearer delta
                }
                let tombstone = row[1].as_bool().unwrap_or(false);
                if !tombstone {
                    row.remove(1);
                    // Older deltas may predate schema evolution: pad new
                    // attributes and widen evolved types.
                    out.push(align_row_to_schema(cvd, row));
                }
            }
            cursor = self.base.get(&v).copied().flatten();
        }
        Ok(out)
    }

    fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::*;
    use super::DeltaBased;

    #[test]
    fn merge_version_bases_on_heaviest_parent() {
        let (cvd, vids) = fig32_cvd();
        let mut db = Database::new();
        let mut model = DeltaBased::new(cvd.name());
        load_cvd(&mut model, &mut db, &cvd).unwrap();
        // v3 merges v1 (w=3) and v2 (w=4): base must be v2.
        assert_eq!(model.base_of(vids[3]), Some(vids[2]));
        assert_eq!(model.base_of(vids[0]), None);
    }

    #[test]
    fn deltas_are_small_for_small_changes() {
        let (cvd, vids) = fig32_cvd();
        let mut db = Database::new();
        let mut model = DeltaBased::new(cvd.name());
        load_cvd(&mut model, &mut db, &cvd).unwrap();
        // v1 updated one record: delta = 1 insert + 1 tombstone.
        let t = db
            .table(&format!("{}__delta_v{}", cvd.name(), vids[1].0))
            .unwrap();
        assert_eq!(t.live_row_count(), 2);
        // v2 inserted one record: delta = 1 insert.
        let t = db
            .table(&format!("{}__delta_v{}", cvd.name(), vids[2].0))
            .unwrap();
        assert_eq!(t.live_row_count(), 1);
    }

    #[test]
    fn checkout_replays_chain_with_tombstones() {
        let (cvd, vids) = fig32_cvd();
        let (db, model) = loaded(ModelKind::DeltaBased, &cvd);
        for &v in &vids {
            assert_checkout_matches(ModelKind::DeltaBased, &db, model.as_ref(), &cvd, v);
        }
    }

    #[test]
    fn checkout_cost_grows_with_chain_depth() {
        // A long chain: checking out the tip must touch every delta table.
        use relstore::{Column, Schema};
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("x", DataType::Int64),
        ]);
        let rows: Vec<Row> = (0..50)
            .map(|i| vec![Value::Int64(i), Value::Int64(0)])
            .collect();
        let (mut cvd, mut tip) =
            crate::cvd::Cvd::init("chain", schema, vec!["k".into()], rows, "a").unwrap();
        for step in 1..10i64 {
            let mut rows: Vec<Row> = cvd
                .checkout_rows(&[tip])
                .unwrap()
                .into_iter()
                .map(|(_, r)| r)
                .collect();
            rows[(step % 50) as usize][1] = Value::Int64(step);
            tip = cvd.commit(&[tip], rows, "step", "a").unwrap().vid;
        }
        let (db, model) = loaded(ModelKind::DeltaBased, &cvd);
        let mut ctx_root = ExecContext::new();
        model
            .checkout(&db, &cvd, partition::Vid(0), &mut ctx_root)
            .unwrap();
        let mut ctx_tip = ExecContext::new();
        let got = model.checkout(&db, &cvd, tip, &mut ctx_tip).unwrap();
        assert_eq!(got.len(), 50);
        assert!(ctx_tip.tracker.tuples > ctx_root.tracker.tuples);
    }
}
