//! Approach 4.5: one table per version. Minimal checkout time, maximal
//! storage (every shared record is duplicated per version).

use super::{align_row_to_schema, data_row, data_schema, ModelKind, VersioningModel};
use crate::cvd::Cvd;
use crate::error::Result;
use partition::{Rid, Vid};
use relstore::{Database, ExecContext, Executor, Row, SeqScan};

/// One physical table per version: `{cvd}__v{vid}`.
#[derive(Debug, Clone)]
pub struct ATablePerVersion {
    cvd_name: String,
}

impl ATablePerVersion {
    pub fn new(cvd_name: impl Into<String>) -> Self {
        ATablePerVersion {
            cvd_name: cvd_name.into(),
        }
    }

    fn table_name(&self, vid: Vid) -> String {
        format!("{}__tpv_v{}", self.cvd_name, vid.0)
    }
}

impl VersioningModel for ATablePerVersion {
    fn kind(&self) -> ModelKind {
        ModelKind::ATablePerVersion
    }

    fn table_prefix(&self) -> String {
        format!("{}__tpv_", self.cvd_name)
    }

    fn init(&mut self, _db: &mut Database, _cvd: &Cvd) -> Result<()> {
        Ok(())
    }

    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        _new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        let table = db.create_table(self.table_name(vid), data_schema(cvd))?;
        let rids = cvd.version_records(vid)?;
        // Bulk insert of the whole version: sequential page writes.
        tracker.seq_scan(rids.len() as u64, &relstore::CostModel::default());
        for &rid in rids {
            table.insert(data_row(cvd, rid))?;
        }
        Ok(())
    }

    fn checkout(
        &self,
        db: &Database,
        cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        let table = db.table(&self.table_name(vid))?;
        let mut scan = SeqScan::new(table);
        let rows = scan.collect(ctx)?;
        // This version's table froze the schema at commit time; align to
        // the CVD's evolved schema.
        Ok(rows
            .into_iter()
            .map(|r| align_row_to_schema(cvd, r))
            .collect())
    }

    fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::*;

    #[test]
    fn creates_one_table_per_version() {
        let (cvd, _) = fig32_cvd();
        let (db, model) = loaded(ModelKind::ATablePerVersion, &cvd);
        assert_eq!(db.tables_with_prefix(&model.table_prefix()).len(), 4);
    }

    #[test]
    fn checkout_reads_only_the_versions_table() {
        let (cvd, vids) = fig32_cvd();
        let (db, model) = loaded(ModelKind::ATablePerVersion, &cvd);
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, vids[0], &mut ctx).unwrap();
        assert_eq!(rows.len(), 3);
        // Only v0's 3 tuples were touched.
        assert_eq!(ctx.tracker.tuples, 3);
    }
}
