//! Approach 4.1: the combined table — data attributes plus a `vlist` array
//! column holding every version each record belongs to (Fig. 3.2b).
//!
//! Commit is expensive: every record reused by the new version needs its
//! `vlist` appended (an array copy per record). Checkout requires a full
//! scan with the `ARRAY[vid] <@ vlist` containment check (Table 4.1).

use super::{data_row, data_schema, sync_table_schema, ModelKind, VersioningModel};
use crate::cvd::Cvd;
use crate::error::{Error, Result};
use partition::{Rid, Vid};
use relstore::{
    Column, DataType, Database, ExecContext, Executor, Expr, Filter, IndexKind, Project, Row,
    SeqScan, Value,
};

/// Single `{cvd}__combined` table: `[rid, vlist, attrs…]` (the versioning
/// attribute sits before the data attributes so schema evolution can append
/// new data columns at the end).
#[derive(Debug, Clone)]
pub struct CombinedTable {
    cvd_name: String,
}

impl CombinedTable {
    pub fn new(cvd_name: impl Into<String>) -> Self {
        CombinedTable {
            cvd_name: cvd_name.into(),
        }
    }

    fn table_name(&self) -> String {
        format!("{}__combined", self.cvd_name)
    }
}

impl VersioningModel for CombinedTable {
    fn kind(&self) -> ModelKind {
        ModelKind::CombinedTable
    }

    fn table_prefix(&self) -> String {
        self.table_name()
    }

    fn init(&mut self, db: &mut Database, cvd: &Cvd) -> Result<()> {
        let data = data_schema(cvd);
        let mut cols = vec![
            data.columns()[0].clone(),
            Column::new("vlist", DataType::IntArray),
        ];
        cols.extend(data.columns()[1..].iter().cloned());
        let table = db.create_table(self.table_name(), relstore::Schema::new(cols))?;
        // The rid index exists to locate records during commit; checkout
        // never uses it (the containment scan is the point).
        table.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        Ok(())
    }

    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        let table = db.table_mut(&self.table_name())?;
        sync_table_schema(table, cvd, 2)?;
        let vlist_col = 1;
        let new_set: std::collections::HashSet<Rid> = new_rids.iter().copied().collect();
        // UPDATE combined SET vlist = vlist + vid WHERE rid IN (reused):
        // one array-copying update per reused record — the expensive path
        // (a random page read + write per updated row, plus the array copy).
        for &rid in cvd.version_records(vid)? {
            if new_set.contains(&rid) {
                continue;
            }
            let ids = table.index_lookup("rid_pk", rid.0 as i64, tracker)?;
            for id in ids {
                let mut row = table
                    .get(id)
                    .ok_or_else(|| Error::Internal("index points at a missing row".into()))?
                    .clone();
                if let Value::IntArray(v) = &mut row[vlist_col] {
                    tracker.ops(v.len() as u64 + 1);
                    v.push(vid.0 as i64);
                }
                tracker.random_pages += 2; // heap read + write-back
                tracker.tuples += 1;
                table.update(id, row)?;
            }
        }
        tracker.seq_scan(new_rids.len() as u64, &relstore::CostModel::default());
        for &rid in new_rids {
            let mut row = data_row(cvd, rid);
            row.insert(1, Value::IntArray(vec![vid.0 as i64]));
            table.insert(row)?;
        }
        Ok(())
    }

    fn checkout(
        &self,
        db: &Database,
        cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        let table = db.table(&self.table_name())?;
        let scan = Box::new(SeqScan::new(table));
        let filter = Box::new(Filter::new(
            scan,
            Expr::array_has(Expr::col(1), vid.0 as i64),
        ));
        // Project away vlist: emit [rid, attrs…].
        let mut cols = vec![0usize];
        cols.extend(2..cvd.schema().len() + 2);
        let mut project = Project::columns(filter, &cols);
        Ok(project.collect(ctx)?)
    }

    fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::*;
    use relstore::CostModel;

    #[test]
    fn single_table_with_vlists() {
        let (cvd, _) = fig32_cvd();
        let (db, _model) = loaded(ModelKind::CombinedTable, &cvd);
        let t = db.table(&format!("{}__combined", cvd.name())).unwrap();
        // 5 distinct records in the running example.
        assert_eq!(t.live_row_count(), 5);
        // Record r1 ("C","D") is in all four versions.
        let vlists: Vec<Vec<i64>> = t
            .iter()
            .filter(|(_, r)| r[0] == Value::Int64(1))
            .map(|(_, r)| r[1].as_int_array().unwrap().to_vec())
            .collect();
        assert_eq!(vlists, vec![vec![0i64, 1, 2, 3]]);
    }

    #[test]
    fn checkout_scans_whole_table() {
        let (cvd, vids) = fig32_cvd();
        let (db, model) = loaded(ModelKind::CombinedTable, &cvd);
        let mut ctx = ExecContext::new();
        let rows = model.checkout(&db, &cvd, vids[0], &mut ctx).unwrap();
        assert_eq!(rows.len(), 3);
        // All 5 heap rows were scanned, not just v0's 3.
        assert!(ctx.tracker.tuples >= 5);
        // Containment checks charge per array element.
        assert!(ctx.tracker.operator_evals > 0);
    }

    #[test]
    fn commit_cost_grows_with_version_size() {
        // The combined-table commit touches every reused record; its cost
        // should exceed split-by-rlist's by a wide margin on the same data.
        let (cvd, _) = fig32_cvd();
        let (_db, _) = loaded(ModelKind::CombinedTable, &cvd);
        // Structural assertion: every version's records carry full vlists,
        // i.e. commits wrote v3 into 4 arrays (all records of the merge).
        let (db, _) = loaded(ModelKind::CombinedTable, &cvd);
        let t = db.table(&format!("{}__combined", cvd.name())).unwrap();
        let in_v3 = t
            .iter()
            .filter(|(_, r)| r[1].as_int_array().unwrap().contains(&3))
            .count();
        assert_eq!(in_v3, cvd.version_records(partition::Vid(3)).unwrap().len());
        let m = CostModel::default();
        let _ = m;
    }
}
