//! The physical data models for CVDs compared in Chapter 4.
//!
//! Each model implements [`VersioningModel`]: it maintains a physical
//! representation of a CVD inside a [`relstore::Database`] and supports the
//! two primitive operations the paper benchmarks — `commit` (register a new
//! version's records) and `checkout` (materialize a version's records).
//!
//! | model | §4.1 | storage | commit | checkout |
//! |---|---|---|---|---|
//! | [`ATablePerVersion`] | 4.5 | one table per version (≈10× redundancy) | insert all rows | read one table |
//! | [`CombinedTable`] | 4.1 | single table + `vlist` int[] | append vid to every reused record's vlist | full scan with `<@` containment |
//! | [`SplitByVlist`] | 4.2 | data table + (rid → vlist) | append vid per reused record | scan versioning table + hash join |
//! | [`SplitByRlist`] | 4.3 | data table + (vid → rlist) | insert **one** versioning tuple | index rlist + hash join |
//! | [`DeltaBased`] | 4.4 | per-version delta from a base | store delta vs closest parent | replay chain to the root |

mod a_table_per_version;
mod combined_table;
mod delta_based;
mod split_by_rlist;
mod split_by_vlist;

pub use a_table_per_version::ATablePerVersion;
pub use combined_table::CombinedTable;
pub use delta_based::DeltaBased;
pub use split_by_rlist::SplitByRlist;
pub use split_by_vlist::SplitByVlist;

use crate::cvd::Cvd;
use crate::error::Result;
use partition::{Rid, Vid};
use relstore::{Column, DataType, Database, ExecContext, Row, Schema, Value};

/// Which physical model a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    ATablePerVersion,
    CombinedTable,
    SplitByVlist,
    SplitByRlist,
    DeltaBased,
}

impl ModelKind {
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ATablePerVersion => "a-table-per-version",
            ModelKind::CombinedTable => "combined-table",
            ModelKind::SplitByVlist => "split-by-vlist",
            ModelKind::SplitByRlist => "split-by-rlist",
            ModelKind::DeltaBased => "delta-based",
        }
    }

    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::ATablePerVersion,
            ModelKind::CombinedTable,
            ModelKind::SplitByVlist,
            ModelKind::SplitByRlist,
            ModelKind::DeltaBased,
        ]
    }

    /// Instantiate the model for a CVD name.
    pub fn build(self, cvd_name: &str) -> Box<dyn VersioningModel> {
        match self {
            ModelKind::ATablePerVersion => Box::new(ATablePerVersion::new(cvd_name)),
            ModelKind::CombinedTable => Box::new(CombinedTable::new(cvd_name)),
            ModelKind::SplitByVlist => Box::new(SplitByVlist::new(cvd_name)),
            ModelKind::SplitByRlist => Box::new(SplitByRlist::new(cvd_name)),
            ModelKind::DeltaBased => Box::new(DeltaBased::new(cvd_name)),
        }
    }
}

/// A physical representation of a CVD.
pub trait VersioningModel {
    fn kind(&self) -> ModelKind;

    /// Table-name prefix of this model's physical tables.
    fn table_prefix(&self) -> String;

    /// Create the physical tables for an empty CVD.
    fn init(&mut self, db: &mut Database, cvd: &Cvd) -> Result<()>;

    /// Register version `vid` (already present in `cvd`): `new_rids` are the
    /// records this commit introduced; reused records are the rest of
    /// `cvd.version_records(vid)`. I/O the commit performs (page writes,
    /// index probes, array rewrites) is charged to `tracker` so experiments
    /// can report the disk-level cost the wall clock hides in memory.
    fn apply_commit(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        new_rids: &[Rid],
        tracker: &mut relstore::CostTracker,
    ) -> Result<()>;

    /// Materialize a version's records as `[rid, attrs…]` rows, charging
    /// executor costs to `ctx`.
    fn checkout(
        &self,
        db: &Database,
        cvd: &Cvd,
        vid: Vid,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>>;

    /// Total physical storage in bytes.
    fn storage_bytes(&self, db: &Database) -> usize;
}

/// Replay an entire CVD into a model: init + apply_commit for every version
/// in commit order.
pub fn load_cvd(model: &mut dyn VersioningModel, db: &mut Database, cvd: &Cvd) -> Result<()> {
    model.init(db, cvd)?;
    let mut seen: std::collections::HashSet<Rid> = std::collections::HashSet::new();
    let mut tracker = relstore::CostTracker::new();
    for v in cvd.graph().versions() {
        let rids = cvd.version_records(v)?;
        let new_rids: Vec<Rid> = rids.iter().copied().filter(|r| seen.insert(*r)).collect();
        model.apply_commit(db, cvd, v, &new_rids, &mut tracker)?;
    }
    Ok(())
}

/// The `[rid, data attributes…]` schema of a CVD's data tables.
pub(crate) fn data_schema(cvd: &Cvd) -> Schema {
    let mut cols = vec![Column::new("rid", DataType::Int64)];
    for c in cvd.schema().columns() {
        cols.push(Column::nullable(c.name.clone(), c.dtype));
    }
    Schema::new(cols)
}

/// Build the `[rid, attrs…]` row for a record.
pub(crate) fn data_row(cvd: &Cvd, rid: Rid) -> Row {
    let mut row = Vec::with_capacity(cvd.schema().len() + 1);
    row.push(Value::Int64(rid.0 as i64));
    row.extend(cvd.record(rid).iter().cloned());
    row
}

/// Align a `[rid, attrs…]` row read from a per-version physical table to
/// the CVD's *current* union schema: pad attributes added since the table
/// was written and widen values whose column type evolved (§4.3). Needed by
/// the models that freeze a schema per version (a-table-per-version,
/// delta-based); the shared-table models evolve in place instead.
pub(crate) fn align_row_to_schema(cvd: &Cvd, mut row: Row) -> Row {
    let want = cvd.schema().columns();
    while row.len() < want.len() + 1 {
        row.push(Value::Null);
    }
    for (i, col) in want.iter().enumerate() {
        let v = &row[i + 1];
        if v.data_type().map(|d| d != col.dtype).unwrap_or(false) {
            if let Some(w) = v.widen(col.dtype) {
                row[i + 1] = w;
            }
        }
    }
    row
}

/// Grow `table` to match the CVD's evolved schema (ALTER TABLE ADD COLUMN
/// with NULL backfill; §4.3 single-pool).
pub(crate) fn sync_table_schema(
    table: &mut relstore::Table,
    cvd: &Cvd,
    extra_leading: usize,
) -> Result<()> {
    // The table has `extra_leading` bookkeeping columns (e.g. rid) followed
    // by the data attributes.
    let want = cvd.schema().columns();
    while table.schema().len() - extra_leading < want.len() {
        let next = &want[table.schema().len() - extra_leading];
        table
            .add_column(Column::nullable(next.name.clone(), next.dtype), Value::Null)
            .map_err(crate::error::Error::Storage)?;
    }
    // Widen any columns whose type evolved.
    for (i, col) in want.iter().enumerate() {
        let idx = i + extra_leading;
        let have = table
            .schema()
            .column(idx)
            .ok_or_else(|| {
                crate::error::Error::Internal(format!("evolved schema column #{idx} missing"))
            })?
            .dtype;
        if have != col.dtype {
            table
                .widen_column(&col.name.clone(), col.dtype)
                .map_err(crate::error::Error::Storage)?;
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use relstore::Column;

    /// Build the Fig. 3.2 protein-interaction CVD: four versions
    /// v0={r0,r1,r2}, v1 updates r0, v2 branches from v0, v3 merges v1+v2.
    pub fn fig32_cvd() -> (Cvd, Vec<Vid>) {
        let schema = Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("coexpression", DataType::Int64),
        ]);
        let r = |a: &str, b: &str, c: i64| -> Row {
            vec![Value::from(a), Value::from(b), Value::Int64(c)]
        };
        let (mut cvd, v0) = Cvd::init(
            "Interaction",
            schema,
            vec!["protein1".into(), "protein2".into()],
            vec![r("A", "B", 0), r("C", "D", 87), r("E", "F", 164)],
            "alice",
        )
        .unwrap();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[v0])
            .unwrap()
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        let mut m1 = rows.clone();
        m1[0][2] = Value::Int64(83); // update (A, B)
        let v1 = cvd.commit(&[v0], m1, "update AB", "bob").unwrap().vid;
        let mut m2 = rows.clone();
        m2.push(r("G", "H", 975)); // insert
        let v2 = cvd.commit(&[v0], m2, "insert GH", "carol").unwrap().vid;
        let merged: Vec<Row> = cvd
            .checkout_rows(&[v1, v2])
            .unwrap()
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        let v3 = cvd.commit(&[v1, v2], merged, "merge", "dave").unwrap().vid;
        (cvd, vec![v0, v1, v2, v3])
    }

    /// Load a CVD into a fresh database under the given model.
    pub fn loaded(kind: ModelKind, cvd: &Cvd) -> (Database, Box<dyn VersioningModel>) {
        let mut db = Database::new();
        let mut model = kind.build(cvd.name());
        load_cvd(model.as_mut(), &mut db, cvd).unwrap();
        (db, model)
    }

    /// Checkout through the model and compare against the CVD's logical
    /// record set (order-insensitive).
    pub fn assert_checkout_matches(
        kind: ModelKind,
        db: &Database,
        model: &dyn VersioningModel,
        cvd: &Cvd,
        v: Vid,
    ) {
        let mut ctx = ExecContext::new();
        let mut got = model.checkout(db, cvd, v, &mut ctx).unwrap();
        let mut want: Vec<Row> = cvd
            .version_records(v)
            .unwrap()
            .iter()
            .map(|&rid| data_row(cvd, rid))
            .collect();
        let key = |r: &Row| r[0].as_i64().unwrap();
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want, "{} checkout of {v} diverges", kind.name());
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn all_models_checkout_all_versions_identically() {
        let (cvd, vids) = fig32_cvd();
        for kind in ModelKind::all() {
            let (db, model) = loaded(kind, &cvd);
            for &v in &vids {
                assert_checkout_matches(kind, &db, model.as_ref(), &cvd, v);
            }
        }
    }

    #[test]
    fn storage_ordering_matches_paper() {
        // Fig 4.1(a): a-table-per-version ≫ others; split models dedupe.
        let (cvd, _) = fig32_cvd();
        let mut sizes = std::collections::HashMap::new();
        for kind in ModelKind::all() {
            let (db, model) = loaded(kind, &cvd);
            sizes.insert(kind, model.storage_bytes(&db));
        }
        assert!(
            sizes[&ModelKind::ATablePerVersion] > sizes[&ModelKind::SplitByRlist],
            "a-table-per-version should dominate storage"
        );
        assert!(sizes[&ModelKind::ATablePerVersion] > sizes[&ModelKind::SplitByVlist]);
    }

    #[test]
    fn incremental_commit_after_load() {
        // Apply a fresh commit through every model after the initial load.
        let (mut cvd, vids) = fig32_cvd();
        let mut stores: Vec<(ModelKind, Database, Box<dyn VersioningModel>)> = ModelKind::all()
            .into_iter()
            .map(|k| {
                let (db, m) = loaded(k, &cvd);
                (k, db, m)
            })
            .collect();
        let rows: Vec<Row> = cvd
            .checkout_rows(&[vids[3]])
            .unwrap()
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        let mut modified = rows.clone();
        modified[0][2] = Value::Int64(1);
        let res = cvd.commit(&[vids[3]], modified, "tweak", "eve").unwrap();
        let new_rids: Vec<Rid> = {
            let prev: std::collections::HashSet<Rid> = vids
                .iter()
                .flat_map(|&v| cvd.version_records(v).unwrap().iter().copied())
                .collect();
            cvd.version_records(res.vid)
                .unwrap()
                .iter()
                .copied()
                .filter(|r| !prev.contains(r))
                .collect()
        };
        for (kind, db, model) in &mut stores {
            model
                .apply_commit(
                    db,
                    &cvd,
                    res.vid,
                    &new_rids,
                    &mut relstore::CostTracker::new(),
                )
                .unwrap();
            assert_checkout_matches(*kind, db, model.as_ref(), &cvd, res.vid);
        }
    }
}
