//! OrpheusDB errors.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the versioning layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An error from the underlying storage engine.
    Storage(relstore::Error),
    /// The CVD does not exist.
    CvdNotFound(String),
    /// A CVD with this name already exists.
    CvdExists(String),
    /// The version id does not exist in the CVD.
    VersionNotFound(u32),
    /// A commit violated the primary-key constraint within one version.
    PrimaryKeyViolation(String),
    /// The committed table/file does not trace back to a checkout.
    NotCheckedOut(String),
    /// The acting user lacks permission on the staging table.
    PermissionDenied { user: String, table: String },
    /// No such user / user already exists / no user logged in.
    UserError(String),
    /// Command-line or query parse error.
    Parse(String),
    /// Schema evolution produced an incompatible change.
    SchemaEvolution(String),
    /// An internal invariant of the versioning layer was violated
    /// (e.g. an index pointing at a missing row). Raised instead of
    /// panicking: the CVD may hold the only copy of the data, so a
    /// broken invariant must surface as an error, never as an abort.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::CvdNotFound(n) => write!(f, "cvd not found: {n}"),
            Error::CvdExists(n) => write!(f, "cvd already exists: {n}"),
            Error::VersionNotFound(v) => write!(f, "version not found: v{v}"),
            Error::PrimaryKeyViolation(m) => write!(f, "primary key violation: {m}"),
            Error::NotCheckedOut(t) => write!(f, "table was not checked out from a cvd: {t}"),
            Error::PermissionDenied { user, table } => {
                write!(f, "user {user} may not access staging table {table}")
            }
            Error::UserError(m) => write!(f, "user error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::SchemaEvolution(m) => write!(f, "schema evolution: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relstore::Error> for Error {
    fn from(e: relstore::Error) -> Self {
        Error::Storage(e)
    }
}
