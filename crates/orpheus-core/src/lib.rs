//! # orpheus-core — OrpheusDB (Chapters 3–5)
//!
//! OrpheusDB is a dataset version-control system that "bolts on" versioning
//! to a relational database. The fundamental unit of storage is the
//! **collaborative versioned dataset (CVD)**: a relation plus the many
//! versions of it, related by a version graph. Records are immutable; each
//! version is a set of record ids; users interact through git-style
//! commands (`checkout`, `commit`, `diff`, …) and versioned SQL.
//!
//! The crate is organised exactly along the paper's architecture
//! (Fig. 3.1):
//!
//! * [`cvd`] — the CVD itself: the record manager (rid assignment under the
//!   no-cross-version-diff rule), the version manager (metadata table,
//!   version graph), and schema evolution (attribute table, §4.3);
//! * [`models`] — the five physical data models compared in Chapter 4
//!   (a-table-per-version, combined-table, split-by-vlist, split-by-rlist,
//!   delta-based), all implementing [`models::VersioningModel`];
//! * [`partitioned`] — the partition-optimized split-by-rlist storage that
//!   Chapter 5 builds with LyreSplit;
//! * [`query`] — the versioned query layer: `SELECT … FROM VERSION i OF
//!   CVD c`, aggregates `GROUP BY vid`, and the functional primitives
//!   `ancestor`/`descendant`/`parent`, `v_diff`, `v_intersect` (§3.3.2);
//! * [`commands`] — the command-line surface: `init`, `checkout`, `commit`,
//!   `diff`, `ls`, `drop`, `optimize`, plus user management and the
//!   access-controlled staging area (§3.3.1).

mod catalog;
pub mod commands;
pub mod cvd;
pub mod error;
mod explain;
pub mod models;
pub mod partitioned;
pub mod query;
pub mod snapshot;

pub use commands::{CommandOutput, OrpheusDb};
pub use cvd::{CommitResult, Cvd, VersionMeta};
pub use error::{Error, Result};
pub use models::{
    ATablePerVersion, CombinedTable, DeltaBased, ModelKind, SplitByRlist, SplitByVlist,
    VersioningModel,
};
pub use partition::{Rid, Vid};
pub use partitioned::PartitionedStore;
pub use snapshot::Snapshot;
