//! Instrumented plan construction for `EXPLAIN ANALYZE` (§3.3.2 queries).
//!
//! Builds the same plans [`crate::query::VersionedQuery`] executes, but
//! threads every operator through [`relstore::wrap`] so it carries an
//! [`relstore::ExplainNode`] recording actual rows, `next()` calls, wall
//! time, and measured page I/O alongside the planner's estimates. The
//! estimates use the PostgreSQL-default cost model the rest of the system
//! charges with ([`relstore::CostModel`]), so the estimated-vs-actual gap
//! in the rendered tree is the same gap the Fig. 5.7 experiments measure.

use crate::cvd::Cvd;
use crate::error::{Error, Result};
use crate::models::{data_schema, SplitByRlist};
use crate::query::{predicate_expr, shift_columns, VQuery};
use partition::Vid;
use relstore::{
    wrap, BinOp, BoxExec, CostModel, Database, Estimate, Executor, ExplainNode, Filter,
    HashAggregate, HashJoin, Limit, ParHashJoin, Project, SeqScan, Unnest, Value, Values,
    WorkerPool,
};

/// PostgreSQL's default selectivity guesses (`eqsel` / inequality).
const EQ_SEL: f64 = 0.005;
const INEQ_SEL: f64 = 1.0 / 3.0;

fn pages_of(rows: f64, m: &CostModel) -> f64 {
    (rows / m.rows_per_page as f64).ceil()
}

fn selectivity(pred: &(String, BinOp, Value)) -> f64 {
    match pred.1 {
        BinOp::Eq => EQ_SEL,
        _ => INEQ_SEL,
    }
}

/// Union of the listed versions' rids, deduplicated.
fn rids_of(cvd: &Cvd, versions: &[Vid]) -> Result<Vec<i64>> {
    let mut rids: Vec<i64> = Vec::new();
    for &v in versions {
        rids.extend(cvd.version_records(v)?.iter().map(|r| r.0 as i64));
    }
    rids.sort_unstable();
    rids.dedup();
    Ok(rids)
}

/// The core retrieval pipeline of the split-by-rlist model, instrumented:
/// `Project star ← HashJoin(Values rids, SeqScan data)`. Output is the
/// `[rid, attrs…]` star schema.
fn rid_join<'a>(
    db: &'a Database,
    model: &SplitByRlist,
    rids: Vec<i64>,
    suffix: &str,
    m: &CostModel,
    pool: Option<&WorkerPool>,
) -> Result<(BoxExec<'a>, ExplainNode)> {
    let data = db.table(&model.data_name()).map_err(Error::Storage)?;
    let n = rids.len() as f64;
    let data_rows = data.live_row_count() as f64;
    let data_pages = pages_of(data_rows, m);
    let (build, build_node) = wrap(
        Box::new(Values::ints("rid", rids)),
        format!("Values rids{suffix}"),
        Estimate::new(n, 0.0),
        vec![],
    );
    if let Some(p) = pool.filter(|p| p.threads() > 1) {
        // Morsel-parallel: the join fuses the probe scan and the star
        // projection, so the plan has one node where the sequential tree
        // has three. The probe's I/O still happens (on the coordinator)
        // and stays in the estimate.
        let cols: Vec<usize> = (1..1 + data.schema().len()).collect();
        let join = ParHashJoin::new(build, data, 0, 0, p.clone()).with_projection(&cols);
        let workers = join.parallelism();
        let worker_rows = join.worker_rows();
        let (plan, mut node) = wrap(
            Box::new(join),
            format!("ParHashJoin rid=rid{suffix}"),
            Estimate::new(n, data_pages).with_parallelism(workers),
            vec![build_node],
        );
        node.set_worker_rows(worker_rows);
        return Ok((plan, node));
    }
    let (probe, probe_node) = wrap(
        Box::new(SeqScan::new(data)),
        format!("SeqScan {}{suffix}", model.data_name()),
        Estimate::new(data_rows, data_pages),
        vec![],
    );
    let join = Box::new(HashJoin::new(build, probe, 0, 0));
    let cols: Vec<usize> = (1..join.schema().len()).collect();
    let (join, join_node) = wrap(
        join,
        format!("HashJoin rid=rid{suffix}"),
        Estimate::new(n, data_pages),
        vec![build_node, probe_node],
    );
    Ok(wrap(
        Box::new(Project::columns(join, &cols)),
        format!("Project star{suffix}"),
        Estimate::new(n, data_pages),
        vec![join_node],
    ))
}

/// Build the instrumented plan for a parsed versioned query. The returned
/// executor streams the query's rows; the [`ExplainNode`] observes every
/// operator in the tree and can be snapshotted after the plan is drained.
pub(crate) fn build_instrumented<'a>(
    db: &'a Database,
    cvd: &Cvd,
    model: &SplitByRlist,
    query: &VQuery,
    pool: Option<&WorkerPool>,
) -> Result<(BoxExec<'a>, ExplainNode)> {
    let m = CostModel::default();
    match query {
        VQuery::SelectVersions {
            versions,
            predicate,
            limit,
            ..
        } => {
            let rids = rids_of(cvd, versions)?;
            let (mut plan, mut node) = rid_join(db, model, rids, "", &m, pool)?;
            if let Some(p) = predicate {
                let est = Estimate::new(node.estimate.rows * selectivity(p), node.estimate.pages);
                let expr = predicate_expr(cvd, p)?;
                let (f, fnode) = wrap(
                    Box::new(Filter::new(plan, expr)),
                    format!("Filter {}", p.0),
                    est,
                    vec![node],
                );
                plan = f;
                node = fnode;
            }
            if let Some(n) = limit {
                let est = Estimate::new((*n as f64).min(node.estimate.rows), node.estimate.pages);
                let (l, lnode) = wrap(
                    Box::new(Limit::new(plan, *n)),
                    format!("Limit {n}"),
                    est,
                    vec![node],
                );
                plan = l;
                node = lnode;
            }
            Ok((plan, node))
        }
        VQuery::AggregateByVersion {
            agg,
            agg_col,
            predicate,
            ..
        } => {
            let data = db.table(&model.data_name()).map_err(Error::Storage)?;
            let vtab = db.table(&model.vtab_name()).map_err(Error::Storage)?;
            let versions_n = vtab.live_row_count() as f64;
            let vtab_pages = pages_of(versions_n, &m);
            let data_rows = data.live_row_count() as f64;
            let data_pages = pages_of(data_rows, &m);
            // Unnest fan-out: total rlist entries across every version.
            let mut entries = 0f64;
            for v in cvd.graph().versions() {
                entries += cvd.version_records(v)?.len() as f64;
            }
            let (scan, scan_node) = wrap(
                Box::new(SeqScan::new(vtab)),
                format!("SeqScan {}", model.vtab_name()),
                Estimate::new(versions_n, vtab_pages),
                vec![],
            );
            let (unnest, unnest_node) = wrap(
                Box::new(Unnest::new(scan, 1).map_err(Error::Storage)?),
                "Unnest rlist",
                Estimate::new(entries, vtab_pages),
                vec![scan_node],
            );
            let (probe, probe_node) = wrap(
                Box::new(SeqScan::new(data)),
                format!("SeqScan {}", model.data_name()),
                Estimate::new(data_rows, data_pages),
                vec![],
            );
            let (mut plan, mut node) = wrap(
                Box::new(HashJoin::new(unnest, probe, 1, 0)),
                "HashJoin rid=rid",
                Estimate::new(entries, vtab_pages + data_pages),
                vec![unnest_node, probe_node],
            );
            if let Some(p) = predicate {
                let est = Estimate::new(node.estimate.rows * selectivity(p), node.estimate.pages);
                // Joined schema is [vid, rid, rid, attrs…]: star columns
                // are offset by 2 (see `VersionedQuery::aggregate_by_version`).
                let expr = shift_columns(&predicate_expr(cvd, p)?, 2);
                let (f, fnode) = wrap(
                    Box::new(Filter::new(plan, expr)),
                    format!("Filter {}", p.0),
                    est,
                    vec![node],
                );
                plan = f;
                node = fnode;
            }
            let agg_idx = 2 + data_schema(cvd).index_of(agg_col).map_err(Error::Storage)?;
            let est = Estimate::new(versions_n, node.estimate.pages);
            Ok(wrap(
                Box::new(HashAggregate::new(plan, vec![0], vec![(*agg, agg_idx)])),
                format!("HashAggregate {agg_col} by vid"),
                est,
                vec![node],
            ))
        }
        VQuery::Diff { a, b, .. } => {
            let (only_a, _) = cvd.diff(*a, *b)?;
            let rids: Vec<i64> = only_a.iter().map(|r| r.0 as i64).collect();
            rid_join(db, model, rids, "", &m, pool)
        }
        VQuery::Intersect { versions, .. } => {
            let rids: Vec<i64> = cvd
                .v_intersect(versions)?
                .iter()
                .map(|r| r.0 as i64)
                .collect();
            rid_join(db, model, rids, "", &m, pool)
        }
        VQuery::JoinVersions {
            left, right, on, ..
        } => {
            let col = 1 + cvd.schema().index_of(on).map_err(Error::Storage)?;
            let lrids = rids_of(cvd, &[*left])?;
            let rrids = rids_of(cvd, &[*right])?;
            let est_rows = lrids.len().max(rrids.len()) as f64;
            let (lhs, lnode) = rid_join(db, model, lrids, " (left)", &m, pool)?;
            let (rhs, rnode) = rid_join(db, model, rrids, " (right)", &m, pool)?;
            let est_pages = lnode.estimate.pages + rnode.estimate.pages;
            Ok(wrap(
                Box::new(HashJoin::new(lhs, rhs, col, col)),
                format!("HashJoin v{}.{on}=v{}.{on}", left.0, right.0),
                Estimate::new(est_rows, est_pages),
                vec![lnode, rnode],
            ))
        }
    }
}

/// The CVD a parsed query targets.
pub(crate) fn cvd_of(query: &VQuery) -> &str {
    match query {
        VQuery::SelectVersions { cvd, .. }
        | VQuery::AggregateByVersion { cvd, .. }
        | VQuery::Diff { cvd, .. }
        | VQuery::Intersect { cvd, .. }
        | VQuery::JoinVersions { cvd, .. } => cvd,
    }
}
