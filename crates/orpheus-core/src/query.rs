//! The versioned query layer (§3.3.2).
//!
//! OrpheusDB lets users run SQL directly against versions without
//! materializing them:
//!
//! ```sql
//! SELECT * FROM VERSION 1, 2 OF CVD Interaction
//!   WHERE coexpression > 80 LIMIT 50;
//! SELECT vid, count(*) FROM CVD Interaction GROUP BY vid;
//! ```
//!
//! plus functional primitives over the version graph —
//! `ancestor(v)`, `descendant(v)`, `parent(v)`, `v_diff(a, b)`,
//! `v_intersect(vs)`. Queries are translated into plans over the
//! split-by-rlist physical tables, exactly as the middleware translates
//! them to PostgreSQL SQL in the original.

use crate::cvd::Cvd;
use crate::error::{Error, Result};
use crate::models::SplitByRlist;
use partition::Vid;
use relstore::{
    AggFunc, BinOp, Database, ExecContext, Executor, Expr, Filter, HashJoin, Limit, ParHashJoin,
    Project, Row, Schema, SeqScan, Table, Value, Values, WorkerPool,
};

/// A query result: a schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// Versioned queries over a CVD stored under the split-by-rlist model.
pub struct VersionedQuery<'a> {
    db: &'a Database,
    cvd: &'a Cvd,
    model: &'a SplitByRlist,
    pool: Option<WorkerPool>,
}

impl<'a> VersionedQuery<'a> {
    pub fn new(db: &'a Database, cvd: &'a Cvd, model: &'a SplitByRlist) -> Self {
        VersionedQuery {
            db,
            cvd,
            model,
            pool: None,
        }
    }

    /// Run the rid-join retrieval pipelines on this morsel worker pool
    /// (`None`, or a single-thread pool, keeps the sequential plans).
    pub fn with_pool(mut self, pool: Option<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Output schema of `SELECT *`: `[rid, attrs…]`.
    fn star_schema(&self) -> Schema {
        crate::models::data_schema(self.cvd)
    }

    /// Collect the rids of the listed versions (union, deduplicated).
    fn rids_of(&self, versions: &[Vid]) -> Result<Vec<i64>> {
        let mut rids: Vec<i64> = Vec::new();
        for &v in versions {
            rids.extend(self.cvd.version_records(v)?.iter().map(|r| r.0 as i64));
        }
        rids.sort_unstable();
        rids.dedup();
        Ok(rids)
    }

    /// `SELECT * FROM VERSION v1, v2… OF CVD c [WHERE pred] [LIMIT n]`.
    /// The predicate is over the `[rid, attrs…]` schema.
    pub fn select_versions(
        &self,
        versions: &[Vid],
        predicate: Option<Expr>,
        limit: Option<usize>,
        ctx: &mut ExecContext,
    ) -> Result<QueryResult> {
        let rids = self.rids_of(versions)?;
        let data = self.db.table(&self.model.data_name())?;
        let mut plan: Box<dyn Executor + '_> = rid_join_plan(data, rids, self.pool.as_ref());
        if let Some(pred) = predicate {
            plan = Box::new(Filter::new(plan, pred));
        }
        if let Some(n) = limit {
            plan = Box::new(Limit::new(plan, n));
        }
        let rows = relstore::collect(plan.as_mut(), ctx)?;
        // The projection is exactly the star schema; use its column names
        // (the join output renames collided columns with an rhs_ prefix).
        Ok(QueryResult {
            schema: self.star_schema(),
            rows,
        })
    }

    /// `SELECT vid, agg(col) FROM CVD c [WHERE pred] GROUP BY vid`
    /// (§3.3.2): the aggregate runs across every version of the CVD.
    pub fn aggregate_by_version(
        &self,
        agg: AggFunc,
        agg_col: &str,
        predicate: Option<Expr>,
        ctx: &mut ExecContext,
    ) -> Result<QueryResult> {
        let data = self.db.table(&self.model.data_name())?;
        let vtab = self.db.table(&self.model.vtab_name())?;
        // (vid, rid) pairs via unnest of every rlist.
        let scan = Box::new(SeqScan::new(vtab));
        let unnest = Box::new(relstore::Unnest::new(scan, 1).map_err(Error::Storage)?);
        // Join with the data table on rid.
        let probe = Box::new(SeqScan::new(data));
        let join = Box::new(HashJoin::new(unnest, probe, 1, 0));
        // Joined schema: [vid, rid, rid, attrs…] — predicate columns are
        // offset by 2 relative to the star schema.
        let mut plan: Box<dyn Executor + '_> = join;
        if let Some(pred) = predicate {
            plan = Box::new(Filter::new(plan, shift_columns(&pred, 2)));
        }
        // Joined schema: [vid, rid, rid, attrs…]; star column i sits at i+2.
        let agg_idx = 2 + self
            .star_schema()
            .index_of(agg_col)
            .map_err(Error::Storage)?;
        let mut aggregate = relstore::HashAggregate::new(plan, vec![0], vec![(agg, agg_idx)]);
        let schema = aggregate.schema().clone();
        let rows = aggregate.collect(ctx)?;
        Ok(QueryResult { schema, rows })
    }

    /// Versions whose aggregate satisfies `cmp value` — e.g. *“find versions
    /// where the total count of tuples with protein1 = X is greater than
    /// 50”* (§4.1).
    pub fn versions_where_aggregate(
        &self,
        agg: AggFunc,
        agg_col: &str,
        predicate: Option<Expr>,
        cmp: BinOp,
        value: Value,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Vid>> {
        let result = self.aggregate_by_version(agg, agg_col, predicate, ctx)?;
        let mut out = Vec::new();
        for row in &result.rows {
            let matches = Expr::Bin(
                cmp,
                Box::new(Expr::col(1)),
                Box::new(Expr::Const(value.clone())),
            )
            .matches(row, &mut ctx.tracker)?;
            if matches {
                let vid = row[0]
                    .as_i64()
                    .ok_or_else(|| Error::Internal("version id column is not an integer".into()))?;
                out.push(Vid(vid as u32));
            }
        }
        Ok(out)
    }

    /// `v_diff(a, b)` as a query: records in `a` but not `b`, materialized.
    pub fn v_diff(&self, a: Vid, b: Vid, ctx: &mut ExecContext) -> Result<QueryResult> {
        let (only_a, _) = self.cvd.diff(a, b)?;
        let rids: Vec<i64> = only_a.iter().map(|r| r.0 as i64).collect();
        self.fetch_rids(rids, ctx)
    }

    /// `v_intersect(vs)`: records present in every listed version.
    pub fn v_intersect(&self, versions: &[Vid], ctx: &mut ExecContext) -> Result<QueryResult> {
        let rids: Vec<i64> = self
            .cvd
            .v_intersect(versions)?
            .iter()
            .map(|r| r.0 as i64)
            .collect();
        self.fetch_rids(rids, ctx)
    }

    /// Join two versions of the CVD on an attribute: rows are
    /// `[left rid, left attrs…, right rid, right attrs…]` — how §3.3.2's
    /// renaming trick lets one SQL statement compare versions.
    pub fn join_versions(
        &self,
        left: Vid,
        right: Vid,
        on: &str,
        ctx: &mut ExecContext,
    ) -> Result<QueryResult> {
        // The join attribute must be Int64 (the engine's join-key type).
        let col = 1 + self.cvd.schema().index_of(on).map_err(Error::Storage)?;
        let data = self.db.table(&self.model.data_name())?;
        let fetch_side = |v: Vid, ctx: &mut ExecContext| -> Result<Vec<Row>> {
            let rids: Vec<i64> = self
                .cvd
                .version_records(v)?
                .iter()
                .map(|r| r.0 as i64)
                .collect();
            rid_join_rows(data, rids, self.pool.as_ref(), ctx)
        };
        let left_rows = fetch_side(left, ctx)?;
        let right_rows = fetch_side(right, ctx)?;
        let star = self.star_schema();
        let schema = star.join(&star);
        let lhs = Box::new(Values::new(star.clone(), left_rows));
        let rhs = Box::new(Values::new(star, right_rows));
        let mut join = HashJoin::new(lhs, rhs, col, col);
        let rows = join.collect(ctx)?;
        Ok(QueryResult { schema, rows })
    }

    fn fetch_rids(&self, rids: Vec<i64>, ctx: &mut ExecContext) -> Result<QueryResult> {
        let data = self.db.table(&self.model.data_name())?;
        let rows = rid_join_rows(data, rids, self.pool.as_ref(), ctx)?;
        Ok(QueryResult {
            schema: self.star_schema(),
            rows,
        })
    }
}

/// The split-by-rlist retrieval pipeline as a plan:
/// `Project star ← HashJoin(Values rids, SeqScan data)`, or its fused
/// morsel-parallel equivalent when a multi-threaded pool is supplied.
/// Both emit the `[rid, attrs…]` star rows in identical order, so higher
/// operators (filters, limits, joins) see the same stream either way.
/// The parallel probe ships zero-copy page leases to the workers
/// (checkpointed pages only — dirty pages are copied and counted).
pub(crate) fn rid_join_plan<'t>(
    data: &'t Table,
    rids: Vec<i64>,
    pool: Option<&WorkerPool>,
) -> Box<dyn Executor + 't> {
    let build = Box::new(Values::ints("rid", rids));
    let cols: Vec<usize> = (1..1 + data.schema().len()).collect();
    match pool {
        Some(p) if p.threads() > 1 => {
            Box::new(ParHashJoin::new(build, data, 0, 0, p.clone()).with_projection(&cols))
        }
        _ => {
            let probe = Box::new(SeqScan::new(data));
            let join = Box::new(HashJoin::new(build, probe, 0, 0));
            Box::new(Project::columns(join, &cols))
        }
    }
}

/// [`rid_join_plan`] drained to completion.
pub(crate) fn rid_join_rows(
    data: &Table,
    rids: Vec<i64>,
    pool: Option<&WorkerPool>,
    ctx: &mut ExecContext,
) -> Result<Vec<Row>> {
    Ok(relstore::collect(
        rid_join_plan(data, rids, pool).as_mut(),
        ctx,
    )?)
}

/// Rewrite column ordinals in an expression by a fixed offset (used when a
/// predicate written against `[rid, attrs…]` runs over a join output with
/// leading bookkeeping columns).
pub(crate) fn shift_columns(e: &Expr, offset: usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(i + offset),
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(shift_columns(l, offset)),
            Box::new(shift_columns(r, offset)),
        ),
        Expr::And(l, r) => Expr::And(
            Box::new(shift_columns(l, offset)),
            Box::new(shift_columns(r, offset)),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(shift_columns(l, offset)),
            Box::new(shift_columns(r, offset)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(shift_columns(x, offset))),
        Expr::ArrayContains(l, r) => Expr::ArrayContains(
            Box::new(shift_columns(l, offset)),
            Box::new(shift_columns(r, offset)),
        ),
        Expr::ArrayAppend(l, r) => Expr::ArrayAppend(
            Box::new(shift_columns(l, offset)),
            Box::new(shift_columns(r, offset)),
        ),
        Expr::IsNull(x) => Expr::IsNull(Box::new(shift_columns(x, offset))),
    }
}

// ---------------------------------------------------------------------------
// A small parser for the versioned-SQL surface used by the `run` command.
// ---------------------------------------------------------------------------

/// A parsed versioned query.
#[derive(Debug, Clone, PartialEq)]
pub enum VQuery {
    /// `SELECT * FROM VERSION v… OF CVD name [WHERE col op lit] [LIMIT n]`
    SelectVersions {
        cvd: String,
        versions: Vec<Vid>,
        predicate: Option<(String, BinOp, Value)>,
        limit: Option<usize>,
    },
    /// `SELECT vid, AGG(col) FROM CVD name [WHERE col op lit] GROUP BY vid`
    AggregateByVersion {
        cvd: String,
        agg: AggFunc,
        agg_col: String,
        predicate: Option<(String, BinOp, Value)>,
    },
    /// `SELECT * FROM V_DIFF(a, b) OF CVD name` — records in `a` not in `b`
    /// (§3.3.2(b)).
    Diff { cvd: String, a: Vid, b: Vid },
    /// `SELECT * FROM VERSION a OF CVD name JOIN VERSION b ON col` — a
    /// cross-version self-join via renaming ("users can operate directly on
    /// multiple versions within a single SQL statement", §3.3.2).
    JoinVersions {
        cvd: String,
        left: Vid,
        right: Vid,
        on: String,
    },
    /// `SELECT * FROM V_INTERSECT(v…) OF CVD name` — records in every
    /// listed version (§3.3.2(c)).
    Intersect { cvd: String, versions: Vec<Vid> },
}

/// Parse the SQL-ish syntax of §3.3.2. Case-insensitive keywords.
pub fn parse_query(input: &str) -> Result<VQuery> {
    let tokens = tokenize(input);
    let mut p = Parser { tokens, pos: 0 };
    p.expect_kw("SELECT")?;
    if p.peek_is("VID") {
        p.next();
        p.expect_tok(",")?;
        let (agg, col) = p.parse_agg()?;
        p.expect_kw("FROM")?;
        p.expect_kw("CVD")?;
        let cvd = p.ident()?;
        let predicate = p.parse_where()?;
        p.expect_kw("GROUP")?;
        p.expect_kw("BY")?;
        p.expect_kw("VID")?;
        p.end()?;
        Ok(VQuery::AggregateByVersion {
            cvd,
            agg,
            agg_col: col,
            predicate,
        })
    } else {
        p.expect_tok("*")?;
        p.expect_kw("FROM")?;
        if p.peek_is("V_DIFF") || p.peek_is("V_INTERSECT") {
            let func = p.ident()?.to_ascii_lowercase();
            p.expect_tok("(")?;
            let mut versions = vec![Vid(p.number()? as u32)];
            while p.peek_is(",") {
                p.next();
                versions.push(Vid(p.number()? as u32));
            }
            p.expect_tok(")")?;
            p.expect_kw("OF")?;
            p.expect_kw("CVD")?;
            let cvd = p.ident()?;
            p.end()?;
            return if func == "v_diff" {
                if versions.len() != 2 {
                    return Err(Error::Parse("v_diff takes exactly two versions".into()));
                }
                Ok(VQuery::Diff {
                    cvd,
                    a: versions[0],
                    b: versions[1],
                })
            } else {
                Ok(VQuery::Intersect { cvd, versions })
            };
        }
        p.expect_kw("VERSION")?;
        let mut versions = vec![Vid(p.number()? as u32)];
        while p.peek_is(",") {
            p.next();
            versions.push(Vid(p.number()? as u32));
        }
        p.expect_kw("OF")?;
        p.expect_kw("CVD")?;
        let cvd = p.ident()?;
        if p.peek_is("JOIN") {
            p.next();
            p.expect_kw("VERSION")?;
            let right = Vid(p.number()? as u32);
            p.expect_kw("ON")?;
            let on = p.ident()?;
            p.end()?;
            if versions.len() != 1 {
                return Err(Error::Parse("JOIN takes one version per side".into()));
            }
            return Ok(VQuery::JoinVersions {
                cvd,
                left: versions[0],
                right,
                on,
            });
        }
        let predicate = p.parse_where()?;
        let limit = if p.peek_is("LIMIT") {
            p.next();
            Some(p.number()? as usize)
        } else {
            None
        };
        p.end()?;
        Ok(VQuery::SelectVersions {
            cvd,
            versions,
            predicate,
            limit,
        })
    }
}

fn tokenize(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            ',' | '(' | ')' | '*' | ';' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                if c != ';' {
                    out.push(c.to_string());
                }
            }
            '>' | '<' | '=' | '!' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                let mut op = c.to_string();
                if chars.peek() == Some(&'=') {
                    op.push('=');
                    chars.next();
                }
                out.push(op);
            }
            '\'' => {
                // String literal.
                let mut s = String::from("'");
                for c2 in chars.by_ref() {
                    if c2 == '\'' {
                        break;
                    }
                    s.push(c2);
                }
                out.push(s);
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn peek_is(&self, kw: &str) -> bool {
        self.peek()
            .map(|t| t.eq_ignore_ascii_case(kw))
            .unwrap_or(false)
    }

    fn next(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::Parse(format!(
                "expected {kw}, got {}",
                other.unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn expect_tok(&mut self, tok: &str) -> Result<()> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(Error::Parse(format!(
                "expected {tok}, got {}",
                other.unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.next()
            .ok_or_else(|| Error::Parse("expected identifier".into()))
    }

    fn number(&mut self) -> Result<i64> {
        let t = self.ident()?;
        t.parse()
            .map_err(|_| Error::Parse(format!("expected number, got {t}")))
    }

    fn parse_agg(&mut self) -> Result<(AggFunc, String)> {
        let name = self.ident()?;
        let agg = match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            other => return Err(Error::Parse(format!("unknown aggregate {other}"))),
        };
        self.expect_tok("(")?;
        let col = match self.next() {
            Some(t) if t == "*" => "rid".to_owned(),
            Some(t) => t,
            None => return Err(Error::Parse("expected column".into())),
        };
        self.expect_tok(")")?;
        Ok((agg, col))
    }

    fn parse_where(&mut self) -> Result<Option<(String, BinOp, Value)>> {
        if !self.peek_is("WHERE") {
            return Ok(None);
        }
        self.next();
        let col = self.ident()?;
        let op = match self.next().as_deref() {
            Some("=") => BinOp::Eq,
            Some("!=") | Some("<>") => BinOp::Ne,
            Some(">") => BinOp::Gt,
            Some(">=") => BinOp::Ge,
            Some("<") => BinOp::Lt,
            Some("<=") => BinOp::Le,
            other => {
                return Err(Error::Parse(format!(
                    "expected comparison operator, got {other:?}"
                )))
            }
        };
        let lit = self.ident()?;
        let value = if let Some(stripped) = lit.strip_prefix('\'') {
            Value::Text(stripped.to_owned())
        } else if let Ok(i) = lit.parse::<i64>() {
            Value::Int64(i)
        } else if let Ok(f) = lit.parse::<f64>() {
            Value::Float64(f)
        } else {
            Value::Text(lit)
        };
        Ok(Some((col, op, value)))
    }

    fn end(&mut self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(Error::Parse(format!("unexpected trailing token {t}"))),
        }
    }
}

/// Build a predicate `Expr` over the `[rid, attrs…]` star schema from the
/// parsed `(col, op, lit)` triple.
pub fn predicate_expr(cvd: &Cvd, pred: &(String, BinOp, Value)) -> Result<Expr> {
    predicate_expr_for(cvd.schema(), pred)
}

/// [`predicate_expr`] against an explicit attribute schema — used by
/// snapshot readers, which carry a pinned copy of the schema instead of
/// borrowing the engine's `Cvd`.
pub(crate) fn predicate_expr_for(attrs: &Schema, pred: &(String, BinOp, Value)) -> Result<Expr> {
    let (col, op, value) = pred;
    let idx = 1 + attrs.index_of(col)?;
    Ok(Expr::Bin(
        *op,
        Box::new(Expr::col(idx)),
        Box::new(Expr::Const(value.clone())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_select_versions() {
        let q = parse_query(
            "SELECT * FROM VERSION 1, 2 OF CVD Interaction WHERE coexpression > 80 LIMIT 50;",
        )
        .unwrap();
        assert_eq!(
            q,
            VQuery::SelectVersions {
                cvd: "Interaction".into(),
                versions: vec![Vid(1), Vid(2)],
                predicate: Some(("coexpression".into(), BinOp::Gt, Value::Int64(80))),
                limit: Some(50),
            }
        );
    }

    #[test]
    fn parse_aggregate() {
        let q = parse_query("SELECT vid, count(*) FROM CVD t GROUP BY vid").unwrap();
        assert_eq!(
            q,
            VQuery::AggregateByVersion {
                cvd: "t".into(),
                agg: AggFunc::Count,
                agg_col: "rid".into(),
                predicate: None,
            }
        );
    }

    #[test]
    fn parse_aggregate_with_where_string() {
        let q = parse_query(
            "SELECT vid, sum(coexpression) FROM CVD t WHERE protein1 = 'ENSP273047' GROUP BY vid",
        )
        .unwrap();
        match q {
            VQuery::AggregateByVersion { predicate, .. } => {
                assert_eq!(
                    predicate,
                    Some((
                        "protein1".into(),
                        BinOp::Eq,
                        Value::Text("ENSP273047".into())
                    ))
                );
            }
            _ => panic!("wrong parse"),
        }
    }

    #[test]
    fn parse_join_versions() {
        assert_eq!(
            parse_query("SELECT * FROM VERSION 1 OF CVD t JOIN VERSION 2 ON k").unwrap(),
            VQuery::JoinVersions {
                cvd: "t".into(),
                left: Vid(1),
                right: Vid(2),
                on: "k".into(),
            }
        );
        assert!(parse_query("SELECT * FROM VERSION 1, 2 OF CVD t JOIN VERSION 3 ON k").is_err());
    }

    #[test]
    fn parse_v_diff_and_intersect() {
        assert_eq!(
            parse_query("SELECT * FROM V_DIFF(1, 2) OF CVD t").unwrap(),
            VQuery::Diff {
                cvd: "t".into(),
                a: Vid(1),
                b: Vid(2)
            }
        );
        assert_eq!(
            parse_query("SELECT * FROM v_intersect(0, 1, 3) OF CVD t").unwrap(),
            VQuery::Intersect {
                cvd: "t".into(),
                versions: vec![Vid(0), Vid(1), Vid(3)]
            }
        );
        assert!(parse_query("SELECT * FROM V_DIFF(1) OF CVD t").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("DELETE FROM x").is_err());
        assert!(parse_query("SELECT * FROM VERSION x OF CVD t").is_err());
        assert!(parse_query("SELECT * FROM VERSION 1 OF CVD t LIMIT").is_err());
    }
}
