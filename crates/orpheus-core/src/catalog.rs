//! Durable catalog snapshots: the logical state `open_durable` reloads.
//!
//! The relstore catalog deliberately starts empty after a reopen — the
//! buffer pool recovers *pages*, and callers rebuild table state on top
//! (see `relstore::Database::open_durable`). For OrpheusDB the caller's
//! metadata is the CVD catalog itself: version graphs, single-pool
//! schemas, record payloads, and the attribute table. This module gives
//! that state a crash-safe home: every durability point serializes the
//! full catalog into `catalog.orc` next to the page file (written to a
//! temp name, fsynced, then renamed, so a crash mid-write leaves the
//! previous snapshot intact), and `open_durable` replays it back into
//! fresh physical models via `models::load_cvd`.
//!
//! The format is a private length-prefixed little-endian encoding, not a
//! public interchange format; `MAGIC` guards against feeding it anything
//! else. Uncommitted staging tables are intentionally absent: a crash
//! discards uncommitted work, exactly like a lost client session.

use crate::cvd::{Attribute, Cvd, VersionMeta};
use crate::error::{Error, Result};
use partition::{Rid, Vid};
use relstore::{Column, DataType, Row, Schema, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ORPHCAT1";

/// File name of the catalog snapshot inside a data directory.
const SNAPSHOT_FILE: &str = "catalog.orc";

/// Everything `open_durable` restores besides the page file.
pub(crate) struct CatalogSnapshot {
    pub users: Vec<String>,
    pub clock: u64,
    pub cvds: Vec<Cvd>,
}

pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Write a snapshot atomically: temp file → fsync → rename → fsync dir.
/// A crash at any point leaves either the old snapshot or the new one.
pub(crate) fn write_snapshot(
    dir: &Path,
    users: &[String],
    clock: u64,
    cvds: &[&Cvd],
) -> Result<()> {
    let bytes = encode(users, clock, cvds);
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let io = |e: std::io::Error| Error::Internal(format!("catalog snapshot write: {e}"));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, snapshot_path(dir)).map_err(io)?;
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().map_err(io)?;
    }
    Ok(())
}

/// Load the snapshot from `dir`, or `None` when none was ever written
/// (a fresh data directory).
pub(crate) fn read_snapshot(dir: &Path) -> Result<Option<CatalogSnapshot>> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::Internal(format!("catalog snapshot read: {e}"))),
    };
    decode(&bytes).map(Some)
}

// -- encoding ---------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Text => 3,
        DataType::Bool => 4,
        DataType::IntArray => 5,
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int64(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Value::IntArray(a) => {
            out.push(5);
            put_u32(out, a.len() as u32);
            for x in a {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

fn put_cvd(out: &mut Vec<u8>, cvd: &Cvd) {
    put_str(out, cvd.name());
    let cols = cvd.schema().columns();
    put_u32(out, cols.len() as u32);
    for c in cols {
        put_str(out, &c.name);
        out.push(dtype_tag(c.dtype));
        out.push(c.nullable as u8);
    }
    put_u32(out, cvd.pk_names().len() as u32);
    for pk in cvd.pk_names() {
        put_str(out, pk);
    }
    put_u32(out, cvd.attributes().len() as u32);
    for a in cvd.attributes() {
        put_u32(out, a.id);
        put_str(out, &a.name);
        out.push(dtype_tag(a.dtype));
    }
    let records = cvd.records_raw();
    put_u32(out, records.len() as u32);
    for row in records {
        put_row(out, row);
    }
    let vrs = cvd.version_records_raw();
    put_u32(out, vrs.len() as u32);
    for rids in vrs {
        put_u32(out, rids.len() as u32);
        for r in rids {
            put_u64(out, r.0);
        }
    }
    put_u32(out, cvd.metas().len() as u32);
    for m in cvd.metas() {
        put_u32(out, m.vid.0);
        put_u32(out, m.parents.len() as u32);
        for p in &m.parents {
            put_u32(out, p.0);
        }
        put_u64(out, m.checkout_t);
        put_u64(out, m.commit_t);
        put_str(out, &m.message);
        put_str(out, &m.author);
        put_u32(out, m.attributes.len() as u32);
        for a in &m.attributes {
            put_u32(out, *a);
        }
    }
    put_u64(out, cvd.clock_raw());
}

fn encode(users: &[String], clock: u64, cvds: &[&Cvd]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, users.len() as u32);
    for u in users {
        put_str(&mut out, u);
    }
    put_u64(&mut out, clock);
    put_u32(&mut out, cvds.len() as u32);
    for cvd in cvds {
        put_cvd(&mut out, cvd);
    }
    out
}

// -- decoding ---------------------------------------------------------------

/// Cursor over the snapshot bytes. Every read is bounds-checked; a short
/// or corrupt file surfaces as a typed error, never a panic — the
/// snapshot may guard the only copy of the catalog.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::Internal("catalog snapshot truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| Error::Internal("catalog snapshot: invalid utf-8".into()))
    }

    fn dtype(&mut self) -> Result<DataType> {
        match self.u8()? {
            1 => Ok(DataType::Int64),
            2 => Ok(DataType::Float64),
            3 => Ok(DataType::Text),
            4 => Ok(DataType::Bool),
            5 => Ok(DataType::IntArray),
            t => Err(Error::Internal(format!(
                "catalog snapshot: unknown dtype tag {t}"
            ))),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int64(self.u64()? as i64)),
            2 => Ok(Value::Float64(f64::from_bits(self.u64()?))),
            3 => Ok(Value::Text(self.str()?)),
            4 => Ok(Value::Bool(self.u8()? != 0)),
            5 => {
                let n = self.u32()? as usize;
                let mut a = Vec::with_capacity(n.min(self.buf.len() / 8 + 1));
                for _ in 0..n {
                    a.push(self.u64()? as i64);
                }
                Ok(Value::IntArray(a))
            }
            t => Err(Error::Internal(format!(
                "catalog snapshot: unknown value tag {t}"
            ))),
        }
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        let mut row = Vec::with_capacity(n.min(self.buf.len() + 1));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn cvd(&mut self) -> Result<Cvd> {
        let name = self.str()?;
        let ncols = self.u32()? as usize;
        let mut cols = Vec::with_capacity(ncols.min(self.buf.len() + 1));
        for _ in 0..ncols {
            let cname = self.str()?;
            let dtype = self.dtype()?;
            let nullable = self.u8()? != 0;
            cols.push(if nullable {
                Column::nullable(cname, dtype)
            } else {
                Column::new(cname, dtype)
            });
        }
        let schema = Schema::new(cols);
        let npk = self.u32()? as usize;
        let mut pk_names = Vec::with_capacity(npk.min(self.buf.len() + 1));
        for _ in 0..npk {
            pk_names.push(self.str()?);
        }
        let nattrs = self.u32()? as usize;
        let mut attributes = Vec::with_capacity(nattrs.min(self.buf.len() + 1));
        for _ in 0..nattrs {
            attributes.push(Attribute {
                id: self.u32()?,
                name: self.str()?,
                dtype: self.dtype()?,
            });
        }
        let nrec = self.u32()? as usize;
        let mut records = Vec::with_capacity(nrec.min(self.buf.len() + 1));
        for _ in 0..nrec {
            records.push(self.row()?);
        }
        let nvr = self.u32()? as usize;
        let mut version_records = Vec::with_capacity(nvr.min(self.buf.len() + 1));
        for _ in 0..nvr {
            let n = self.u32()? as usize;
            let mut rids = Vec::with_capacity(n.min(self.buf.len() + 1));
            for _ in 0..n {
                rids.push(Rid(self.u64()?));
            }
            version_records.push(rids);
        }
        let nmeta = self.u32()? as usize;
        let mut metas = Vec::with_capacity(nmeta.min(self.buf.len() + 1));
        for _ in 0..nmeta {
            let vid = Vid(self.u32()?);
            let nparents = self.u32()? as usize;
            let mut parents = Vec::with_capacity(nparents.min(self.buf.len() + 1));
            for _ in 0..nparents {
                parents.push(Vid(self.u32()?));
            }
            let checkout_t = self.u64()?;
            let commit_t = self.u64()?;
            let message = self.str()?;
            let author = self.str()?;
            let na = self.u32()? as usize;
            let mut attrs = Vec::with_capacity(na.min(self.buf.len() + 1));
            for _ in 0..na {
                attrs.push(self.u32()?);
            }
            metas.push(VersionMeta {
                vid,
                parents,
                checkout_t,
                commit_t,
                message,
                author,
                attributes: attrs,
            });
        }
        let clock = self.u64()?;
        Cvd::from_parts(
            name,
            schema,
            pk_names,
            records,
            version_records,
            metas,
            attributes,
            clock,
        )
    }
}

fn decode(bytes: &[u8]) -> Result<CatalogSnapshot> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(Error::Internal(
            "catalog snapshot: bad magic (not a catalog.orc file)".into(),
        ));
    }
    let nusers = r.u32()? as usize;
    let mut users = Vec::with_capacity(nusers.min(bytes.len() + 1));
    for _ in 0..nusers {
        users.push(r.str()?);
    }
    let clock = r.u64()?;
    let ncvds = r.u32()? as usize;
    let mut cvds = Vec::with_capacity(ncvds.min(bytes.len() + 1));
    for _ in 0..ncvds {
        cvds.push(r.cvd()?);
    }
    if r.pos != bytes.len() {
        return Err(Error::Internal(format!(
            "catalog snapshot: {} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(CatalogSnapshot { users, clock, cvds })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cvd() -> Cvd {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::nullable("note", DataType::Text),
        ]);
        let (mut cvd, v0) = Cvd::init(
            "sample",
            schema,
            vec!["k".into()],
            vec![
                vec![Value::Int64(1), Value::Text("a".into())],
                vec![Value::Int64(2), Value::Null],
            ],
            "alice",
        )
        .unwrap();
        cvd.commit(
            &[v0],
            vec![
                vec![Value::Int64(1), Value::Text("a".into())],
                vec![
                    Value::Int64(3),
                    Value::Bool(true)
                        .widen(DataType::Text)
                        .unwrap_or(Value::Null),
                ],
            ],
            "second",
            "bob",
        )
        .unwrap();
        cvd
    }

    #[test]
    fn snapshot_roundtrips_bit_for_bit() {
        let cvd = sample_cvd();
        let users = vec!["alice".to_owned(), "bob".to_owned()];
        let bytes = encode(&users, 42, &[&cvd]);
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.users, users);
        assert_eq!(snap.clock, 42);
        assert_eq!(snap.cvds.len(), 1);
        let back = &snap.cvds[0];
        assert_eq!(back.name(), cvd.name());
        assert_eq!(back.schema(), cvd.schema());
        assert_eq!(back.pk_names(), cvd.pk_names());
        assert_eq!(back.attributes(), cvd.attributes());
        assert_eq!(back.metas(), cvd.metas());
        assert_eq!(back.records_raw(), cvd.records_raw());
        assert_eq!(back.version_records_raw(), cvd.version_records_raw());
        assert_eq!(back.clock_raw(), cvd.clock_raw());
        // The rebuilt version graph carries the same sizes and edges.
        assert_eq!(back.graph().num_versions(), cvd.graph().num_versions());
        for v in cvd.graph().versions() {
            assert_eq!(back.graph().parents(v), cvd.graph().parents(v));
        }
        // Re-encoding the decoded catalog is byte-identical.
        assert_eq!(encode(&snap.users, snap.clock, &[back]), bytes);
    }

    #[test]
    fn corrupt_snapshots_fail_with_typed_errors() {
        let cvd = sample_cvd();
        let bytes = encode(&[], 0, &[&cvd]);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        assert!(decode(b"not a snapshot at all").is_err(), "bad magic");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn write_and_read_are_atomic_per_directory() {
        let dir = std::env::temp_dir().join(format!("orpheus-cat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_snapshot(&dir).unwrap().is_none(), "fresh dir");
        let cvd = sample_cvd();
        write_snapshot(&dir, &["alice".to_owned()], 7, &[&cvd]).unwrap();
        let snap = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.users, ["alice"]);
        assert_eq!(snap.cvds[0].num_records(), cvd.num_records());
        assert!(
            !dir.join("catalog.orc.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
