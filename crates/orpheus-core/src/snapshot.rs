//! Snapshot-isolated reads for multi-session servers.
//!
//! Records in a CVD are immutable and versions only ever grow, so a
//! *snapshot* — a pinned copy of a CVD's records, per-version record
//! lists, and schema — stays valid forever: later commits add versions
//! the snapshot simply does not know about. A server session pins a
//! [`Snapshot`] once and evaluates versioned SQL against it on its own
//! thread, entirely outside the engine thread: readers are lock-free and
//! never block (or are blocked by) writers.
//!
//! The evaluator reuses the *same relational operators* the engine uses
//! ([`relstore::Filter`], [`relstore::HashJoin`], [`relstore::Unnest`],
//! [`relstore::HashAggregate`]) over in-memory [`relstore::Values`]
//! nodes, feeding them rows in exactly the order the engine's physical
//! data tables would produce (ascending rid = data-table insertion
//! order). Output is therefore byte-identical to
//! [`OrpheusDb::run`](crate::OrpheusDb::run) on the same version set —
//! pinned by the parity tests below.

use crate::cvd::Cvd;
use crate::error::{Error, Result};
use crate::query::{parse_query, predicate_expr_for, shift_columns, QueryResult, VQuery};
use partition::Vid;
use relstore::{
    collect, Column, DataType, ExecContext, Executor, Filter, HashAggregate, HashJoin, Limit, Row,
    Schema, Unnest, Value, Values,
};
use std::collections::HashSet;

/// An immutable, `Send + Sync` view of one CVD at pin time.
#[derive(Debug, Clone)]
pub struct Snapshot {
    name: String,
    /// The CVD's attribute schema (without `rid`).
    attrs: Schema,
    /// The `[rid, attrs…]` star schema of the physical data table.
    star: Schema,
    /// Star rows indexed by rid — the data table's insertion order.
    rows: Vec<Row>,
    /// Per-version record ids, in stored (commit) order.
    version_rids: Vec<Vec<u64>>,
}

impl Snapshot {
    /// Pin `cvd` as of now.
    pub(crate) fn of(cvd: &Cvd) -> Snapshot {
        let star = crate::models::data_schema(cvd);
        let width = star.len();
        let rows = (0..cvd.num_records())
            .map(|rid| {
                let mut row = crate::models::data_row(cvd, partition::Rid(rid as u64));
                // Records committed before a schema evolution may be
                // narrower than the union schema; pad like the engine's
                // migrated tables do.
                row.resize(width, Value::Null);
                row
            })
            .collect();
        let version_rids = (0..cvd.num_versions())
            .map(|v| {
                cvd.version_records(Vid(v as u32))
                    .map(|rids| rids.iter().map(|r| r.0).collect())
                    .unwrap_or_default()
            })
            .collect();
        Snapshot {
            name: cvd.name().to_owned(),
            attrs: cvd.schema().clone(),
            star,
            rows,
            version_rids,
        }
    }

    /// Name of the CVD this snapshot pins.
    pub fn cvd(&self) -> &str {
        &self.name
    }

    /// Number of versions visible in this snapshot.
    pub fn num_versions(&self) -> usize {
        self.version_rids.len()
    }

    /// Latest version visible in this snapshot.
    pub fn latest_version(&self) -> Vid {
        Vid(self.version_rids.len().saturating_sub(1) as u32)
    }

    fn rids(&self, v: Vid) -> Result<&[u64]> {
        self.version_rids
            .get(v.idx())
            .map(Vec::as_slice)
            .ok_or(Error::VersionNotFound(v.0))
    }

    /// Star rows of the record set `set`, in data-table (ascending rid)
    /// order — the order every engine retrieval pipeline emits.
    fn fetch(&self, set: &HashSet<u64>) -> Vec<Row> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(rid, _)| set.contains(&(*rid as u64)))
            .map(|(_, row)| row.clone())
            .collect()
    }

    fn union_rids(&self, versions: &[Vid]) -> Result<HashSet<u64>> {
        let mut set = HashSet::new();
        for &v in versions {
            set.extend(self.rids(v)?.iter().copied());
        }
        Ok(set)
    }

    /// Evaluate a versioned SQL string against this snapshot. Supports
    /// the full `run` surface; the CVD named in the query must be the
    /// pinned one.
    pub fn run(&self, sql: &str) -> Result<QueryResult> {
        let parsed = parse_query(sql)?;
        let mut ctx = ExecContext::new();
        match parsed {
            VQuery::SelectVersions {
                cvd,
                versions,
                predicate,
                limit,
            } => {
                self.check_name(&cvd)?;
                let rows = self.fetch(&self.union_rids(&versions)?);
                let mut plan: Box<dyn Executor> = Box::new(Values::new(self.star.clone(), rows));
                if let Some(pred) = &predicate {
                    plan = Box::new(Filter::new(plan, predicate_expr_for(&self.attrs, pred)?));
                }
                if let Some(n) = limit {
                    plan = Box::new(Limit::new(plan, n));
                }
                let rows = collect(plan.as_mut(), &mut ctx)?;
                Ok(QueryResult {
                    schema: self.star.clone(),
                    rows,
                })
            }
            VQuery::AggregateByVersion {
                cvd,
                agg,
                agg_col,
                predicate,
            } => {
                self.check_name(&cvd)?;
                // Mirror the engine plan: Unnest(vtab) ⋈ data, then
                // aggregate grouped by vid over the [vid, rid, rid,
                // attrs…] join schema.
                let vtab_schema = Schema::new(vec![
                    Column::new("vid", DataType::Int64),
                    Column::new("rlist", DataType::IntArray),
                ]);
                let vtab_rows: Vec<Row> = self
                    .version_rids
                    .iter()
                    .enumerate()
                    .map(|(v, rids)| {
                        vec![
                            Value::Int64(v as i64),
                            Value::IntArray(rids.iter().map(|&r| r as i64).collect()),
                        ]
                    })
                    .collect();
                let scan = Box::new(Values::new(vtab_schema, vtab_rows));
                let unnest = Box::new(Unnest::new(scan, 1).map_err(Error::Storage)?);
                let probe = Box::new(Values::new(self.star.clone(), self.rows.clone()));
                let join = Box::new(HashJoin::new(unnest, probe, 1, 0));
                let mut plan: Box<dyn Executor> = join;
                if let Some(pred) = &predicate {
                    let expr = predicate_expr_for(&self.attrs, pred)?;
                    plan = Box::new(Filter::new(plan, shift_columns(&expr, 2)));
                }
                let agg_idx = 2 + self.star.index_of(&agg_col).map_err(Error::Storage)?;
                let mut aggregate = HashAggregate::new(plan, vec![0], vec![(agg, agg_idx)]);
                let schema = aggregate.schema().clone();
                let rows = aggregate.collect(&mut ctx)?;
                Ok(QueryResult { schema, rows })
            }
            VQuery::Diff { cvd, a, b } => {
                self.check_name(&cvd)?;
                let in_b: HashSet<u64> = self.rids(b)?.iter().copied().collect();
                let only_a: HashSet<u64> = self
                    .rids(a)?
                    .iter()
                    .copied()
                    .filter(|r| !in_b.contains(r))
                    .collect();
                Ok(QueryResult {
                    schema: self.star.clone(),
                    rows: self.fetch(&only_a),
                })
            }
            VQuery::Intersect { cvd, versions } => {
                self.check_name(&cvd)?;
                let mut iter = versions.iter();
                let mut set: HashSet<u64> = match iter.next() {
                    Some(&v) => self.rids(v)?.iter().copied().collect(),
                    None => HashSet::new(),
                };
                for &v in iter {
                    let other: HashSet<u64> = self.rids(v)?.iter().copied().collect();
                    set.retain(|r| other.contains(r));
                }
                Ok(QueryResult {
                    schema: self.star.clone(),
                    rows: self.fetch(&set),
                })
            }
            VQuery::JoinVersions {
                cvd,
                left,
                right,
                on,
            } => {
                self.check_name(&cvd)?;
                let col = 1 + self.attrs.index_of(&on).map_err(Error::Storage)?;
                let lhs: HashSet<u64> = self.rids(left)?.iter().copied().collect();
                let rhs: HashSet<u64> = self.rids(right)?.iter().copied().collect();
                let schema = self.star.join(&self.star);
                let lhs = Box::new(Values::new(self.star.clone(), self.fetch(&lhs)));
                let rhs = Box::new(Values::new(self.star.clone(), self.fetch(&rhs)));
                let mut join = HashJoin::new(lhs, rhs, col, col);
                let rows = join.collect(&mut ctx)?;
                Ok(QueryResult { schema, rows })
            }
        }
    }

    fn check_name(&self, cvd: &str) -> Result<()> {
        if cvd == self.name {
            Ok(())
        } else {
            Err(Error::CvdNotFound(format!(
                "{cvd} (this session pins {})",
                self.name
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::OrpheusDb;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_is_send_and_sync() {
        assert_send_sync::<Snapshot>();
    }

    /// A CVD with three versions, modified rows, a schema-identical merge
    /// commit, and both text and numeric attributes.
    fn setup() -> OrpheusDb {
        let mut odb = OrpheusDb::new();
        odb.create_user("alice").unwrap();
        odb.login("alice").unwrap();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Int64),
        ]);
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Text(format!("r{i}")),
                    Value::Int64(i * 7 % 13),
                ]
            })
            .collect();
        odb.init_cvd("T", schema, vec!["k".into()], rows).unwrap();
        // v1: bump some scores.
        odb.execute("checkout T -v 0 -t w1").unwrap();
        odb.execute("insert w1 100,extra,42").unwrap();
        odb.execute("commit -t w1 -m v1").unwrap();
        // v2: branch from v0 with a different new row.
        odb.execute("checkout T -v 0 -t w2").unwrap();
        odb.execute("insert w2 200,other,7").unwrap();
        odb.execute("commit -t w2 -m v2").unwrap();
        // v3: merge of v1 and v2.
        odb.execute("checkout T -v 1 2 -t w3").unwrap();
        odb.execute("commit -t w3 -m merge").unwrap();
        odb
    }

    fn parity(odb: &OrpheusDb, sql: &str) {
        let snap = odb.snapshot("T").unwrap();
        let engine = odb.run(sql).unwrap();
        let snapshot = snap.run(sql).unwrap();
        assert_eq!(engine.schema, snapshot.schema, "schema parity: {sql}");
        assert_eq!(engine.rows, snapshot.rows, "row parity: {sql}");
    }

    #[test]
    fn select_versions_parity() {
        let odb = setup();
        parity(&odb, "SELECT * FROM VERSION 0 OF CVD T");
        parity(&odb, "SELECT * FROM VERSION 1, 2 OF CVD T");
        parity(&odb, "SELECT * FROM VERSION 3 OF CVD T WHERE score > 5");
        parity(
            &odb,
            "SELECT * FROM VERSION 0, 3 OF CVD T WHERE name = 'r3'",
        );
        parity(&odb, "SELECT * FROM VERSION 1, 2, 3 OF CVD T LIMIT 7");
    }

    #[test]
    fn aggregate_parity() {
        let odb = setup();
        parity(&odb, "SELECT vid, count(*) FROM CVD T GROUP BY vid");
        parity(&odb, "SELECT vid, sum(score) FROM CVD T GROUP BY vid");
        parity(&odb, "SELECT vid, avg(score) FROM CVD T GROUP BY vid");
        parity(&odb, "SELECT vid, min(k) FROM CVD T GROUP BY vid");
        parity(
            &odb,
            "SELECT vid, max(score) FROM CVD T WHERE k > 4 GROUP BY vid",
        );
    }

    #[test]
    fn diff_intersect_join_parity() {
        let odb = setup();
        parity(&odb, "SELECT * FROM V_DIFF(1, 2) OF CVD T");
        parity(&odb, "SELECT * FROM V_DIFF(2, 1) OF CVD T");
        parity(&odb, "SELECT * FROM V_DIFF(3, 0) OF CVD T");
        parity(&odb, "SELECT * FROM V_INTERSECT(1, 2) OF CVD T");
        parity(&odb, "SELECT * FROM V_INTERSECT(0, 1, 2, 3) OF CVD T");
        parity(&odb, "SELECT * FROM VERSION 1 OF CVD T JOIN VERSION 2 ON k");
        parity(
            &odb,
            "SELECT * FROM VERSION 0 OF CVD T JOIN VERSION 3 ON score",
        );
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let mut odb = setup();
        let snap = odb.snapshot("T").unwrap();
        assert_eq!(snap.num_versions(), 4);
        assert_eq!(snap.latest_version(), Vid(3));
        odb.execute("checkout T -v 3 -t w4").unwrap();
        odb.execute("insert w4 300,late,1").unwrap();
        odb.execute("commit -t w4 -m v4").unwrap();
        // The pinned snapshot does not see v4…
        assert!(snap.run("SELECT * FROM VERSION 4 OF CVD T").is_err());
        assert_eq!(snap.num_versions(), 4);
        // …but a fresh pin does.
        let fresh = odb.snapshot("T").unwrap();
        assert_eq!(fresh.num_versions(), 5);
        let rows = fresh
            .run("SELECT * FROM VERSION 4 OF CVD T WHERE k = 300")
            .unwrap();
        assert_eq!(rows.rows.len(), 1);
    }

    #[test]
    fn snapshot_rejects_other_cvds() {
        let odb = setup();
        let snap = odb.snapshot("T").unwrap();
        assert!(matches!(
            snap.run("SELECT * FROM VERSION 0 OF CVD Other"),
            Err(Error::CvdNotFound(_))
        ));
    }
}
