//! Partition-optimized split-by-rlist storage (Chapter 5).
//!
//! The data table is broken into per-partition tables so a checkout only
//! scans the partition containing its version. Each version lives in
//! exactly one partition; records shared across partitions are duplicated
//! (§5.1). Partitionings come from `partition::lyresplit` (or the
//! baselines); [`PartitionedStore::build`] materializes one.

use crate::cvd::Cvd;
use crate::error::{Error, Result};
use crate::models::{data_row, data_schema};
use partition::{Partitioning, Rid, Vid};
use relstore::{
    Column, DataType, Database, ExecContext, IndexKind, Row, Schema, Value, WorkerPool,
};

/// A partitioned physical representation of a CVD.
#[derive(Debug, Clone)]
pub struct PartitionedStore {
    cvd_name: String,
    partitioning: Partitioning,
}

impl PartitionedStore {
    pub fn partition_table(&self, pid: usize) -> String {
        format!("{}__part{}_data", self.cvd_name, pid)
    }

    pub fn vtab_name(&self) -> String {
        format!("{}__part_vtab", self.cvd_name)
    }

    pub fn table_prefix(&self) -> String {
        format!("{}__part", self.cvd_name)
    }

    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Materialize the given partitioning: one clustered data table per
    /// partition plus a `[vid, pid, rlist]` versioning table.
    pub fn build(db: &mut Database, cvd: &Cvd, partitioning: Partitioning) -> Result<Self> {
        assert_eq!(partitioning.num_versions(), cvd.num_versions());
        let store = PartitionedStore {
            cvd_name: cvd.name().to_owned(),
            partitioning,
        };
        store.drop_tables(db);
        let bipartite = cvd.bipartite();
        for (pid, group) in store.partitioning.groups().iter().enumerate() {
            let table = db.create_table(store.partition_table(pid), data_schema(cvd))?;
            for rid in bipartite.union(group) {
                table.insert(data_row(cvd, rid))?;
            }
            table.cluster_on("rid")?;
            table.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        }
        let vtab = db.create_table(
            store.vtab_name(),
            Schema::new(vec![
                Column::new("vid", DataType::Int64),
                Column::new("pid", DataType::Int64),
                Column::new("rlist", DataType::IntArray),
            ]),
        )?;
        vtab.create_index("vid_pk", "vid", true, IndexKind::BTree)?;
        for v in cvd.graph().versions() {
            let rlist: Vec<i64> = cvd.version_records(v)?.iter().map(|r| r.0 as i64).collect();
            vtab.insert(vec![
                Value::Int64(v.0 as i64),
                Value::Int64(store.partitioning.partition_of(v) as i64),
                Value::IntArray(rlist),
            ])?;
        }
        Ok(store)
    }

    /// Remove this store's physical tables (used before a rebuild and by
    /// the migration engine).
    pub fn drop_tables(&self, db: &mut Database) {
        for name in db
            .tables_with_prefix(&self.table_prefix())
            .into_iter()
            .map(str::to_owned)
            .collect::<Vec<_>>()
        {
            // Best-effort cleanup: the table may already be gone.
            drop(db.drop_table(&name));
        }
    }

    /// Checkout: one versioning-tuple lookup, then a hash join against the
    /// version's partition only.
    pub fn checkout(&self, db: &Database, vid: Vid, ctx: &mut ExecContext) -> Result<Vec<Row>> {
        self.checkout_with_pool(db, vid, None, ctx)
    }

    /// [`checkout`](Self::checkout) with an optional morsel worker pool: a
    /// multi-threaded pool runs the partition hash join morsel-parallel,
    /// any other value keeps the sequential plan. Rows are identical.
    pub fn checkout_with_pool(
        &self,
        db: &Database,
        vid: Vid,
        pool: Option<&WorkerPool>,
        ctx: &mut ExecContext,
    ) -> Result<Vec<Row>> {
        let vtab = db.table(&self.vtab_name())?;
        let ids = vtab.index_lookup("vid_pk", vid.0 as i64, &mut ctx.tracker)?;
        let rows = vtab.fetch(&ids, Some(0), &mut ctx.tracker, &ctx.model);
        let row = rows.first().ok_or(Error::VersionNotFound(vid.0))?;
        let pid = row[1]
            .as_i64()
            .ok_or_else(|| Error::Internal("partition id column is not an integer".into()))?
            as usize;
        let rlist: Vec<i64> = row[2].as_int_array().unwrap_or(&[]).to_vec();
        ctx.tracker.ops(rlist.len() as u64);
        let data = db.table(&self.partition_table(pid))?;
        crate::query::rid_join_rows(data, rlist, pool, ctx)
    }

    /// Records stored across all partitions (the storage cost `S`).
    pub fn storage_records(&self, db: &Database) -> u64 {
        (0..self.partitioning.num_partitions())
            .filter_map(|pid| db.table(&self.partition_table(pid)).ok())
            .map(|t| t.live_row_count() as u64)
            .sum()
    }

    pub fn storage_bytes(&self, db: &Database) -> usize {
        db.storage_bytes_with_prefix(&self.table_prefix())
    }

    /// Append a freshly committed version to an existing partition (online
    /// maintenance, §5.4): inserts the version's missing records into that
    /// partition's table and registers the versioning tuple. The membership
    /// probes charge into the caller's `tracker` so maintenance I/O shows
    /// up in cumulative cost accounting instead of vanishing.
    pub fn append_version(
        &mut self,
        db: &mut Database,
        cvd: &Cvd,
        vid: Vid,
        pid: usize,
        new_partition: bool,
        tracker: &mut relstore::CostTracker,
    ) -> Result<()> {
        assert_eq!(vid.idx(), self.partitioning.num_versions());
        if new_partition {
            assert_eq!(pid, self.partitioning.num_partitions());
            let table = db.create_table(self.partition_table(pid), data_schema(cvd))?;
            for &rid in cvd.version_records(vid)? {
                table.insert(data_row(cvd, rid))?;
            }
            table.cluster_on("rid")?;
            table.create_index("rid_pk", "rid", true, IndexKind::BTree)?;
        } else {
            let table = db.table_mut(&self.partition_table(pid))?;
            for &rid in cvd.version_records(vid)? {
                if table
                    .index_lookup("rid_pk", rid.0 as i64, tracker)?
                    .is_empty()
                {
                    table.insert(data_row(cvd, rid))?;
                }
            }
        }
        let mut assignment = self.partitioning.assignment().to_vec();
        assignment.push(pid);
        self.partitioning = Partitioning::from_assignment(assignment);
        let vtab = db.table_mut(&self.vtab_name())?;
        let rlist: Vec<i64> = cvd
            .version_records(vid)?
            .iter()
            .map(|r| r.0 as i64)
            .collect();
        vtab.insert(vec![
            Value::Int64(vid.0 as i64),
            Value::Int64(pid as i64),
            Value::IntArray(rlist),
        ])?;
        Ok(())
    }

    /// Migrate to a new partitioning by rebuilding (the physical analogue
    /// of the migration engine; cost accounting for intelligent-vs-naive
    /// migration lives in [`partition::online`]).
    pub fn migrate(
        self,
        db: &mut Database,
        cvd: &Cvd,
        target: Partitioning,
    ) -> Result<PartitionedStore> {
        self.drop_tables(db);
        PartitionedStore::build(db, cvd, target)
    }

    /// Rid set of one partition (for tests and experiments).
    pub fn partition_records(&self, db: &Database, pid: usize) -> Result<Vec<Rid>> {
        let table = db.table(&self.partition_table(pid))?;
        let mut out: Vec<Rid> = table
            .iter()
            .map(|(_, r)| {
                r[0].as_i64()
                    .map(|v| Rid(v as u64))
                    .ok_or_else(|| Error::Internal("rid column is not an integer".into()))
            })
            .collect::<Result<_>>()?;
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::fig32_cvd;
    use partition::lyresplit_for_budget;

    #[test]
    fn build_and_checkout_all_versions() {
        let (cvd, vids) = fig32_cvd();
        let mut db = Database::new();
        // Two partitions: {v0, v1} and {v2, v3}.
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1]);
        let store = PartitionedStore::build(&mut db, &cvd, p).unwrap();
        for &v in &vids {
            let mut ctx = ExecContext::new();
            let mut got = store.checkout(&db, v, &mut ctx).unwrap();
            got.sort_by_key(|r| r[0].as_i64().unwrap());
            let want: Vec<i64> = cvd
                .version_records(v)
                .unwrap()
                .iter()
                .map(|r| r.0 as i64)
                .collect();
            let got_rids: Vec<i64> = got.iter().map(|r| r[0].as_i64().unwrap()).collect();
            assert_eq!(got_rids, want);
        }
    }

    #[test]
    fn checkout_touches_only_own_partition() {
        let (cvd, vids) = fig32_cvd();
        let mut db = Database::new();
        let single = PartitionedStore::build(&mut db, &cvd, Partitioning::single(4)).unwrap();
        let mut ctx_single = ExecContext::new();
        single.checkout(&db, vids[0], &mut ctx_single).unwrap();

        let mut db2 = Database::new();
        let split = PartitionedStore::build(&mut db2, &cvd, Partitioning::singletons(4)).unwrap();
        let mut ctx_split = ExecContext::new();
        split.checkout(&db2, vids[0], &mut ctx_split).unwrap();
        // Fully split: the v0 checkout scans 3 records instead of all 5.
        assert!(ctx_split.tracker.tuples < ctx_single.tracker.tuples);
    }

    #[test]
    fn storage_matches_partitioning_evaluation() {
        let (cvd, _) = fig32_cvd();
        let mut db = Database::new();
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1]);
        let expected = p.evaluate(&cvd.bipartite()).storage_records;
        let store = PartitionedStore::build(&mut db, &cvd, p).unwrap();
        assert_eq!(store.storage_records(&db), expected);
    }

    #[test]
    fn append_and_migrate() {
        let (mut cvd, vids) = fig32_cvd();
        let mut db = Database::new();
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1]);
        let mut store = PartitionedStore::build(&mut db, &cvd, p).unwrap();
        // Commit a new version derived from v3 and append it online.
        let rows: Vec<Row> = cvd
            .checkout_rows(&[vids[3]])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let res = cvd.commit(&[vids[3]], rows, "same", "eve").unwrap();
        let mut tracker = relstore::CostTracker::new();
        store
            .append_version(&mut db, &cvd, res.vid, 1, false, &mut tracker)
            .unwrap();
        assert!(
            tracker.index_tuples > 0,
            "membership probes must charge the caller's tracker"
        );
        let mut ctx = ExecContext::new();
        assert_eq!(store.checkout(&db, res.vid, &mut ctx).unwrap().len(), 4);

        // Migrate to a LyreSplit partitioning.
        let tree = cvd.tree();
        let target = lyresplit_for_budget(&tree, cvd.num_records() as u64 * 2).partitioning;
        let store = store.migrate(&mut db, &cvd, target).unwrap();
        let mut ctx = ExecContext::new();
        assert_eq!(store.checkout(&db, vids[0], &mut ctx).unwrap().len(), 3);
    }
}
