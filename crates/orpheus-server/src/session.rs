//! Per-connection session handling.
//!
//! A session is one TCP connection, served start-to-finish by one worker
//! thread from the server's session pool. The lifecycle is:
//!
//! 1. **Startup** — the first frame must be `Startup{user}`; the server
//!    answers `StartupOk{session_id}` (or a `PROTOCOL` error and closes).
//! 2. **Query loop** — each `Query` frame gets `[RowDescription DataRow*]
//!    (CommandComplete | Error)` followed by `Ready`. Errors do not kill
//!    the session.
//! 3. **Terminate** — an `X` frame (or EOF) ends the session.
//!
//! Routing inside the query loop is what makes readers lock-free:
//!
//! * `pin <cvd>` asks the engine for an immutable [`Snapshot`] and caches
//!   it in the session. From then on `run SELECT … OF CVD <cvd>` is
//!   evaluated *on the session thread* against the snapshot — no engine
//!   round-trip, no lock, and repeatable reads until `unpin`/re-`pin`.
//! * `commit …` goes through the engine's bounded admission queue and
//!   the group-commit path.
//! * everything else is forwarded to the engine thread verbatim.

use crate::engine::{EngineError, EngineHandle};
use crate::protocol::{self, code, ClientMsg, ProtoError, ServerMsg};
use orpheus_core::query::QueryResult;
use orpheus_core::{CommandOutput, Snapshot};
use relstore::Value;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How often a blocked session read wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Render one command output as its wire messages. Shared by the live
/// server and by serial-replay harnesses that byte-compare transcripts.
/// Trace-agnostic: the query loop stamps the request's trace id onto the
/// final `CommandComplete` (see [`stamp_trace`]), so replay transcripts
/// stay byte-identical.
pub fn output_messages(out: &CommandOutput) -> Vec<ServerMsg> {
    match out {
        CommandOutput::Table(t) => table_messages(t),
        CommandOutput::Version(v) => vec![ServerMsg::CommandComplete {
            tag: format!("COMMIT {v}"),
            trace: None,
        }],
        CommandOutput::Message(m) => vec![ServerMsg::CommandComplete {
            tag: m.clone(),
            trace: None,
        }],
        CommandOutput::Listing(items) => {
            let mut msgs = vec![ServerMsg::RowDescription {
                columns: vec!["name".into()],
            }];
            for item in items {
                msgs.push(ServerMsg::DataRow {
                    fields: vec![Some(item.clone())],
                });
            }
            msgs.push(ServerMsg::CommandComplete {
                tag: format!("LIST {}", items.len()),
                trace: None,
            });
            msgs
        }
        CommandOutput::Csv(text) => {
            let mut msgs = vec![ServerMsg::RowDescription {
                columns: vec!["csv".into()],
            }];
            msgs.push(ServerMsg::DataRow {
                fields: vec![Some(text.clone())],
            });
            msgs.push(ServerMsg::CommandComplete {
                tag: "CSV".into(),
                trace: None,
            });
            msgs
        }
    }
}

fn table_messages(t: &QueryResult) -> Vec<ServerMsg> {
    let mut msgs = vec![ServerMsg::RowDescription {
        columns: t.schema.columns().iter().map(|c| c.name.clone()).collect(),
    }];
    for row in &t.rows {
        msgs.push(ServerMsg::DataRow {
            fields: row.iter().map(render_value).collect(),
        });
    }
    msgs.push(ServerMsg::CommandComplete {
        tag: format!("SELECT {}", t.rows.len()),
        trace: None,
    });
    msgs
}

/// Echo the request's trace id on every `CommandComplete` so the client
/// can correlate its reply with a server-side `trace dump`.
fn stamp_trace(msgs: &mut [ServerMsg], trace: u64) {
    for msg in msgs.iter_mut() {
        if let ServerMsg::CommandComplete { trace: t, .. } = msg {
            *t = Some(trace);
        }
    }
}

fn render_value(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        other => Some(other.to_string()),
    }
}

/// Shared per-server session bookkeeping (active-session gauge).
pub(crate) struct SessionCounters {
    pub active: AtomicUsize,
}

/// Serve one connection to completion. Returns `Ok` for every orderly
/// close (terminate, EOF, server shutdown) and `Err` only for transport
/// faults worth logging.
pub(crate) fn serve_session(
    mut stream: TcpStream,
    session_id: u64,
    engine: &EngineHandle,
    counters: &SessionCounters,
    shutdown: &AtomicBool,
) -> Result<(), ProtoError> {
    drop(stream.set_nodelay(true));
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let registry = engine.registry().clone();

    // Startup handshake.
    let user = loop {
        match protocol::read_client(&mut stream) {
            Ok(ClientMsg::Startup { user }) => break user,
            Ok(_) => {
                protocol::write_server(
                    &mut stream,
                    &ServerMsg::Error {
                        code: code::PROTOCOL.into(),
                        message: "expected a startup frame".into(),
                    },
                )?;
                return Ok(());
            }
            Err(ProtoError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    };
    protocol::write_server(&mut stream, &ServerMsg::StartupOk { session_id })?;
    registry.counter_add("orpheus.server.sessions_total", 1);
    let active = counters.active.fetch_add(1, Ordering::SeqCst) + 1;
    registry.gauge_set("orpheus.server.active_sessions", active as f64);

    let result = query_loop(&mut stream, session_id, &user, engine, shutdown);

    let active = counters.active.fetch_sub(1, Ordering::SeqCst) - 1;
    registry.gauge_set("orpheus.server.active_sessions", active as f64);
    result
}

fn query_loop(
    stream: &mut TcpStream,
    session_id: u64,
    user: &str,
    engine: &EngineHandle,
    shutdown: &AtomicBool,
) -> Result<(), ProtoError> {
    let registry = engine.registry().clone();
    let mut pinned: HashMap<String, Snapshot> = HashMap::new();
    loop {
        let (line, wire_trace) = match protocol::read_client(stream) {
            Ok(ClientMsg::Query { line, trace }) => (line, trace),
            Ok(ClientMsg::Terminate) => return Ok(()),
            Ok(ClientMsg::Startup { .. }) => {
                write_all(
                    stream,
                    &[
                        ServerMsg::Error {
                            code: code::PROTOCOL.into(),
                            message: "session already started".into(),
                        },
                        ServerMsg::Ready,
                    ],
                )?;
                continue;
            }
            Err(ProtoError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        // Adopt the client's trace id, or mint one so every query is
        // traceable end to end even from trace-unaware clients.
        let trace = match wire_trace {
            Some(t) if t != 0 => t,
            _ => obs::mint_trace_id(),
        };
        let start = Instant::now();
        let msgs = match dispatch(&line, session_id, user, trace, engine, &mut pinned) {
            Ok(mut msgs) => {
                stamp_trace(&mut msgs, trace);
                msgs
            }
            Err(e) => vec![ServerMsg::Error {
                code: e.code.into(),
                message: e.message,
            }],
        };
        registry.counter_add("orpheus.server.queries_total", 1);
        registry.observe_duration("orpheus.server.query.latency_us", start.elapsed());
        write_all(stream, &msgs)?;
        protocol::write_server(stream, &ServerMsg::Ready)?;
    }
}

fn write_all(stream: &mut TcpStream, msgs: &[ServerMsg]) -> Result<(), ProtoError> {
    for msg in msgs {
        protocol::write_server(stream, msg)?;
    }
    stream.flush()?;
    Ok(())
}

/// Route one query line: snapshot commands stay on this thread, commits
/// take the admission queue, everything else goes to the engine. `trace`
/// is the request's trace id (already adopted or minted, never 0); it
/// rides along to the engine so remote spans re-attach to this request.
fn dispatch(
    line: &str,
    session_id: u64,
    user: &str,
    trace: u64,
    engine: &EngineHandle,
    pinned: &mut HashMap<String, Snapshot>,
) -> Result<Vec<ServerMsg>, EngineError> {
    let trimmed = line.trim();
    let mut words = trimmed.split_whitespace();
    let cmd = words.next().unwrap_or("");
    match cmd {
        "pin" => {
            let cvd = words.next().ok_or_else(|| EngineError {
                code: code::PARSE,
                message: "usage: pin <cvd>".into(),
            })?;
            let snap = engine.snapshot(cvd)?;
            let tag = format!(
                "PIN {cvd}@{} ({} versions)",
                snap.latest_version(),
                snap.num_versions()
            );
            pinned.insert(cvd.to_owned(), snap);
            Ok(vec![ServerMsg::CommandComplete { tag, trace: None }])
        }
        "unpin" => {
            let cvd = words.next().ok_or_else(|| EngineError {
                code: code::PARSE,
                message: "usage: unpin <cvd>".into(),
            })?;
            let tag = match pinned.remove(cvd) {
                Some(_) => format!("UNPIN {cvd}"),
                None => format!("UNPIN {cvd} (was not pinned)"),
            };
            Ok(vec![ServerMsg::CommandComplete { tag, trace: None }])
        }
        "sleep" => {
            // Test hook: stall the engine without holding this session.
            let millis = words
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or_else(|| EngineError {
                    code: code::PARSE,
                    message: "usage: sleep <millis>".into(),
                })?;
            engine.sleep(millis);
            Ok(vec![ServerMsg::CommandComplete {
                tag: format!("SLEEP {millis}"),
                trace: None,
            }])
        }
        "commit" => {
            let out = engine.submit_commit(session_id, user, trimmed, trace)?;
            Ok(output_messages(&out))
        }
        "run" => {
            let sql = trimmed.strip_prefix("run").unwrap_or("").trim();
            if let Some(snap) = snapshot_for(sql, pinned) {
                // Lock-free read on this session thread; journal it under
                // the request trace so snapshot reads show up in dumps.
                let _span = engine.recorder().enter_with(
                    "orpheus.server.snapshot_read",
                    obs::TraceCtx::from_wire(trace),
                );
                let table = snap.run(sql).map_err(|e| EngineError {
                    code: code::INTERNAL,
                    message: e.to_string(),
                })?;
                engine
                    .registry()
                    .counter_add("orpheus.server.snapshot_reads_total", 1);
                return Ok(table_messages(&table));
            }
            let out = engine.execute(session_id, user, trimmed, trace)?;
            Ok(output_messages(&out))
        }
        _ => {
            let out = engine.execute(session_id, user, trimmed, trace)?;
            Ok(output_messages(&out))
        }
    }
}

/// The pinned snapshot that can answer `sql` locally, if any. A parse
/// failure falls through to the engine so the error message is the
/// canonical one.
fn snapshot_for<'a>(sql: &str, pinned: &'a HashMap<String, Snapshot>) -> Option<&'a Snapshot> {
    use orpheus_core::query::VQuery;
    let cvd = match orpheus_core::query::parse_query(sql).ok()? {
        VQuery::SelectVersions { cvd, .. }
        | VQuery::AggregateByVersion { cvd, .. }
        | VQuery::Diff { cvd, .. }
        | VQuery::JoinVersions { cvd, .. }
        | VQuery::Intersect { cvd, .. } => cvd,
    };
    pinned.get(&cvd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_messages_cover_every_variant() {
        let msgs = output_messages(&CommandOutput::Message("hi".into()));
        assert_eq!(
            msgs,
            vec![ServerMsg::CommandComplete {
                tag: "hi".into(),
                trace: None
            }]
        );

        let msgs = output_messages(&CommandOutput::Version(partition::Vid(7)));
        assert_eq!(
            msgs,
            vec![ServerMsg::CommandComplete {
                tag: "COMMIT v7".into(),
                trace: None,
            }]
        );

        let msgs = output_messages(&CommandOutput::Listing(vec!["a".into(), "b".into()]));
        assert_eq!(msgs.len(), 4);
        assert_eq!(
            msgs[3],
            ServerMsg::CommandComplete {
                tag: "LIST 2".into(),
                trace: None,
            }
        );

        let msgs = output_messages(&CommandOutput::Csv("k,v\n1,2\n".into()));
        assert_eq!(msgs.len(), 3);

        let schema = relstore::Schema::new(vec![
            relstore::Column::nullable("k", relstore::DataType::Int64),
            relstore::Column::nullable("name", relstore::DataType::Text),
        ]);
        let table = QueryResult {
            schema,
            rows: vec![
                vec![Value::Int64(1), Value::Text("x".into())],
                vec![Value::Int64(2), Value::Null],
            ],
        };
        let msgs = output_messages(&CommandOutput::Table(table));
        assert_eq!(
            msgs[0],
            ServerMsg::RowDescription {
                columns: vec!["k".into(), "name".into()]
            }
        );
        assert_eq!(
            msgs[2],
            ServerMsg::DataRow {
                fields: vec![Some("2".into()), None]
            }
        );
        assert_eq!(
            msgs[3],
            ServerMsg::CommandComplete {
                tag: "SELECT 2".into(),
                trace: None,
            }
        );
    }
}
