//! pgwire-style wire protocol: length-prefixed frames carrying a
//! simple-query subset.
//!
//! Every message is one frame: a 1-byte tag, a big-endian `u32` payload
//! length, then the payload. (PostgreSQL counts the length field itself
//! in the length; we count only the payload — the one deliberate
//! divergence, noted here so the framing can never be misread.)
//!
//! Client tags: `U` startup, `Q` simple query, `X` terminate.
//! Server tags: `R` startup ok, `T` row description, `D` data row,
//! `C` command complete, `E` error response, `Z` ready for query.
//!
//! A query's response is a sequence `[T D* ] C|E` followed by `Z`; the
//! client reads until `Z` before sending the next query, exactly like
//! the PostgreSQL simple-query flow.

use std::io::{ErrorKind, Read, Write};

/// Upper bound on a single frame's payload; a length beyond this means a
/// corrupt or hostile stream, not a big result.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Field marker for SQL NULL in a `D` (data row) frame.
const NULL_FIELD: u32 = u32::MAX;

/// Errors of the wire layer.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the connection between frames (clean EOF).
    Closed,
    /// A read timeout expired between frames (only on sockets with a
    /// read timeout set; used by session workers to poll for shutdown).
    Timeout,
    /// Structurally invalid frame or payload.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "wire i/o error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Timeout => write!(f, "read timed out"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Messages a client sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Open a session as `user` (pgwire's startup packet, reduced to the
    /// one parameter the command layer needs).
    Startup { user: String },
    /// One command line / versioned SQL statement. `trace` is an
    /// optional client-chosen trace id: the server adopts it for the
    /// command's spans and echoes it in `CommandComplete`, letting a
    /// client stitch server-side journal events into its own trace. The
    /// field is appended to the payload only when present, so old
    /// encoders interoperate unchanged.
    Query { line: String, trace: Option<u64> },
    /// Graceful goodbye.
    Terminate,
}

/// Messages the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session accepted; `session_id` names the per-session span tree.
    StartupOk { session_id: u64 },
    /// Column names of the rows that follow.
    RowDescription { columns: Vec<String> },
    /// One result row; `None` is SQL NULL.
    DataRow { fields: Vec<Option<String>> },
    /// Statement finished; the tag summarizes it (`SELECT 4`, `COMMIT v7`).
    /// `trace` echoes the trace id the command ran under (the client's,
    /// when one was sent, else the server-minted one), appended to the
    /// payload only when present.
    CommandComplete { tag: String, trace: Option<u64> },
    /// Statement failed. `code` is a SQLSTATE-style 5-character class.
    Error { code: String, message: String },
    /// Server is ready for the next query.
    Ready,
}

/// Typed error codes the server emits (SQLSTATE-flavored).
pub mod code {
    /// Commit admission queue full — backpressure, retry later.
    pub const BACKPRESSURE: &str = "53300";
    /// Command or query failed to parse.
    pub const PARSE: &str = "42601";
    /// Referenced CVD / version / table does not exist.
    pub const NOT_FOUND: &str = "42P01";
    /// Staging-table ownership check failed.
    pub const PERMISSION: &str = "42501";
    /// Message violated the wire protocol (e.g. query before startup).
    pub const PROTOCOL: &str = "08P01";
    /// Anything else.
    pub const INTERNAL: &str = "XX000";
}

// ---------------------------------------------------------------------------
// Frame primitives
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(ProtoError::Malformed(format!(
            "outgoing frame of {} bytes exceeds MAX_FRAME",
            payload.len()
        )));
    }
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read exactly `buf.len()` bytes, retrying through timeouts: once a
/// frame has started, its remaining bytes are in flight (clients write
/// frames atomically), so a mid-frame timeout means "keep reading", not
/// "poll for shutdown".
fn read_exact_retrying(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtoError::Malformed(format!(
                    "eof after {filled} of {} frame bytes",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame. A clean EOF before the tag is [`ProtoError::Closed`];
/// a timeout before the tag is [`ProtoError::Timeout`] (the caller's
/// chance to check its shutdown flag).
fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ProtoError> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Err(ProtoError::Closed),
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ProtoError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let mut len = [0u8; 4];
    read_exact_retrying(r, &mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed(format!(
            "frame of {len} bytes exceeds MAX_FRAME"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_retrying(r, &mut payload)?;
    Ok((tag[0], payload))
}

// ---------------------------------------------------------------------------
// Payload encoding helpers
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::Malformed("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("non-utf8 string".into()))
    }

    /// Payload bytes not yet consumed — how optional trailing fields are
    /// detected before the strict [`done`](Cursor::done) check.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Client messages
// ---------------------------------------------------------------------------

/// Encode and send one client message.
pub fn write_client(w: &mut impl Write, msg: &ClientMsg) -> Result<(), ProtoError> {
    match msg {
        ClientMsg::Startup { user } => {
            let mut p = Vec::new();
            put_str(&mut p, user);
            write_frame(w, b'U', &p)
        }
        ClientMsg::Query { line, trace } => {
            let mut p = Vec::new();
            put_str(&mut p, line);
            if let Some(t) = trace {
                p.extend_from_slice(&t.to_be_bytes());
            }
            write_frame(w, b'Q', &p)
        }
        ClientMsg::Terminate => write_frame(w, b'X', &[]),
    }
}

/// Read one client message (server side).
pub fn read_client(r: &mut impl Read) -> Result<ClientMsg, ProtoError> {
    let (tag, payload) = read_frame(r)?;
    let mut c = Cursor::new(&payload);
    let msg = match tag {
        b'U' => ClientMsg::Startup { user: c.str()? },
        b'Q' => {
            let line = c.str()?;
            let trace = if c.remaining() > 0 {
                Some(c.u64()?)
            } else {
                None
            };
            ClientMsg::Query { line, trace }
        }
        b'X' => ClientMsg::Terminate,
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown client tag 0x{other:02x}"
            )))
        }
    };
    c.done()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Server messages
// ---------------------------------------------------------------------------

/// Encode and send one server message.
pub fn write_server(w: &mut impl Write, msg: &ServerMsg) -> Result<(), ProtoError> {
    match msg {
        ServerMsg::StartupOk { session_id } => write_frame(w, b'R', &session_id.to_be_bytes()),
        ServerMsg::RowDescription { columns } => {
            let mut p = Vec::new();
            p.extend_from_slice(&(columns.len() as u16).to_be_bytes());
            for col in columns {
                put_str(&mut p, col);
            }
            write_frame(w, b'T', &p)
        }
        ServerMsg::DataRow { fields } => {
            let mut p = Vec::new();
            p.extend_from_slice(&(fields.len() as u16).to_be_bytes());
            for field in fields {
                match field {
                    None => p.extend_from_slice(&NULL_FIELD.to_be_bytes()),
                    Some(s) => put_str(&mut p, s),
                }
            }
            write_frame(w, b'D', &p)
        }
        ServerMsg::CommandComplete { tag, trace } => {
            let mut p = Vec::new();
            put_str(&mut p, tag);
            if let Some(t) = trace {
                p.extend_from_slice(&t.to_be_bytes());
            }
            write_frame(w, b'C', &p)
        }
        ServerMsg::Error { code, message } => {
            let mut p = Vec::new();
            put_str(&mut p, code);
            put_str(&mut p, message);
            write_frame(w, b'E', &p)
        }
        ServerMsg::Ready => write_frame(w, b'Z', &[]),
    }
}

/// Read one server message (client side).
pub fn read_server(r: &mut impl Read) -> Result<ServerMsg, ProtoError> {
    let (tag, payload) = read_frame(r)?;
    let mut c = Cursor::new(&payload);
    let msg = match tag {
        b'R' => ServerMsg::StartupOk {
            session_id: c.u64()?,
        },
        b'T' => {
            let n = c.u16()? as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(c.str()?);
            }
            ServerMsg::RowDescription { columns }
        }
        b'D' => {
            let n = c.u16()? as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let len = c.u32()?;
                if len == NULL_FIELD {
                    fields.push(None);
                } else {
                    let bytes = c.take(len as usize)?;
                    fields
                        .push(Some(String::from_utf8(bytes.to_vec()).map_err(|_| {
                            ProtoError::Malformed("non-utf8 field".into())
                        })?));
                }
            }
            ServerMsg::DataRow { fields }
        }
        b'C' => {
            let tag = c.str()?;
            let trace = if c.remaining() > 0 {
                Some(c.u64()?)
            } else {
                None
            };
            ServerMsg::CommandComplete { tag, trace }
        }
        b'E' => ServerMsg::Error {
            code: c.str()?,
            message: c.str()?,
        },
        b'Z' => ServerMsg::Ready,
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown server tag 0x{other:02x}"
            )))
        }
    };
    c.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMsg) {
        let mut buf = Vec::new();
        write_client(&mut buf, &msg).unwrap();
        let decoded = read_client(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut buf = Vec::new();
        write_server(&mut buf, &msg).unwrap();
        let decoded = read_server(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Startup {
            user: "alice".into(),
        });
        roundtrip_client(ClientMsg::Query {
            line: "SELECT * FROM VERSION 1 OF CVD t WHERE name = 'x,y'".into(),
            trace: None,
        });
        roundtrip_client(ClientMsg::Query {
            line: "commit -t w -m traced".into(),
            trace: Some(0xdead_beef_0042),
        });
        roundtrip_client(ClientMsg::Terminate);
    }

    #[test]
    fn traceless_query_frames_decode_as_before() {
        // An encoder that predates the trace field sends only the line;
        // the decoder must accept that, not demand 8 more bytes.
        let mut p = Vec::new();
        put_str(&mut p, "ls");
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&(p.len() as u32).to_be_bytes());
        buf.extend_from_slice(&p);
        assert_eq!(
            read_client(&mut buf.as_slice()).unwrap(),
            ClientMsg::Query {
                line: "ls".into(),
                trace: None
            }
        );
        // A partial trace field (wrong width) is still malformed.
        let mut p = Vec::new();
        put_str(&mut p, "ls");
        p.extend_from_slice(&[1, 2, 3]);
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&(p.len() as u32).to_be_bytes());
        buf.extend_from_slice(&p);
        assert!(matches!(
            read_client(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::StartupOk { session_id: 42 });
        roundtrip_server(ServerMsg::RowDescription {
            columns: vec!["rid".into(), "k".into(), "name".into()],
        });
        roundtrip_server(ServerMsg::DataRow {
            fields: vec![Some("1".into()), None, Some("".into())],
        });
        roundtrip_server(ServerMsg::CommandComplete {
            tag: "COMMIT v7".into(),
            trace: None,
        });
        roundtrip_server(ServerMsg::CommandComplete {
            tag: "COMMIT v7".into(),
            trace: Some(0xabc),
        });
        roundtrip_server(ServerMsg::Error {
            code: code::BACKPRESSURE.into(),
            message: "commit admission queue full".into(),
        });
        roundtrip_server(ServerMsg::Ready);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut buf = Vec::new();
        write_server(&mut buf, &ServerMsg::Ready).unwrap();
        write_server(
            &mut buf,
            &ServerMsg::CommandComplete {
                tag: "OK".into(),
                trace: None,
            },
        )
        .unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_server(&mut r).unwrap(), ServerMsg::Ready);
        assert_eq!(
            read_server(&mut r).unwrap(),
            ServerMsg::CommandComplete {
                tag: "OK".into(),
                trace: None
            }
        );
        assert!(matches!(read_server(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn oversize_and_garbage_frames_are_rejected() {
        // Huge declared length.
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(matches!(
            read_client(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
        // Unknown tag.
        let mut buf = vec![0x7f];
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            read_client(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
        // Truncated payload: declared 10 bytes, supplied 3.
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_client(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
        // Trailing bytes after a complete message body.
        let mut buf = Vec::new();
        write_client(&mut buf, &ClientMsg::Terminate).unwrap();
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&1u32.to_be_bytes());
        buf.push(0);
        assert!(matches!(
            read_client(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_client(&mut &empty[..]),
            Err(ProtoError::Closed)
        ));
    }
}
