//! A minimal blocking client for the orpheus wire protocol.
//!
//! Used by the CLI `client` subcommand, the integration tests, and the
//! CI smoke gate. One connection, one outstanding query at a time:
//! [`Client::query`] writes a `Q` frame and collects server messages
//! until `Ready`.

use crate::protocol::{self, ClientMsg, ProtoError, ServerMsg};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures: transport faults, or a server that refused us.
#[derive(Debug)]
pub enum ClientError {
    Proto(ProtoError),
    /// The server answered the startup with a typed error (e.g. `53300`
    /// when every session slot is taken).
    Rejected {
        code: String,
        message: String,
    },
    /// The server broke the message grammar.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { code, message } => write!(f, "rejected [{code}]: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server message: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// Everything the server sent for one query, in order, `Ready` excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    pub messages: Vec<ServerMsg>,
}

impl Reply {
    /// The error frame, if the query failed.
    pub fn error(&self) -> Option<(&str, &str)> {
        self.messages.iter().find_map(|m| match m {
            ServerMsg::Error { code, message } => Some((code.as_str(), message.as_str())),
            _ => None,
        })
    }

    /// The completion tag, if the query succeeded.
    pub fn tag(&self) -> Option<&str> {
        self.messages.iter().find_map(|m| match m {
            ServerMsg::CommandComplete { tag, .. } => Some(tag.as_str()),
            _ => None,
        })
    }

    /// The trace id the server stamped on the completion, if any. Matches
    /// the `trace` ids in the server's `trace dump --json` export.
    pub fn trace(&self) -> Option<u64> {
        self.messages.iter().find_map(|m| match m {
            ServerMsg::CommandComplete { trace, .. } => *trace,
            _ => None,
        })
    }

    /// Data rows, rendered (None = NULL).
    pub fn rows(&self) -> Vec<&[Option<String>]> {
        self.messages
            .iter()
            .filter_map(|m| match m {
                ServerMsg::DataRow { fields } => Some(fields.as_slice()),
                _ => None,
            })
            .collect()
    }

    /// Canonical text rendering, used for byte-comparing transcripts.
    pub fn render(&self) -> String {
        render_messages(&self.messages)
    }
}

/// Render server messages as the canonical transcript text. The live
/// server path and the serial-replay path both end in this function, so
/// "byte-identical" means identical down to NULL spelling and row order.
pub fn render_messages(messages: &[ServerMsg]) -> String {
    let mut out = String::new();
    for msg in messages {
        match msg {
            ServerMsg::RowDescription { columns } => {
                out.push_str(&columns.join(" | "));
                out.push('\n');
            }
            ServerMsg::DataRow { fields } => {
                let rendered: Vec<&str> = fields
                    .iter()
                    .map(|f| f.as_deref().unwrap_or("NULL"))
                    .collect();
                out.push_str(&rendered.join(" | "));
                out.push('\n');
            }
            // The trace id is correlation metadata, not part of the
            // transcript: serial replay must stay byte-identical whether
            // or not the query was traced.
            ServerMsg::CommandComplete { tag, .. } => {
                out.push_str("-- ");
                out.push_str(tag);
                out.push('\n');
            }
            ServerMsg::Error { code, message } => {
                out.push_str("!! ");
                out.push_str(code);
                out.push(' ');
                out.push_str(message);
                out.push('\n');
            }
            ServerMsg::StartupOk { .. } | ServerMsg::Ready => {}
        }
    }
    out
}

/// A connected, started session.
pub struct Client {
    stream: TcpStream,
    session_id: u64,
}

impl Client {
    /// Connect and run the startup handshake as `user`.
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        drop(stream.set_nodelay(true));
        protocol::write_client(
            &mut stream,
            &ClientMsg::Startup {
                user: user.to_owned(),
            },
        )?;
        match protocol::read_server(&mut stream)? {
            ServerMsg::StartupOk { session_id } => Ok(Client { stream, session_id }),
            ServerMsg::Error { code, message } => Err(ClientError::Rejected { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Run one query line and collect the full reply. The server mints a
    /// trace id for the request; [`Reply::trace`] returns it.
    pub fn query(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.query_inner(line, None)
    }

    /// Run one query line under a caller-chosen trace id, propagated to
    /// the server so its spans (engine, morsel workers, WAL fsync) attach
    /// to the caller's trace. `trace` must be non-zero to be adopted.
    pub fn query_traced(&mut self, line: &str, trace: u64) -> Result<Reply, ClientError> {
        self.query_inner(line, Some(trace))
    }

    fn query_inner(&mut self, line: &str, trace: Option<u64>) -> Result<Reply, ClientError> {
        protocol::write_client(
            &mut self.stream,
            &ClientMsg::Query {
                line: line.to_owned(),
                trace,
            },
        )?;
        let mut messages = Vec::new();
        loop {
            match protocol::read_server(&mut self.stream)? {
                ServerMsg::Ready => return Ok(Reply { messages }),
                msg => messages.push(msg),
            }
        }
    }

    /// Orderly goodbye.
    pub fn terminate(mut self) -> Result<(), ClientError> {
        protocol::write_client(&mut self.stream, &ClientMsg::Terminate)?;
        Ok(())
    }
}
