//! # orpheus-server — multi-session network front end
//!
//! OrpheusDB as the paper deploys it is collaborative: many analysts
//! share one versioned store. This crate puts a TCP front end on the
//! engine so that concurrent sessions get the two properties that matter
//! for collaborative versioning:
//!
//! * **Snapshot-isolated, lock-free reads.** A session `pin`s a CVD and
//!   receives an immutable [`orpheus_core::Snapshot`] — version graph
//!   plus records as of that instant. Versioned queries against a pinned
//!   CVD run on the session's own thread with no locks and no engine
//!   round-trip; no reader ever blocks a writer, and reads are
//!   repeatable until re-pinned.
//! * **Group-commit writes.** Commits funnel through a bounded admission
//!   queue to the single engine thread, which batches concurrently
//!   arriving commits and makes them durable with *one* WAL fsync per
//!   batch instead of one per commit. When the queue is full, new
//!   commits get a typed backpressure error (`53300`) instead of
//!   queueing unboundedly.
//!
//! The wire format is pgwire-flavored length-prefixed framing with a
//! simple-query subset ([`protocol`]); [`client`] is the matching
//! blocking client. See `DESIGN.md` § Server for the full protocol and
//! lifecycle description.
//!
//! ```no_run
//! use orpheus_server::{Client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let mut c = Client::connect(server.local_addr(), "alice")?;
//! let reply = c.query("whoami")?;
//! assert_eq!(reply.tag(), Some("alice"));
//! c.terminate()?;
//! server.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, Reply};
pub use engine::{EngineConfig, EngineError, EngineHandle, EngineService};
pub use protocol::{code, ClientMsg, ProtoError, ServerMsg};
pub use server::{Server, ServerConfig, ServerError};
pub use session::output_messages;
