//! The engine service: one dedicated thread owning the single-threaded
//! [`OrpheusDb`], fed by message channels from the session workers.
//!
//! The storage engine underneath (`relstore`/`pagestore`) is built around
//! `Rc`/`RefCell` interior mutability — deliberately single-threaded, like
//! the paper's middleware sitting on one PostgreSQL connection. Instead of
//! wrapping it in a big lock, the server gives it a thread of its own
//! ([`exec_pool::ServiceThread`], named `orpheus-engine`) and serializes
//! *writes and commands* through an MPSC channel. *Reads* never come here
//! at all: sessions pin immutable [`Snapshot`]s and evaluate queries
//! locally (see [`crate::session`]), so readers are lock-free and the
//! engine thread spends its time on writes.
//!
//! **Group commit.** When a `commit` arrives, the engine keeps draining
//! the channel for a short linger window (and up to `max_batch` commits),
//! applies the whole batch, then issues *one* WAL-protected checkpoint
//! for all of them — N concurrent commits cost one fsync instead of N
//! (`pagestore.wal.fsyncs` < commits, asserted by the CI smoke gate).
//! Commits enter through a **bounded admission queue**: past
//! `admission_capacity` queued commits, new ones are rejected immediately
//! with a typed backpressure error ([`crate::protocol::code::BACKPRESSURE`])
//! instead of queueing unboundedly.

use crate::protocol::code;
use obs::{Recorder, Registry, TraceCtx};
use orpheus_core::{CommandOutput, OrpheusDb, Snapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration for [`EngineService::start`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Durable data directory; `None` runs in memory (tests, smoke).
    pub data_dir: Option<PathBuf>,
    /// Buffer-pool capacity in 8 KiB pages.
    pub pool_pages: usize,
    /// Morsel workers for engine-side checkout/query plans.
    pub threads: usize,
    /// Bounded admission queue: commits queued beyond this are rejected
    /// with a typed backpressure error.
    pub admission_capacity: usize,
    /// Largest number of commits folded into one group-commit batch.
    pub max_batch: usize,
    /// How long the engine lingers for more commits after the first one
    /// of a batch arrives.
    pub linger: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            data_dir: None,
            pool_pages: 512,
            threads: 1,
            admission_capacity: 64,
            max_batch: 32,
            linger: Duration::from_millis(2),
        }
    }
}

/// A typed engine-level error: a SQLSTATE-style code plus a message,
/// carried to the client as an `E` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    pub code: &'static str,
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for EngineError {}

fn engine_down() -> EngineError {
    EngineError {
        code: code::INTERNAL,
        message: "engine thread is gone".into(),
    }
}

/// Map a command-layer error to its wire code.
fn map_err(e: &orpheus_core::Error) -> EngineError {
    use orpheus_core::Error as E;
    let code = match e {
        E::Parse(_) => code::PARSE,
        E::CvdNotFound(_) | E::VersionNotFound(_) | E::NotCheckedOut(_) => code::NOT_FOUND,
        E::PermissionDenied { .. } => code::PERMISSION,
        _ => code::INTERNAL,
    };
    EngineError {
        code,
        message: e.to_string(),
    }
}

type Reply = Sender<Result<CommandOutput, EngineError>>;

enum EngineMsg {
    /// Any non-commit command; executed immediately, serialized.
    Execute {
        session: u64,
        user: String,
        line: String,
        trace: u64,
        reply: Reply,
    },
    /// A commit; drained into a group-commit batch.
    Commit {
        session: u64,
        user: String,
        line: String,
        trace: u64,
        reply: Reply,
    },
    /// Pin an immutable snapshot of a CVD for lock-free session reads.
    Snapshot {
        cvd: String,
        reply: Sender<Result<Snapshot, EngineError>>,
    },
    /// Stall the engine thread (testing hook for backpressure: with the
    /// engine asleep, the admission queue fills deterministically).
    Sleep {
        millis: u64,
    },
    Shutdown,
}

/// Cloneable handle the session workers use to talk to the engine.
#[derive(Clone)]
pub struct EngineHandle {
    tx: Sender<EngineMsg>,
    queued: Arc<AtomicUsize>,
    capacity: usize,
    registry: Registry,
    recorder: Recorder,
}

impl EngineHandle {
    /// The engine database's metrics registry (shared, thread-safe).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The engine database's span recorder (shared, thread-safe). Session
    /// workers use it to attach pinned-snapshot reads to the request trace
    /// without an engine round-trip.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Commits currently waiting in the admission queue.
    pub fn queued_commits(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Run a non-commit command on the engine thread and wait for it.
    /// `trace` is the originating request's trace id (`0` = untraced);
    /// engine-side spans re-attach to it.
    // lint:allow(L012): traced engine-side in run_one via enter_with (the work crosses an mpsc channel the lint call graph cannot follow)
    pub fn execute(
        &self,
        session: u64,
        user: &str,
        line: &str,
        trace: u64,
    ) -> Result<CommandOutput, EngineError> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(EngineMsg::Execute {
                session,
                user: user.to_owned(),
                line: line.to_owned(),
                trace,
                reply: tx,
            })
            .is_err()
        {
            return Err(engine_down());
        }
        rx.recv().unwrap_or_else(|_| Err(engine_down()))
    }

    /// Submit a commit through the bounded admission queue. Rejected with
    /// [`code::BACKPRESSURE`] — without blocking and without queueing —
    /// when `admission_capacity` commits are already waiting.
    // lint:allow(L012): traced engine-side in run_one via enter_with, re-attached to `trace` across the group-commit channel
    pub fn submit_commit(
        &self,
        session: u64,
        user: &str,
        line: &str,
        trace: u64,
    ) -> Result<CommandOutput, EngineError> {
        let admitted = self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.registry
                .counter_add("orpheus.server.backpressure_rejections", 1);
            return Err(EngineError {
                code: code::BACKPRESSURE,
                message: format!(
                    "commit admission queue full ({} commits queued, capacity {}); retry later",
                    self.capacity, self.capacity
                ),
            });
        }
        self.registry.gauge_set(
            "orpheus.server.queued_commits",
            self.queued.load(Ordering::SeqCst) as f64,
        );
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(EngineMsg::Commit {
                session,
                user: user.to_owned(),
                line: line.to_owned(),
                trace,
                reply: tx,
            })
            .is_err()
        {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Err(engine_down());
        }
        rx.recv().unwrap_or_else(|_| Err(engine_down()))
    }

    /// Pin an immutable snapshot of `cvd` as of now.
    pub fn snapshot(&self, cvd: &str) -> Result<Snapshot, EngineError> {
        let (tx, rx) = mpsc::channel();
        if self
            .tx
            .send(EngineMsg::Snapshot {
                cvd: cvd.to_owned(),
                reply: tx,
            })
            .is_err()
        {
            return Err(engine_down());
        }
        rx.recv().unwrap_or_else(|_| Err(engine_down()))
    }

    /// Stall the engine thread for `millis` (fire-and-forget test hook).
    pub fn sleep(&self, millis: u64) {
        drop(self.tx.send(EngineMsg::Sleep { millis }));
    }
}

/// The engine thread plus its handle. Created by [`EngineService::start`],
/// torn down by [`EngineService::shutdown`] (which joins the thread after
/// a final checkpoint).
pub struct EngineService {
    handle: EngineHandle,
    thread: Option<exec_pool::ServiceThread>,
}

impl EngineService {
    /// Open the database on a fresh `orpheus-engine` service thread.
    pub fn start(cfg: EngineConfig) -> Result<EngineService, crate::ServerError> {
        let (tx, rx) = mpsc::channel();
        let (init_tx, init_rx) = mpsc::channel();
        let queued = Arc::new(AtomicUsize::new(0));
        let q = Arc::clone(&queued);
        let loop_cfg = cfg.clone();
        let thread = exec_pool::ServiceThread::spawn("orpheus-engine", move || {
            engine_loop(loop_cfg, rx, init_tx, q)
        })
        .map_err(crate::ServerError::Pool)?;
        let (registry, recorder) = match init_rx.recv() {
            Ok(Ok(pair)) => pair,
            Ok(Err(msg)) => {
                drop(thread.join());
                return Err(crate::ServerError::Engine(msg));
            }
            Err(_) => {
                let joined = thread.join();
                return Err(crate::ServerError::Engine(match joined {
                    Err(e) => format!("engine thread died during startup: {e}"),
                    Ok(()) => "engine thread exited during startup".into(),
                }));
            }
        };
        Ok(EngineService {
            handle: EngineHandle {
                tx,
                queued,
                capacity: cfg.admission_capacity.max(1),
                registry,
                recorder,
            },
            thread: Some(thread),
        })
    }

    /// The cloneable session-facing handle.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// The engine database's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.handle.registry
    }

    /// Stop the engine: a final checkpoint runs, then the thread joins.
    pub fn shutdown(mut self) -> Result<(), crate::ServerError> {
        drop(self.handle.tx.send(EngineMsg::Shutdown));
        match self.thread.take() {
            Some(t) => t.join().map_err(crate::ServerError::Pool),
            None => Ok(()),
        }
    }
}

/// Pre-register every `orpheus.server.*` key so `metrics --json` always
/// carries the full schema, even before the first session arrives (the
/// obs schema checker treats a missing key as a failure).
fn seed_metrics(registry: &Registry) {
    for key in [
        "orpheus.server.sessions_total",
        "orpheus.server.queries_total",
        "orpheus.server.snapshot_reads_total",
        "orpheus.server.commits_total",
        "orpheus.server.group_commit.batches",
        "orpheus.server.backpressure_rejections",
    ] {
        registry.counter_add(key, 0);
    }
    registry.gauge_set("orpheus.server.active_sessions", 0.0);
    registry.gauge_set("orpheus.server.queued_commits", 0.0);
    // Histograms materialize on first observe; seed them with a zero
    // sample so the latency/batch-size keys exist from startup.
    registry.observe("orpheus.server.query.latency_us", 0);
    registry.observe("orpheus.server.group_commit.batch_size", 0);
}

fn open_db(cfg: &EngineConfig) -> Result<OrpheusDb, String> {
    let mut db = match &cfg.data_dir {
        Some(dir) => {
            let (db, _report) = OrpheusDb::open_durable(dir, cfg.pool_pages)
                .map_err(|e| format!("cannot open data dir {}: {e}", dir.display()))?;
            db
        }
        None => OrpheusDb::new(),
    };
    db.set_threads(cfg.threads);
    // The server owns durability points: one checkpoint per commit batch
    // (group commit) instead of one per commit.
    db.set_auto_checkpoint(false);
    Ok(db)
}

/// Run one command under the session's span so `spans` shows a
/// per-session tree with the engine's own spans (`orpheus.commit`, …)
/// nested inside. The session span re-attaches to the originating
/// request's trace (`trace != 0`), so engine-side work — including the
/// morsel workers it fans out to — journals under the caller's trace id
/// even though it runs on the engine thread.
fn run_one(
    db: &mut OrpheusDb,
    session: u64,
    user: &str,
    line: &str,
    trace: u64,
) -> Result<CommandOutput, EngineError> {
    let _span = db.recorder().enter_with(
        &format!("orpheus.server.session{session}"),
        TraceCtx::from_wire(trace),
    );
    db.execute_as(user, line).map_err(|e| map_err(&e))
}

struct CommitJob {
    session: u64,
    user: String,
    line: String,
    trace: u64,
    reply: Reply,
}

fn engine_loop(
    cfg: EngineConfig,
    rx: Receiver<EngineMsg>,
    init_tx: Sender<Result<(Registry, Recorder), String>>,
    queued: Arc<AtomicUsize>,
) {
    let mut db = match open_db(&cfg) {
        Ok(db) => db,
        Err(msg) => {
            drop(init_tx.send(Err(msg)));
            return;
        }
    };
    let registry = db.metrics().clone();
    seed_metrics(&registry);
    // Pre-register the journal counters alongside the server schema so
    // `metrics --json` carries `obs.journal.*` from startup.
    db.recorder().journal().publish(&registry);
    if init_tx
        .send(Ok((registry.clone(), db.recorder().clone())))
        .is_err()
    {
        return;
    }
    loop {
        let Ok(msg) = rx.recv() else { break };
        match msg {
            EngineMsg::Shutdown => break,
            EngineMsg::Sleep { millis } => std::thread::sleep(Duration::from_millis(millis)),
            EngineMsg::Snapshot { cvd, reply } => {
                drop(reply.send(db.snapshot(&cvd).map_err(|e| map_err(&e))));
            }
            EngineMsg::Execute {
                session,
                user,
                line,
                trace,
                reply,
            } => {
                drop(reply.send(run_one(&mut db, session, &user, &line, trace)));
            }
            EngineMsg::Commit {
                session,
                user,
                line,
                trace,
                reply,
            } => {
                let first = CommitJob {
                    session,
                    user,
                    line,
                    trace,
                    reply,
                };
                if group_commit(&mut db, first, &rx, &cfg, &queued, &registry) {
                    break;
                }
            }
        }
    }
    // Clean shutdown: one final durability point.
    drop(db.checkpoint());
}

/// Drain concurrently arriving commits into one batch, apply them in
/// arrival order, and end the batch with a single checkpoint (one WAL
/// fsync). Non-commit messages received during the linger window are
/// served immediately — a batch never delays a read or a snapshot pin.
/// Returns `true` when a shutdown request arrived mid-drain.
fn group_commit(
    db: &mut OrpheusDb,
    first: CommitJob,
    rx: &Receiver<EngineMsg>,
    cfg: &EngineConfig,
    queued: &AtomicUsize,
    registry: &Registry,
) -> bool {
    let mut shutdown = false;
    let mut batch = vec![first];
    queued.fetch_sub(1, Ordering::SeqCst);
    let deadline = Instant::now() + cfg.linger;
    while batch.len() < cfg.max_batch && !shutdown {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            break;
        }
        match rx.recv_timeout(timeout) {
            Ok(EngineMsg::Commit {
                session,
                user,
                line,
                trace,
                reply,
            }) => {
                queued.fetch_sub(1, Ordering::SeqCst);
                batch.push(CommitJob {
                    session,
                    user,
                    line,
                    trace,
                    reply,
                });
            }
            Ok(EngineMsg::Execute {
                session,
                user,
                line,
                trace,
                reply,
            }) => {
                drop(reply.send(run_one(db, session, &user, &line, trace)));
            }
            Ok(EngineMsg::Snapshot { cvd, reply }) => {
                drop(reply.send(db.snapshot(&cvd).map_err(|e| map_err(&e))));
            }
            Ok(EngineMsg::Sleep { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Ok(EngineMsg::Shutdown) => shutdown = true,
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => {
                shutdown = true;
            }
        }
    }
    registry.gauge_set(
        "orpheus.server.queued_commits",
        queued.load(Ordering::SeqCst) as f64,
    );
    // Apply in arrival order; each commit's version-graph work is
    // WAL-logged but NOT individually checkpointed (auto_checkpoint off).
    let mut results = Vec::with_capacity(batch.len());
    for job in &batch {
        results.push(run_one(db, job.session, &job.user, &job.line, job.trace));
    }
    // One durability point for the whole batch, attributed to the batch
    // leader's trace: the real `pagestore.wal.fsync` span nests under the
    // leader's `orpheus.server.group_commit` span, and every other batch
    // member gets a journal-only `pagestore.wal.fsync.shared` event with
    // the shared fsync's duration, so each committed query's trace shows
    // where its durability cost went without double-counting aggregates.
    let leader_trace = batch.first().map_or(0, |job| job.trace);
    let ckpt_started = Instant::now();
    let ckpt = {
        let _span = db.recorder().enter_with(
            "orpheus.server.group_commit",
            TraceCtx::from_wire(leader_trace),
        );
        db.checkpoint()
    };
    let ckpt_elapsed = ckpt_started.elapsed();
    for job in batch.iter().skip(1) {
        db.recorder()
            .journal()
            .attribute(job.trace, "pagestore.wal.fsync.shared", ckpt_elapsed);
    }
    let n = batch.len() as u64;
    for (job, result) in batch.into_iter().zip(results) {
        let result = match (&ckpt, result) {
            // A failed checkpoint means none of the batch is durable:
            // report every commit failed, even if it applied in memory.
            (Err(e), Ok(_)) => Err(EngineError {
                code: code::INTERNAL,
                message: format!("group-commit checkpoint failed: {e}"),
            }),
            (_, r) => r,
        };
        drop(job.reply.send(result));
    }
    registry.counter_add("orpheus.server.commits_total", n);
    registry.counter_add("orpheus.server.group_commit.batches", 1);
    registry.observe("orpheus.server.group_commit.batch_size", n);
    shutdown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_mem(capacity: usize, linger_ms: u64) -> EngineService {
        EngineService::start(EngineConfig {
            admission_capacity: capacity,
            linger: Duration::from_millis(linger_ms),
            ..EngineConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn execute_roundtrips_through_the_engine_thread() {
        let svc = start_mem(4, 1);
        let h = svc.handle();
        let out = h.execute(1, "alice", "whoami", 0).unwrap();
        assert_eq!(out, CommandOutput::Message("alice".into()));
        // Errors come back typed.
        let err = h.execute(1, "alice", "bogus_cmd", 0).unwrap_err();
        assert_eq!(err.code, code::PARSE);
        let err = h.execute(1, "alice", "log nope", 0).unwrap_err();
        assert_eq!(err.code, code::NOT_FOUND);
        svc.shutdown().unwrap();
    }

    #[test]
    fn snapshot_pins_are_served() {
        let svc = start_mem(4, 1);
        let h = svc.handle();
        h.execute(1, "alice", "create_user ignored_twice", 0)
            .unwrap();
        let err = h.snapshot("none").unwrap_err();
        assert_eq!(err.code, code::NOT_FOUND);
        svc.shutdown().unwrap();
    }

    #[test]
    fn full_admission_queue_rejects_with_backpressure() {
        let svc = start_mem(2, 1);
        let h = svc.handle();
        // Stall the engine so queued commits cannot drain.
        h.sleep(300);
        std::thread::sleep(Duration::from_millis(30));
        // Fill the admission queue from other threads (submit blocks on
        // the reply), then overflow it from this one.
        let blocked: Vec<_> = (0..2)
            .map(|i| {
                let h = h.clone();
                exec_pool::ServiceThread::spawn(format!("commit-{i}"), move || {
                    // These fail (nothing checked out) but occupy queue slots
                    // until the engine wakes.
                    let r = h.submit_commit(10 + i as u64, "w", "commit -t none -m x", 0);
                    assert_eq!(r.unwrap_err().code, code::NOT_FOUND);
                })
                .unwrap()
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(h.queued_commits(), 2);
        let err = h
            .submit_commit(99, "w", "commit -t none -m x", 0)
            .unwrap_err();
        assert_eq!(err.code, code::BACKPRESSURE);
        assert!(err.message.contains("capacity 2"), "{}", err.message);
        assert!(
            h.registry()
                .counter("orpheus.server.backpressure_rejections")
                >= 1
        );
        for t in blocked {
            t.join().unwrap();
        }
        svc.shutdown().unwrap();
    }
}
