//! The server proper: acceptor + session-worker pool around one
//! [`EngineService`].
//!
//! Thread layout (all [`exec_pool::ServiceThread`]s, all named, all
//! joined on shutdown — nothing leaks):
//!
//! ```text
//! orpheus-acceptor      blocking accept(); hands sockets to workers
//! orpheus-session-{i}   i in 0..workers; one session at a time each
//! orpheus-engine        owns the OrpheusDb; group-commits writes
//! ```
//!
//! Connections are handed to workers over a bounded channel. When every
//! worker is busy and the hand-off queue is full, the acceptor answers
//! the new connection with a typed `53300` error and closes it — the
//! same backpressure-not-buffering policy the commit path uses.
//!
//! [`Server::shutdown`] is cooperative: it raises a flag, nudges the
//! blocking `accept()` with a loopback connect, then joins every thread
//! (acceptor, workers, engine — in that order). A worker mid-session
//! notices the flag at its next 200 ms read-timeout tick and closes the
//! session; the engine runs one final checkpoint before exiting.

use crate::engine::{EngineConfig, EngineService};
use crate::protocol::{self, code, ServerMsg};
use crate::session::{serve_session, SessionCounters};
use exec_pool::ServiceThread;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Anything that can go wrong starting or stopping a server.
#[derive(Debug)]
pub enum ServerError {
    Io(std::io::Error),
    Pool(exec_pool::PoolError),
    Engine(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
            ServerError::Pool(e) => write!(f, "thread error: {e}"),
            ServerError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<exec_pool::PoolError> for ServerError {
    fn from(e: exec_pool::PoolError) -> Self {
        ServerError::Pool(e)
    }
}

/// Server configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Loopback port; `0` picks a free one (see [`Server::local_addr`]).
    pub port: u16,
    /// Session workers = maximum concurrent sessions.
    pub workers: usize,
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 8,
            engine: EngineConfig::default(),
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// still joins every thread (via `ServiceThread`'s drop-join), but only
/// `shutdown` surfaces panics and I/O faults.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<ServiceThread>,
    workers: Vec<ServiceThread>,
    engine: Option<EngineService>,
    registry: obs::Registry,
}

impl Server {
    /// Bind `127.0.0.1:port`, start the engine and the worker pool, and
    /// begin accepting sessions.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServerError> {
        let engine = EngineService::start(cfg.engine.clone())?;
        let registry = engine.registry().clone();
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);

        // Bounded hand-off: acceptor -> workers. Capacity beyond the
        // worker count gives a short accept burst headroom; past that,
        // connections are refused with a typed error, never queued
        // without bound.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<(u64, TcpStream)>(workers);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let counters = Arc::new(SessionCounters {
            active: AtomicUsize::new(0),
        });

        let mut worker_threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&conn_rx);
            let flag = Arc::clone(&shutdown);
            let handle = engine.handle();
            let counters = Arc::clone(&counters);
            worker_threads.push(ServiceThread::spawn(
                format!("orpheus-session-{i}"),
                move || worker_loop(&rx, &handle, &counters, &flag),
            )?);
        }

        let flag = Arc::clone(&shutdown);
        let acceptor = ServiceThread::spawn("orpheus-acceptor", move || {
            acceptor_loop(&listener, &conn_tx, &flag);
        })?;

        Ok(Server {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_threads,
            engine: Some(engine),
            registry,
        })
    }

    /// The bound address (resolves `port: 0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine's metrics registry (live counters, shared).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Cooperative shutdown: close the accept loop, drain the workers,
    /// stop the engine (final checkpoint included), join everything.
    /// An `Ok(())` here is the "no leaked threads" proof the CI smoke
    /// gate relies on: every service thread joined without panicking.
    pub fn shutdown(mut self) -> Result<(), ServerError> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept().
        drop(TcpStream::connect(self.local_addr));
        let mut first_err = None;
        if let Some(acceptor) = self.acceptor.take() {
            if let Err(e) = acceptor.join() {
                first_err.get_or_insert(ServerError::Pool(e));
            }
        }
        for w in self.workers.drain(..) {
            if let Err(e) = w.join() {
                first_err.get_or_insert(ServerError::Pool(e));
            }
        }
        if let Some(engine) = self.engine.take() {
            if let Err(e) = engine.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Panic-safety: a server dropped without `shutdown()` (e.g. a
        // failing test unwinding past it) must still raise the flag and
        // nudge the blocking accept(), or the ServiceThread drop-joins
        // that follow would wait forever.
        self.shutdown.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.local_addr));
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<(u64, TcpStream)>,
    shutdown: &AtomicBool,
) {
    let mut next_id: u64 = 1;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE); back off briefly.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let session_id = next_id;
        next_id += 1;
        match conn_tx.try_send((session_id, stream)) {
            Ok(()) => {}
            Err(TrySendError::Full((_, stream))) => refuse(stream),
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Refuse a connection with the typed backpressure error — the session
/// equivalent of a full commit admission queue. The client's startup
/// frame is consumed first: closing a socket with unread inbound data
/// resets the connection, which would race the error frame away before
/// the client can read it.
fn refuse(mut stream: TcpStream) {
    drop(stream.set_read_timeout(Some(Duration::from_millis(250))));
    drop(protocol::read_client(&mut stream));
    drop(protocol::write_server(
        &mut stream,
        &ServerMsg::Error {
            code: code::BACKPRESSURE.into(),
            message: "too many sessions; retry later".into(),
        },
    ));
}

fn worker_loop(
    conn_rx: &Arc<Mutex<Receiver<(u64, TcpStream)>>>,
    engine: &crate::engine::EngineHandle,
    counters: &SessionCounters,
    shutdown: &AtomicBool,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let next = {
            let rx = match conn_rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // lint:allow(L010): deliberate — idle workers serialize on the one shared Receiver; the guard is held only for this bounded 100 ms wait, never across session work or engine I/O
            rx.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok((session_id, stream)) => {
                // Transport faults on one session must not take the
                // worker down; the session is simply over.
                drop(serve_session(
                    stream, session_id, engine, counters, shutdown,
                ));
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
