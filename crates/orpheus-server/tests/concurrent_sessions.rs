//! Multi-session integration tests: N writers × M readers against one
//! server, equivalence with a serial replay, group-commit fsync
//! batching, wire-level backpressure, and snapshot isolation.

use orpheus_server::{
    client::render_messages, output_messages, Client, ClientError, EngineConfig, Server,
    ServerConfig,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A unique scratch path under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("orpheus-server-{tag}-{}", std::process::id()))
}

/// Write the 20-row seed CSV and return its path.
fn seed_csv(tag: &str) -> PathBuf {
    let path = scratch(&format!("{tag}-seed.csv"));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "k,w,i").unwrap();
    for k in 0..20 {
        writeln!(f, "{k},-1,-1").unwrap();
    }
    f.flush().unwrap();
    path
}

fn init_line(csv: &Path) -> String {
    format!("init t -f {} -s k:int,w:int,i:int -k k", csv.display())
}

fn start_server(workers: usize, engine: EngineConfig) -> Server {
    Server::start(ServerConfig {
        port: 0,
        workers,
        engine,
    })
    .unwrap()
}

/// Assert the reply succeeded and return its completion tag.
fn tag_of(c: &mut Client, line: &str) -> String {
    let reply = c.query(line).unwrap();
    if let Some((code, msg)) = reply.error() {
        panic!("query `{line}` failed [{code}]: {msg}");
    }
    reply.tag().unwrap_or_default().to_owned()
}

/// One writer's workload: `commits` cycles of checkout → insert → commit,
/// each from this writer's previous version. Returns the committed vids.
fn writer_workload(addr: std::net::SocketAddr, w: usize, commits: usize) -> Vec<u32> {
    let mut c = Client::connect(addr, &format!("w{w}")).unwrap();
    let mut parent = 0u32;
    let mut vids = Vec::new();
    for i in 0..commits {
        let table = format!("w{w}c{i}");
        tag_of(&mut c, &format!("checkout t -v {parent} -t {table}"));
        let k = 1000 + w * 100 + i;
        tag_of(&mut c, &format!("insert {table} {k},{w},{i}"));
        let tag = tag_of(&mut c, &format!("commit -t {table} -m w{w} c{i}"));
        let vid: u32 = tag
            .strip_prefix("COMMIT v")
            .unwrap_or_else(|| panic!("unexpected commit tag: {tag}"))
            .parse()
            .unwrap();
        parent = vid;
        vids.push(vid);
    }
    c.terminate().unwrap();
    vids
}

/// One parsed `log` entry.
struct LogEntry {
    vid: u32,
    parent: u32,
    author: String,
    msg: String,
}

/// Parse the `log t` text (latest first) into entries, oldest first.
fn parse_log(log: &str) -> Vec<LogEntry> {
    let lines: Vec<&str> = log.lines().collect();
    let mut entries = Vec::new();
    for pair in lines.chunks(2) {
        let [head, detail] = pair else {
            panic!("odd log line count in:\n{log}")
        };
        let (vid_part, parents) = head
            .trim_start_matches("* ")
            .split_once("  ← ")
            .unwrap_or_else(|| panic!("bad log head: {head}"));
        let vid: u32 = vid_part.trim_start_matches('v').parse().unwrap();
        let parent: u32 = if parents == "(root)" {
            0
        } else {
            parents.trim_start_matches('v').parse().unwrap()
        };
        let after_author = detail.trim().strip_prefix("author: ").unwrap();
        let (author, rest) = after_author.split_once("  records: ").unwrap();
        let (_records, msg) = rest.split_once("  msg: ").unwrap();
        entries.push(LogEntry {
            vid,
            parent,
            author: author.to_owned(),
            msg: msg.to_owned(),
        });
    }
    entries.sort_by_key(|e| e.vid);
    entries
}

/// The state-dump query set: every version's contents plus aggregates,
/// a diff, and the log itself.
fn dump_queries(max_vid: u32) -> Vec<String> {
    let mut qs = Vec::new();
    for v in 0..=max_vid {
        qs.push(format!("run SELECT * FROM VERSION {v} OF CVD t"));
    }
    qs.push("run SELECT vid, count(*) FROM CVD t GROUP BY vid".into());
    qs.push("run SELECT vid, sum(k) FROM CVD t GROUP BY vid".into());
    qs.push(format!("run SELECT * FROM V_DIFF({max_vid}, 0) OF CVD t"));
    qs.push("log t".into());
    qs
}

/// N concurrent writers and M concurrent snapshot readers against one
/// server; afterwards the server's final state must be byte-identical to
/// a serial replay of the same commit log in a fresh single-session db.
#[test]
fn concurrent_sessions_match_serial_replay() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const COMMITS: usize = 4;

    let csv = seed_csv("replay");
    let server = start_server(8, EngineConfig::default());
    let addr = server.local_addr();

    let mut admin = Client::connect(addr, "admin").unwrap();
    tag_of(&mut admin, &init_line(&csv));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || writer_workload(addr, w, COMMITS));
        }
        for r in 0..READERS {
            s.spawn(move || {
                let mut c = Client::connect(addr, &format!("r{r}")).unwrap();
                let pin_tag = tag_of(&mut c, "pin t");
                assert!(pin_tag.starts_with("PIN t@v"), "{pin_tag}");
                // Snapshot reads are repeatable while writers commit.
                let baseline = c
                    .query("run SELECT vid, count(*) FROM CVD t GROUP BY vid")
                    .unwrap()
                    .render();
                for _ in 0..10 {
                    let again = c
                        .query("run SELECT vid, count(*) FROM CVD t GROUP BY vid")
                        .unwrap()
                        .render();
                    assert_eq!(again, baseline, "pinned read changed under writers");
                    std::thread::sleep(Duration::from_millis(5));
                }
                // Re-pinning advances to a fresh snapshot.
                tag_of(&mut c, "unpin t");
                tag_of(&mut c, "pin t");
                c.terminate().unwrap();
            });
        }
    });

    // Every version committed exactly once.
    let log_text = tag_of(&mut admin, "log t");
    let entries = parse_log(&log_text);
    assert_eq!(entries.len(), 1 + WRITERS * COMMITS);

    // Serial replay: same commit log, fresh in-memory single-session db.
    let mut replay = orpheus_core::OrpheusDb::new();
    replay.execute_as("admin", &init_line(&csv)).unwrap();
    for e in entries.iter().filter(|e| e.vid > 0) {
        // Message "w{w} c{i}" determines the row the commit inserted.
        let (w_part, c_part) = e.msg.split_once(' ').unwrap();
        let w: usize = w_part.trim_start_matches('w').parse().unwrap();
        let i: usize = c_part.trim_start_matches('c').parse().unwrap();
        let table = format!("w{w}c{i}");
        replay
            .execute_as(&e.author, &format!("checkout t -v {} -t {table}", e.parent))
            .unwrap();
        let k = 1000 + w * 100 + i;
        replay
            .execute_as(&e.author, &format!("insert {table} {k},{w},{i}"))
            .unwrap();
        let out = replay
            .execute_as(&e.author, &format!("commit -t {table} -m {}", e.msg))
            .unwrap();
        assert_eq!(
            out,
            orpheus_core::CommandOutput::Version(partition::Vid(e.vid)),
            "replay assigned a different vid for {}",
            e.msg
        );
    }

    // Byte-compare the full state dump, live server vs serial replay.
    let max_vid = entries.last().unwrap().vid;
    for q in dump_queries(max_vid) {
        let live = {
            let reply = admin.query(&q).unwrap();
            assert!(reply.error().is_none(), "`{q}` failed on the server");
            reply.render()
        };
        let replayed = render_messages(&output_messages(&replay.execute_as("admin", &q).unwrap()));
        assert_eq!(live, replayed, "state diverged on `{q}`");
    }

    admin.terminate().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_file(&csv).ok();
}

/// Group commit: under concurrent write load the WAL fsync count stays
/// strictly below the commit count (one durability point per batch).
#[test]
fn group_commit_batches_fsyncs_below_commit_count() {
    const WRITERS: usize = 8;
    const COMMITS: usize = 3;

    let dir = scratch("fsync");
    std::fs::remove_dir_all(&dir).ok();
    let csv = seed_csv("fsync");
    let server = start_server(
        WRITERS,
        EngineConfig {
            data_dir: Some(dir.clone()),
            linger: Duration::from_millis(30),
            ..EngineConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut admin = Client::connect(addr, "admin").unwrap();
    tag_of(&mut admin, &init_line(&csv));
    // Stall the engine so the first wave of commits queues into one batch.
    tag_of(&mut admin, "sleep 100");

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || writer_workload(addr, w, COMMITS));
        }
    });

    // `metrics` publishes the pagestore stats into the shared registry.
    tag_of(&mut admin, "metrics --json");
    let registry = server.registry().clone();
    let commits = registry.counter("orpheus.server.commits_total");
    let fsyncs = registry.counter("pagestore.wal.fsyncs");
    let batches = registry.counter("orpheus.server.group_commit.batches");
    assert_eq!(commits, (WRITERS * COMMITS) as u64);
    assert!(
        batches < commits,
        "batching never coalesced: {batches} batches"
    );
    assert!(
        fsyncs < commits,
        "group commit must fsync less than once per commit: {fsyncs} fsyncs, {commits} commits"
    );

    admin.terminate().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&csv).ok();
}

/// A full admission queue rejects new commits with the typed `53300`
/// error immediately — no hang, no unbounded queueing.
#[test]
fn full_admission_queue_rejects_commits_over_the_wire() {
    let server = start_server(
        8,
        EngineConfig {
            admission_capacity: 2,
            ..EngineConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut admin = Client::connect(addr, "admin").unwrap();
    // Stall the engine so queued commits cannot drain while we overflow.
    tag_of(&mut admin, "sleep 400");
    std::thread::sleep(Duration::from_millis(30));

    let outcomes: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr, &format!("w{i}")).unwrap();
                    // Fails either way (nothing checked out); what matters
                    // is *which* error and that it returns promptly.
                    let reply = c.query("commit -t none -m x").unwrap();
                    let (code, msg) = reply.error().expect("commit must fail");
                    let out = (code.to_owned(), msg.to_owned());
                    c.terminate().unwrap();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let rejected = outcomes.iter().filter(|(c, _)| c == "53300").count();
    let applied = outcomes.iter().filter(|(c, _)| c == "42P01").count();
    assert_eq!(rejected + applied, 6);
    assert!(
        rejected >= 1,
        "overflowing a capacity-2 queue with 6 commits must reject some: {outcomes:?}"
    );
    assert!(outcomes
        .iter()
        .filter(|(c, _)| c == "53300")
        .all(|(_, m)| m.contains("retry later")));
    assert!(
        server
            .registry()
            .counter("orpheus.server.backpressure_rejections")
            >= 1
    );

    admin.terminate().unwrap();
    server.shutdown().unwrap();
}

/// When every session worker is busy and the hand-off buffer is full,
/// a new connection is refused with the typed backpressure error.
#[test]
fn session_overflow_is_refused_with_typed_error() {
    let server = start_server(1, EngineConfig::default());
    let addr = server.local_addr();

    // Occupies the single worker.
    let mut c1 = Client::connect(addr, "alice").unwrap();
    tag_of(&mut c1, "whoami");
    // Occupies the single hand-off slot (never completes startup).
    let _parked = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // The third connection must be refused, not queued.
    match Client::connect(addr, "carol") {
        Err(ClientError::Rejected { code, message }) => {
            assert_eq!(code, "53300");
            assert!(message.contains("too many sessions"), "{message}");
        }
        Err(other) => panic!("expected a 53300 rejection, got {other:?}"),
        Ok(_) => panic!("expected a 53300 rejection, got a session"),
    }

    c1.terminate().unwrap();
    server.shutdown().unwrap();
}

/// End-to-end tracing: 8 concurrent clients issue traced commits; the
/// server's journal export must show, for every committed query's trace
/// id, the request span plus a WAL-fsync event (the real span on the
/// batch leader, the shared-attribution event on followers), and morsel
/// worker task events must carry the trace of the query that fanned out.
#[test]
fn traced_queries_export_complete_traces() {
    const WRITERS: usize = 8;

    let dir = scratch("trace");
    std::fs::remove_dir_all(&dir).ok();
    let csv = seed_csv("trace");
    let server = start_server(
        WRITERS + 1,
        EngineConfig {
            data_dir: Some(dir.clone()),
            threads: 2,
            linger: Duration::from_millis(20),
            ..EngineConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut admin = Client::connect(addr, "admin").unwrap();
    tag_of(&mut admin, &init_line(&csv));

    // Trace-unaware clients still get a server-minted trace id back.
    let minted = admin.query("whoami").unwrap().trace();
    assert!(
        minted.is_some_and(|t| t != 0),
        "no minted trace: {minted:?}"
    );

    // One traced commit per writer, under caller-chosen trace ids.
    let commit_traces: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    let mut c = Client::connect(addr, &format!("w{w}")).unwrap();
                    let trace = 0x7e57_0000_0000_0100 + w as u64;
                    let table = format!("tw{w}");
                    tag_of(&mut c, &format!("checkout t -v 0 -t {table}"));
                    tag_of(&mut c, &format!("insert {table} {},{w},0", 2000 + w));
                    let reply = c
                        .query_traced(&format!("commit -t {table} -m t{w}"), trace)
                        .unwrap();
                    assert!(reply.error().is_none(), "{:?}", reply.error());
                    assert_eq!(reply.trace(), Some(trace), "wire trace must be echoed");
                    c.terminate().unwrap();
                    trace
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // A traced parallel read: morsel worker spans re-attach to it.
    let read_trace = 0x7e57_0000_0000_1000u64;
    let reply = admin
        .query_traced("run SELECT * FROM VERSION 0 OF CVD t", read_trace)
        .unwrap();
    assert!(reply.error().is_none(), "{:?}", reply.error());
    assert_eq!(reply.trace(), Some(read_trace));

    // Export the journal and index event names by trace id.
    let dump = tag_of(&mut admin, "trace dump --json");
    let mut by_trace: std::collections::HashMap<u64, Vec<String>> =
        std::collections::HashMap::new();
    for line in dump.lines().filter(|l| !l.trim().is_empty()) {
        let ev = obs::json::parse(line).expect("chrome trace line must parse");
        let name = ev
            .get("name")
            .and_then(obs::json::Json::as_str)
            .expect("event has a name")
            .to_owned();
        let trace = ev
            .get_path("args/trace")
            .and_then(obs::json::Json::as_str)
            .expect("event has args.trace");
        let trace = u64::from_str_radix(trace.trim_start_matches("0x"), 16).unwrap();
        by_trace.entry(trace).or_default().push(name);
    }

    for &trace in &commit_traces {
        let names = by_trace
            .get(&trace)
            .unwrap_or_else(|| panic!("no journal events for commit trace {trace:#x}"));
        assert!(
            names.iter().any(|n| n == "orpheus.request"),
            "commit trace {trace:#x} lost its request span: {names:?}"
        );
        assert!(
            names
                .iter()
                .any(|n| n == "pagestore.wal.fsync" || n == "pagestore.wal.fsync.shared"),
            "commit trace {trace:#x} has no WAL-fsync attribution: {names:?}"
        );
    }
    let read_names = by_trace
        .get(&read_trace)
        .unwrap_or_else(|| panic!("no journal events for read trace {read_trace:#x}"));
    assert!(
        read_names.iter().any(|n| n == "exec.pool.task"),
        "worker events did not re-attach to the read trace: {read_names:?}"
    );

    admin.terminate().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&csv).ok();
}

/// Pinned snapshots are immutable: a writer's commit is invisible until
/// the reader re-pins.
#[test]
fn snapshot_isolation_across_sessions() {
    let csv = seed_csv("iso");
    let server = start_server(4, EngineConfig::default());
    let addr = server.local_addr();

    let mut admin = Client::connect(addr, "admin").unwrap();
    tag_of(&mut admin, &init_line(&csv));

    let mut reader = Client::connect(addr, "reader").unwrap();
    let pin0 = tag_of(&mut reader, "pin t");
    assert!(pin0.starts_with("PIN t@v0 (1 versions)"), "{pin0}");
    let before = reader
        .query("run SELECT vid, count(*) FROM CVD t GROUP BY vid")
        .unwrap()
        .render();

    let mut writer = Client::connect(addr, "writer").unwrap();
    tag_of(&mut writer, "checkout t -v 0 -t wtab");
    tag_of(&mut writer, "insert wtab 999,9,9");
    assert_eq!(tag_of(&mut writer, "commit -t wtab -m grow"), "COMMIT v1");

    // Pinned view unchanged; the engine view (log) already moved on.
    let after = reader
        .query("run SELECT vid, count(*) FROM CVD t GROUP BY vid")
        .unwrap()
        .render();
    assert_eq!(before, after);
    assert!(tag_of(&mut reader, "log t").contains("* v1"));

    // Re-pin: the new version becomes visible.
    tag_of(&mut reader, "pin t");
    let repinned = reader
        .query("run SELECT vid, count(*) FROM CVD t GROUP BY vid")
        .unwrap()
        .render();
    assert_ne!(before, repinned);
    // v1 = the 20 seed rows plus the writer's insert.
    assert!(repinned.contains("1 | 21"), "{repinned}");

    reader.terminate().unwrap();
    writer.terminate().unwrap();
    admin.terminate().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_file(&csv).ok();
}
