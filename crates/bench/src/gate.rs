//! The CI perf-regression gate's comparison engine.
//!
//! Compares a freshly produced metrics snapshot (`metrics_smoke.json`
//! from the `obs_smoke` workload) against the checked-in baseline with
//! per-key tolerances. The gated quantities are the *deterministic* work
//! counters — page reads, WAL appends/fsyncs, tracker tuples/evals —
//! which this repository uses as its machine-independent perf proxy
//! throughout; wall-clock latency fields are never gated (CI hosts vary),
//! but the deterministic `count` of each latency histogram is.
//!
//! A counter may regress (exceed baseline by more than its tolerance) →
//! gate failure. A counter may *improve* past tolerance → the gate
//! passes but asks for a baseline refresh, so the better number becomes
//! the new floor.

use obs::Json;

/// Relative tolerance for a metric key, or `None` when the key is not
/// gated. Sections are `counters`, `gauges`, `histograms`.
pub fn tolerance(section: &str, key: &str) -> Option<f64> {
    match section {
        // Estimated-cost tracker counters are fully deterministic —
        // tightest band.
        "counters" if key.starts_with("relstore.tracker.") => Some(0.05),
        // Page/WAL traffic is deterministic given a fixed pool size, but
        // leave headroom for benign layout drift.
        "counters" => Some(0.10),
        // Hit ratio is a quality gauge: gated on the downside only (a
        // higher ratio is never a regression).
        "gauges" if key == "pagestore.pool.hit_ratio" => Some(0.15),
        // Latency histograms: the event counts are deterministic and
        // gated exactly; the microsecond fields are host noise.
        "histograms" if key.ends_with("/count") => Some(0.0),
        _ => None,
    }
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Keys whose current value regressed past tolerance (gate fails).
    pub regressions: Vec<String>,
    /// Keys whose current value improved past tolerance (refresh hint).
    pub improvements: Vec<String>,
    /// Gated keys checked.
    pub checked: usize,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn flatten(v: &Json, prefix: String, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((prefix, *n)),
        Json::Obj(m) => {
            for (k, v) in m {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                flatten(v, p, out);
            }
        }
        _ => {}
    }
}

fn numeric_keys(doc: &Json, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(v) = doc.get(section) {
        flatten(v, String::new(), &mut out);
    }
    out
}

/// Compare `current` against `baseline`. Every gated key present in the
/// baseline must exist in the current snapshot (a vanished counter is a
/// regression: the instrumentation was lost).
pub fn compare(baseline: &Json, current: &Json) -> GateReport {
    let mut report = GateReport::default();
    for section in ["counters", "gauges", "histograms"] {
        for (key, base) in numeric_keys(baseline, section) {
            let Some(tol) = tolerance(section, &key) else {
                continue;
            };
            report.checked += 1;
            let path = format!("{section}/{key}");
            let Some(cur) = current.get_path(&path).and_then(Json::as_f64) else {
                report
                    .regressions
                    .push(format!("{path}: present in baseline, missing from current"));
                continue;
            };
            // `hit_ratio` is higher-is-better; everything else gated is
            // a work counter where higher is worse.
            let higher_is_better = key == "pagestore.pool.hit_ratio";
            let (worse, better) = if higher_is_better {
                (base - cur, cur - base)
            } else {
                (cur - base, base - cur)
            };
            let band = base.abs() * tol;
            // Exactly-gated keys (tolerance 0) regress on drift in either
            // direction — a vanished histogram observation is lost
            // instrumentation, not a win.
            let drifted = worse > band + f64::EPSILON || (tol == 0.0 && better > f64::EPSILON);
            if drifted {
                report.regressions.push(format!(
                    "{path}: baseline {base}, current {cur} (beyond ±{:.0}%)",
                    tol * 100.0
                ));
            } else if better > band + f64::EPSILON {
                report
                    .improvements
                    .push(format!("{path}: baseline {base}, current {cur}"));
            }
        }
    }
    report
}

/// Absolute assertions over the `parallel_scaling.json` results document.
///
/// Unlike [`compare`], these need no baseline: the zero-copy counters are
/// machine-independent and gated exactly —
///
/// * `bytes_copied_to_workers` must be **zero**: every page shipped to a
///   morsel worker on the scan path went as a lease, not a copy;
/// * `morsel_allocs` must stay within the budget the benchmark computed
///   (one scratch row per worker per parallel join run) — the hot loop
///   must not allocate per morsel or per row;
///
/// — and the wall-clock leg is honest about cores: when it `ran` (host
/// had the cores), the measured checkout speedup must meet the recorded
/// `min_speedup`; when it did not, a non-empty `skip_reason` must be
/// recorded — a *silently* skipped leg is itself a regression.
pub fn check_scaling(doc: &Json) -> GateReport {
    let mut report = GateReport::default();
    let num = |path: &str| doc.get_path(path).and_then(Json::as_f64);

    report.checked += 1;
    match num("zero_copy/bytes_copied_to_workers") {
        Some(0.0) => {}
        Some(b) => report.regressions.push(format!(
            "zero_copy/bytes_copied_to_workers: {b} (must be 0 — scan-path pages must ship as leases)"
        )),
        None => report
            .regressions
            .push("zero_copy/bytes_copied_to_workers: missing from results".into()),
    }

    report.checked += 1;
    match (
        num("zero_copy/morsel_allocs"),
        num("zero_copy/morsel_allocs_budget"),
    ) {
        (Some(allocs), Some(budget)) if allocs <= budget => {}
        (Some(allocs), Some(budget)) => report.regressions.push(format!(
            "zero_copy/morsel_allocs: {allocs} exceeds budget {budget} (per-morsel allocation crept back into the hot loop)"
        )),
        _ => report
            .regressions
            .push("zero_copy/morsel_allocs(+_budget): missing from results".into()),
    }

    report.checked += 1;
    match doc.get_path("wall_clock_leg/ran") {
        Some(Json::Bool(true)) => {
            let speedup = num("wall_clock_leg/checkout_speedup").unwrap_or(0.0);
            let floor = num("wall_clock_leg/min_speedup").unwrap_or(0.0);
            if speedup + f64::EPSILON < floor {
                report.regressions.push(format!(
                    "wall_clock_leg/checkout_speedup: {speedup:.2}x below the {floor:.1}x floor"
                ));
            }
        }
        Some(Json::Bool(false)) => {
            let reason = doc
                .get_path("wall_clock_leg/skip_reason")
                .and_then(Json::as_str)
                .unwrap_or("");
            if reason.is_empty() {
                report
                    .regressions
                    .push("wall_clock_leg: skipped without a recorded skip_reason".into());
            }
        }
        _ => report
            .regressions
            .push("wall_clock_leg/ran: missing from results".into()),
    }

    report
}

/// Absolute assertions over the `frontier_smoke.json` results document
/// (the page-format storage/recreation gate).
///
/// Baseline-free, like [`check_scaling`]: for every dataset the Delta
/// format must *strictly* undercut Flat's stored bytes and clear the
/// recorded `min_reduction_pct`; every frontier point must respect its
/// budget (`storage_records ≤ beta`) and more budget must never worsen
/// the objective (ΣR at the loosest factor ≤ ΣR at the tightest); the
/// budget-oracle leg must stay within its recorded LMG/exact ratio bound
/// or record why it was skipped; and the full (1M) tier must either have
/// run or carry a skip reason — a silently dropped leg is a regression.
/// Wall-clock checkout times are reported but never gated.
pub fn check_frontier(doc: &Json) -> GateReport {
    let mut report = GateReport::default();
    let num = |v: &Json, path: &str| v.get_path(path).and_then(Json::as_f64);

    let datasets = match doc.get("datasets") {
        Some(Json::Arr(d)) if !d.is_empty() => d.as_slice(),
        _ => {
            report.regressions.push("datasets: missing or empty".into());
            report.checked += 1;
            &[]
        }
    };
    for (i, ds) in datasets.iter().enumerate() {
        let name = ds
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        report.checked += 1;
        match (
            num(ds, "storage/flat_bytes"),
            num(ds, "storage/delta_bytes"),
        ) {
            (Some(flat), Some(delta)) if delta < flat => {}
            (Some(flat), Some(delta)) => report.regressions.push(format!(
                "datasets[{i}] {name}: delta_bytes {delta} must be strictly below flat_bytes {flat}"
            )),
            _ => report.regressions.push(format!(
                "datasets[{i}] {name}: storage/flat_bytes or delta_bytes missing"
            )),
        }
        report.checked += 1;
        match (
            num(ds, "storage/reduction_pct"),
            num(ds, "storage/min_reduction_pct"),
        ) {
            (Some(got), Some(floor)) if got + f64::EPSILON >= floor => {}
            (Some(got), Some(floor)) => report.regressions.push(format!(
                "datasets[{i}] {name}: reduction {got:.1}% below the {floor:.0}% floor"
            )),
            _ => report.regressions.push(format!(
                "datasets[{i}] {name}: storage/reduction_pct(+min) missing"
            )),
        }
        report.checked += 1;
        match ds.get("frontier") {
            Some(Json::Arr(points)) if !points.is_empty() => {
                for (j, p) in points.iter().enumerate() {
                    match (num(p, "storage_records"), num(p, "beta")) {
                        (Some(s), Some(b)) if s <= b => {}
                        (Some(s), Some(b)) => report.regressions.push(format!(
                            "datasets[{i}] {name} frontier[{j}]: storage {s} exceeds budget β {b}"
                        )),
                        _ => report.regressions.push(format!(
                            "datasets[{i}] {name} frontier[{j}]: storage_records or beta missing"
                        )),
                    }
                }
                let first = num(&points[0], "sum_recreation");
                let last = points.last().and_then(|p| num(p, "sum_recreation"));
                match (first, last) {
                    (Some(tight), Some(loose)) if loose <= tight => {}
                    (Some(tight), Some(loose)) => report.regressions.push(format!(
                        "datasets[{i}] {name}: ΣR worsened with budget ({tight} → {loose})"
                    )),
                    _ => report.regressions.push(format!(
                        "datasets[{i}] {name}: frontier sum_recreation missing"
                    )),
                }
            }
            _ => report
                .regressions
                .push(format!("datasets[{i}] {name}: frontier missing or empty")),
        }
    }

    report.checked += 1;
    match doc.get_path("budget_oracle/ran") {
        Some(Json::Bool(true)) => {
            match (
                num(doc, "budget_oracle/worst_ratio"),
                num(doc, "budget_oracle/max_ratio"),
            ) {
                (Some(worst), Some(max)) if worst <= max => {}
                (Some(worst), Some(max)) => report.regressions.push(format!(
                    "budget_oracle: LMG/exact ratio {worst:.3} above the {max:.1} bound"
                )),
                _ => report
                    .regressions
                    .push("budget_oracle: worst_ratio/max_ratio missing".into()),
            }
        }
        Some(Json::Bool(false)) => {
            let reason = doc
                .get_path("budget_oracle/skip_reason")
                .and_then(Json::as_str)
                .unwrap_or("");
            if reason.is_empty() {
                report
                    .regressions
                    .push("budget_oracle: skipped without a recorded skip_reason".into());
            }
        }
        _ => report
            .regressions
            .push("budget_oracle/ran: missing from results".into()),
    }

    report.checked += 1;
    match doc.get_path("full_tier/ran") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            let reason = doc
                .get_path("full_tier/skip_reason")
                .and_then(Json::as_str)
                .unwrap_or("");
            if reason.is_empty() {
                report
                    .regressions
                    .push("full_tier: skipped without a recorded skip_reason".into());
            }
        }
        _ => report
            .regressions
            .push("full_tier/ran: missing from results".into()),
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(logical_reads: f64, tuples: f64, hit: f64, commits: f64) -> Json {
        obs::parse(&format!(
            r#"{{
              "counters": {{
                "pagestore.pool.logical_reads": {logical_reads},
                "relstore.tracker.tuples": {tuples}
              }},
              "gauges": {{ "pagestore.pool.hit_ratio": {hit} }},
              "histograms": {{
                "orpheus.commit.latency_us": {{ "count": {commits}, "p50": 1400 }}
              }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_snapshots_pass() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        let r = compare(&b, &b);
        assert!(r.passed(), "{:?}", r.regressions);
        assert!(r.improvements.is_empty());
        // logical_reads + tuples + hit_ratio + commit count are gated.
        assert_eq!(r.checked, 4);
    }

    #[test]
    fn counter_regression_fails() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        let c = snapshot(38.0, 140.0, 1.0, 3.0); // tuples +13.8% > 5%
        let r = compare(&b, &c);
        assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
        assert!(r.regressions[0].contains("relstore.tracker.tuples"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        let c = snapshot(41.0, 125.0, 1.0, 3.0); // +7.9% and +1.6%
        assert!(compare(&b, &c).passed());
    }

    #[test]
    fn improvement_passes_but_is_reported() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        let c = snapshot(20.0, 123.0, 1.0, 3.0);
        let r = compare(&b, &c);
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 1);
    }

    #[test]
    fn hit_ratio_gated_downward_only() {
        let b = snapshot(38.0, 123.0, 0.9, 3.0);
        let worse = snapshot(38.0, 123.0, 0.5, 3.0);
        assert!(!compare(&b, &worse).passed());
        let better = snapshot(38.0, 123.0, 1.0, 3.0);
        assert!(compare(&b, &better).passed());
    }

    #[test]
    fn histogram_count_exact_latency_ignored() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        // One lost commit observation fails even though p50 is ignored.
        let c = snapshot(38.0, 123.0, 1.0, 2.0);
        let r = compare(&b, &c);
        assert!(!r.passed());
        assert!(r.regressions[0].contains("latency_us/count"));
    }

    #[test]
    fn missing_gated_key_fails() {
        let b = snapshot(38.0, 123.0, 1.0, 3.0);
        let c = obs::parse(r#"{"counters": {}, "gauges": {}, "histograms": {}}"#).unwrap();
        let r = compare(&b, &c);
        assert!(!r.passed());
        assert!(r.regressions.iter().any(|m| m.contains("missing")));
    }

    fn scaling_doc(
        copied: f64,
        allocs: f64,
        budget: f64,
        ran: bool,
        reason: &str,
        speedup: f64,
    ) -> Json {
        obs::parse(&format!(
            r#"{{
              "cores": 1,
              "zero_copy": {{
                "bytes_copied_to_workers": {copied},
                "morsel_allocs": {allocs},
                "morsel_allocs_budget": {budget}
              }},
              "wall_clock_leg": {{
                "ran": {ran},
                "skip_reason": "{reason}",
                "threads": 4,
                "min_speedup": 2.0,
                "checkout_speedup": {speedup},
                "query_speedup": {speedup}
              }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn scaling_zero_copy_and_recorded_skip_passes() {
        let doc = scaling_doc(0.0, 28.0, 28.0, false, "host has 1 core(s)", 1.3);
        let r = check_scaling(&doc);
        assert!(r.passed(), "{:?}", r.regressions);
        assert_eq!(r.checked, 3);
    }

    #[test]
    fn scaling_coordinator_copies_fail() {
        let doc = scaling_doc(81920.0, 28.0, 28.0, false, "1 core", 1.3);
        let r = check_scaling(&doc);
        assert!(!r.passed());
        assert!(r.regressions[0].contains("bytes_copied_to_workers"));
    }

    #[test]
    fn scaling_alloc_budget_overrun_fails() {
        let doc = scaling_doc(0.0, 5000.0, 28.0, false, "1 core", 1.3);
        let r = check_scaling(&doc);
        assert!(!r.passed());
        assert!(r.regressions[0].contains("morsel_allocs"));
    }

    #[test]
    fn scaling_wall_leg_enforced_when_it_ran() {
        let fast = scaling_doc(0.0, 28.0, 28.0, true, "", 2.4);
        assert!(check_scaling(&fast).passed());
        let slow = scaling_doc(0.0, 28.0, 28.0, true, "", 1.1);
        let r = check_scaling(&slow);
        assert!(!r.passed());
        assert!(r.regressions[0].contains("below the 2.0x floor"));
    }

    #[test]
    fn scaling_silent_skip_fails() {
        let doc = scaling_doc(0.0, 28.0, 28.0, false, "", 0.9);
        let r = check_scaling(&doc);
        assert!(!r.passed());
        assert!(r.regressions[0].contains("without a recorded skip_reason"));
    }

    #[test]
    fn scaling_missing_counters_fail() {
        let doc = obs::parse(r#"{"cores": 1}"#).unwrap();
        let r = check_scaling(&doc);
        assert_eq!(r.regressions.len(), 3, "{:?}", r.regressions);
    }

    // lint:allow too_many_arguments — fixture builder: each test names only
    // the knob it perturbs, a params struct would just duplicate the JSON.
    #[allow(clippy::too_many_arguments)]
    fn frontier_doc(
        flat: f64,
        delta: f64,
        reduction: f64,
        storage: f64,
        beta: f64,
        sum_tight: f64,
        sum_loose: f64,
        worst_ratio: f64,
        full_ran: bool,
        full_reason: &str,
    ) -> Json {
        obs::parse(&format!(
            r#"{{
              "tier": "smoke",
              "datasets": [
                {{
                  "name": "SCI_SMOKE",
                  "versions": 60,
                  "records": 2400,
                  "storage": {{
                    "flat_bytes": {flat},
                    "delta_bytes": {delta},
                    "reduction_pct": {reduction},
                    "min_reduction_pct": 10.0
                  }},
                  "recreation": {{
                    "sampled_versions": 12,
                    "flat_ms_per_checkout": 1.0,
                    "delta_ms_per_checkout": 1.2,
                    "delta_decoded_tuples": 9000
                  }},
                  "frontier": [
                    {{"factor": 1.0, "beta": {beta}, "min_storage": {beta},
                      "storage_records": {storage}, "sum_recreation": {sum_tight},
                      "max_recreation": 900, "materialized": 1}},
                    {{"factor": 5.0, "beta": {b5}, "min_storage": {beta},
                      "storage_records": {storage}, "sum_recreation": {sum_loose},
                      "max_recreation": 400, "materialized": 7}}
                  ]
                }}
              ],
              "budget_oracle": {{
                "ran": true, "skip_reason": "", "cases": 12,
                "worst_ratio": {worst_ratio}, "max_ratio": 1.5
              }},
              "full_tier": {{ "ran": {full_ran}, "skip_reason": "{full_reason}" }}
            }}"#,
            b5 = beta * 5.0,
        ))
        .unwrap()
    }

    fn good_frontier() -> Json {
        frontier_doc(
            100_000.0,
            40_000.0,
            60.0,
            5000.0,
            5000.0,
            9000.0,
            4000.0,
            1.1,
            false,
            "tier runs locally",
        )
    }

    #[test]
    fn frontier_good_doc_passes() {
        let r = check_frontier(&good_frontier());
        assert!(r.passed(), "{:?}", r.regressions);
        // 3 per dataset + oracle + full-tier contract.
        assert_eq!(r.checked, 5);
    }

    #[test]
    fn frontier_delta_not_smaller_fails() {
        let doc = frontier_doc(
            100_000.0, 100_000.0, 0.0, 5000.0, 5000.0, 9000.0, 4000.0, 1.1, false, "local",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("strictly below flat_bytes")));
    }

    #[test]
    fn frontier_reduction_floor_enforced() {
        let doc = frontier_doc(
            100_000.0, 98_000.0, 2.0, 5000.0, 5000.0, 9000.0, 4000.0, 1.1, false, "local",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("below the 10% floor")));
    }

    #[test]
    fn frontier_budget_overrun_fails() {
        let doc = frontier_doc(
            100_000.0, 40_000.0, 60.0, 6000.0, 5000.0, 9000.0, 4000.0, 1.1, false, "local",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r.regressions.iter().any(|m| m.contains("exceeds budget")));
    }

    #[test]
    fn frontier_recreation_must_not_worsen_with_budget() {
        let doc = frontier_doc(
            100_000.0, 40_000.0, 60.0, 5000.0, 5000.0, 4000.0, 9000.0, 1.1, false, "local",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("worsened with budget")));
    }

    #[test]
    fn frontier_oracle_ratio_bound_enforced() {
        let doc = frontier_doc(
            100_000.0, 40_000.0, 60.0, 5000.0, 5000.0, 9000.0, 4000.0, 2.7, false, "local",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("above the 1.5 bound")));
    }

    #[test]
    fn frontier_silent_full_tier_skip_fails() {
        let doc = frontier_doc(
            100_000.0, 40_000.0, 60.0, 5000.0, 5000.0, 9000.0, 4000.0, 1.1, false, "",
        );
        let r = check_frontier(&doc);
        assert!(!r.passed());
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("full_tier: skipped without a recorded skip_reason")));
    }

    #[test]
    fn frontier_empty_doc_fails_everything() {
        let doc = obs::parse(r#"{"tier": "smoke"}"#).unwrap();
        let r = check_frontier(&doc);
        assert_eq!(r.regressions.len(), 3, "{:?}", r.regressions);
    }
}
