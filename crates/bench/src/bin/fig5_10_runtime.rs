//! Fig. 5.10 / 5.12 — running time of the partitioning algorithms: the
//! end-to-end binary search for Problem 5.1 (γ = 2|R|) and the time per
//! search iteration, on SCI_* and CUR_* datasets.
//!
//! Expected shape: LyreSplit (operating on the version tree) is orders of
//! magnitude faster than Agglo and KMeans (operating on the bipartite
//! graph), and the gap widens with dataset size.

use bench::{ms, time};
use benchgen::{generate, DatasetSpec};
use partition::baselines::{agglo_for_budget, kmeans_for_budget};
use partition::{lyresplit_for_budget, AggloParams, KmeansParams};

fn main() {
    bench::banner(
        "Fig 5.10 / 5.12: partitioning algorithm running time",
        "Fig. 5.10(a,b), 5.12 — total binary-search time and per-iteration time",
    );
    let specs = [
        DatasetSpec::sci("SCI_10K", 1000, 100, 10),
        DatasetSpec::sci("SCI_50K", 1000, 100, 50),
        DatasetSpec::sci("SCI_100K", 2000, 200, 50),
        DatasetSpec::cur("CUR_10K", 1000, 100, 10),
        DatasetSpec::cur("CUR_50K", 1000, 100, 50),
    ];
    bench::header(&[
        "dataset",
        "algorithm",
        "total ms",
        "per-iter ms",
        "S (records)",
    ]);
    for spec in specs {
        let d = generate(&spec);
        let tree = d.tree();
        let bipartite = &d.bipartite;
        let gamma = 2 * d.num_records();

        let (res, t) = time(|| lyresplit_for_budget(&tree, gamma));
        bench::row(&[
            spec.name.clone(),
            "LyreSplit".into(),
            ms(t),
            format!(
                "{:.2}",
                t.as_secs_f64() * 1e3 / res.search_iterations.max(1) as f64
            ),
            res.partitioning
                .evaluate(bipartite)
                .storage_records
                .to_string(),
        ]);

        let (p, t) = time(|| agglo_for_budget(bipartite, gamma, AggloParams::default()));
        bench::row(&[
            spec.name.clone(),
            "Agglo".into(),
            ms(t),
            format!("{:.2}", t.as_secs_f64() * 1e3 / 12.0),
            p.evaluate(bipartite).storage_records.to_string(),
        ]);

        // KMeans is the slowest by far (the paper caps it at 10 hours); we
        // cap the iteration count instead and skip the largest dataset.
        if d.num_records() <= 60_000 {
            let (p, t) = time(|| {
                kmeans_for_budget(
                    bipartite,
                    gamma,
                    KmeansParams {
                        iterations: 3,
                        ..KmeansParams::default()
                    },
                )
            });
            bench::row(&[
                spec.name.clone(),
                "KMeans".into(),
                ms(t),
                format!("{:.2}", t.as_secs_f64() * 1e3 / 10.0),
                p.evaluate(bipartite).storage_records.to_string(),
            ]);
        } else {
            bench::row(&[
                spec.name.clone(),
                "KMeans".into(),
                "capped".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        println!();
    }
}
