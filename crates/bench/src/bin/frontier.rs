//! frontier — storage bytes vs recreation cost across page formats and
//! materialization budgets.
//!
//! Loads SCI/CUR datasets in the split-by-rlist layout twice — once per
//! page format (Flat, Delta) — and measures the physical bytes each
//! format puts on pages, the wall cost of recreating (checking out)
//! sampled versions, and the storage/recreation frontier swept by the
//! `ORPHEUS_MAT_BUDGET` factor through `deltastore::plan_with_budget`.
//! A branch-and-bound oracle leg validates the budget planner on
//! exhaustively solvable instances.
//!
//! Two tiers: the default smoke tier (small, seconds — the CI gate) and
//! `ORPHEUS_FRONTIER_TIER=full` (SCI/CUR at 1M+ records, thousands of
//! versions — run locally; numbers live in EXPERIMENTS.md). The tier
//! that did NOT run is recorded in the results document with a skip
//! reason — never silently dropped. Output JSON is self-checked against
//! the pinned schema below and gated by `perf_gate` via
//! `bench::gate::check_frontier`.

use benchgen::{generate, DatasetSpec, VersionedDataset};
use deltastore::exact::{solve_exact, ExactProblem};
use deltastore::{plan_with_budget, GenConfig, GraphShape, StorageGraph};
use obs::Json;
use relstore::codec::PageFormatKind;
use relstore::{Column, DataType, Database, Schema, Value};
use std::process::ExitCode;

/// Budget factors swept for the frontier (β = factor × C_min).
const FACTORS: [f64; 6] = [1.0, 1.25, 1.5, 2.0, 3.0, 5.0];

/// Required keys of the results document — the pinned schema the CI
/// gate (and this binary itself) checks with `obs::missing_keys`.
const SCHEMA: [&str; 8] = [
    "tier",
    "datasets",
    "budget_oracle/ran",
    "budget_oracle/skip_reason",
    "budget_oracle/worst_ratio",
    "budget_oracle/max_ratio",
    "full_tier/ran",
    "full_tier/skip_reason",
];

/// Delta must undercut Flat by at least this much, per tier. The smoke
/// datasets are small (dictionary/bitpack wins are diluted by page
/// slack); the full tier carries the paper-scale ≥30% acceptance bar.
fn min_reduction_pct(full: bool) -> f64 {
    if full {
        30.0
    } else {
        10.0
    }
}

/// Load a dataset into a fresh catalog under one page format, in the
/// split-by-rlist layout: `{name}__sbr_data` holds every record,
/// `{name}__sbr_vtab` maps each version to its sorted rlist.
fn load(d: &VersionedDataset, kind: PageFormatKind) -> Database {
    let mut db = Database::with_pool_capacity(4096);
    db.set_default_format(kind);
    let mut cols = vec![Column::new("k", DataType::Int64)];
    for i in 1..d.spec.num_attrs {
        cols.push(Column::new(format!("a{i}"), DataType::Int64));
    }
    let data_name = format!("{}__sbr_data", d.spec.name);
    let vtab_name = format!("{}__sbr_vtab", d.spec.name);
    db.create_table(&data_name, Schema::new(cols)).unwrap();
    let data = db.table_mut(&data_name).unwrap();
    for rid in 0..d.num_records() {
        let row = d
            .record(partition::Rid(rid))
            .iter()
            .map(|&x| Value::Int64(x))
            .collect();
        data.insert(row).unwrap();
    }
    db.create_table(
        &vtab_name,
        Schema::new(vec![
            Column::new("v", DataType::Int64),
            Column::new("rlist", DataType::IntArray),
        ]),
    )
    .unwrap();
    let vtab = db.table_mut(&vtab_name).unwrap();
    for v in d.versions() {
        let rlist: Vec<i64> = d.version_records(v).iter().map(|r| r.0 as i64).collect();
        vtab.insert(vec![Value::Int64(v.0 as i64), Value::IntArray(rlist)])
            .unwrap();
    }
    db
}

/// Recreate (check out) the sampled versions through the vtab: read the
/// version's rlist, then fetch every record — the decode-heavy path the
/// page format pays for. Returns (ms per checkout, tuples decoded).
fn checkout_sample(db: &Database, name: &str, samples: &[partition::Vid]) -> (f64, u64) {
    let data = db.table(&format!("{name}__sbr_data")).unwrap();
    let vtab = db.table(&format!("{name}__sbr_vtab")).unwrap();
    let before = db.io_stats();
    let (rows, t) = bench::time(|| {
        let mut rows = 0u64;
        for &v in samples {
            let vrow = vtab.get(v.0 as u64).expect("version row");
            let Value::IntArray(rlist) = &vrow[1] else {
                panic!("vtab rlist must be an IntArray");
            };
            for &rid in rlist {
                let r = data.get(rid as u64).expect("record");
                rows += r.len() as u64;
            }
        }
        rows
    });
    assert!(rows > 0, "checkout produced no attribute values");
    let decoded = db.io_stats().since(&before).tuples_decoded;
    (t.as_secs_f64() * 1e3 / samples.len() as f64, decoded)
}

/// The deltastore graph of a generated dataset: node `i+1` per version
/// `Vid(i)`, materialization cost = version size, parent→child delta =
/// symmetric-difference size (both in records, as `plan_storage` does).
fn storage_graph(d: &VersionedDataset) -> StorageGraph {
    let mut g = StorageGraph::new(d.num_versions(), false);
    for v in d.versions() {
        let node = v.idx() + 1;
        let size = d.version_records(v).len() as u64;
        g.add_materialization(node, size, size);
        for &p in d.graph.parents(v) {
            let common = d.graph.weight(p, v);
            let psize = d.version_records(p).len() as u64;
            let delta = (psize + size - 2 * common).max(1);
            g.add_delta(p.idx() + 1, node, delta, delta);
        }
    }
    g
}

/// One dataset's section of the results document.
fn run_dataset(spec: &DatasetSpec, full: bool) -> Json {
    let d = generate(spec);
    let stats = d.stats();
    println!("--- {} ---", stats);

    let n_samples = if full { 24 } else { 12 };
    let samples = bench::sample_versions(d.num_versions(), n_samples);
    let prefix = format!("{}__sbr", spec.name);

    let mut bytes = [0usize; 2];
    let mut ms = [0f64; 2];
    let mut decoded = [0u64; 2];
    for (i, kind) in [PageFormatKind::Flat, PageFormatKind::Delta]
        .into_iter()
        .enumerate()
    {
        let db = load(&d, kind);
        bytes[i] = db.encoded_bytes_with_prefix(&prefix).unwrap();
        let (per_checkout, n) = checkout_sample(&db, &spec.name, &samples);
        ms[i] = per_checkout;
        decoded[i] = n;
    }
    let reduction = 100.0 * (1.0 - bytes[1] as f64 / bytes[0] as f64);
    println!(
        "storage: flat {} B, delta {} B ({reduction:.1}% smaller); checkout {:.2} ms (flat) vs {:.2} ms (delta) over {} versions",
        bytes[0], bytes[1], ms[0], ms[1], samples.len()
    );

    // The storage/recreation frontier: sweep the budget factor.
    let g = storage_graph(&d);
    let frontier: Vec<Json> = FACTORS
        .iter()
        .map(|&factor| {
            let plan = plan_with_budget(&g, factor);
            println!(
                "  β = {:>12} ({factor}× min {}): storage {:>12}, ΣR {:>14}, maxR {:>12}, {} materialized",
                plan.beta,
                plan.min_storage,
                plan.solution.storage_cost(),
                plan.solution.sum_recreation(),
                plan.solution.max_recreation(),
                plan.materialized().len()
            );
            Json::object(vec![
                ("factor", Json::Num(factor)),
                ("beta", Json::Num(plan.beta as f64)),
                ("min_storage", Json::Num(plan.min_storage as f64)),
                ("storage_records", Json::Num(plan.solution.storage_cost() as f64)),
                ("sum_recreation", Json::Num(plan.solution.sum_recreation() as f64)),
                ("max_recreation", Json::Num(plan.solution.max_recreation() as f64)),
                ("materialized", Json::Num(plan.materialized().len() as f64)),
            ])
        })
        .collect();

    Json::object(vec![
        ("name", Json::Str(spec.name.clone())),
        ("versions", Json::Num(stats.versions as f64)),
        ("records", Json::Num(stats.records as f64)),
        (
            "storage",
            Json::object(vec![
                ("flat_bytes", Json::Num(bytes[0] as f64)),
                ("delta_bytes", Json::Num(bytes[1] as f64)),
                ("reduction_pct", Json::Num(reduction)),
                ("min_reduction_pct", Json::Num(min_reduction_pct(full))),
            ]),
        ),
        (
            "recreation",
            Json::object(vec![
                ("sampled_versions", Json::Num(samples.len() as f64)),
                ("flat_ms_per_checkout", Json::Num(ms[0])),
                ("delta_ms_per_checkout", Json::Num(ms[1])),
                ("delta_decoded_tuples", Json::Num(decoded[1] as f64)),
            ]),
        ),
        ("frontier", Json::Arr(frontier)),
    ])
}

/// The oracle leg: the LMG budget plan vs branch-and-bound on small
/// exhaustively solvable instances. Cheap, so it always runs; the skip
/// contract exists for symmetry with the other recorded legs.
fn budget_oracle() -> Json {
    let mut worst: f64 = 1.0;
    let mut cases = 0u32;
    for seed in [11u64, 12, 13, 14] {
        let g = GenConfig {
            versions: 9,
            shape: GraphShape::Random,
            base_items: 200,
            adds_per_step: 30,
            removes_per_step: 10,
            extra_edges: 10,
            seed,
            ..GenConfig::default()
        }
        .build();
        for factor in [1.0, 1.5, 2.0] {
            let plan = plan_with_budget(&g, factor);
            let exact = solve_exact(
                &g,
                ExactProblem::MinSumRecreationStorage { beta: plan.beta },
            )
            .expect("β ≥ C_min is always feasible");
            worst =
                worst.max(plan.solution.sum_recreation() as f64 / exact.sum_recreation() as f64);
            cases += 1;
        }
    }
    println!("budget oracle: {cases} case(s), worst LMG/exact ratio {worst:.3}");
    Json::object(vec![
        ("ran", Json::Bool(true)),
        ("skip_reason", Json::Str(String::new())),
        ("cases", Json::Num(cases as f64)),
        ("worst_ratio", Json::Num(worst)),
        ("max_ratio", Json::Num(1.5)),
    ])
}

fn main() -> ExitCode {
    let full = std::env::var("ORPHEUS_FRONTIER_TIER")
        .map(|t| t == "full")
        .unwrap_or(false);
    bench::banner(
        "frontier: storage bytes vs recreation cost across page formats",
        "delta-compressed pages + materialization budget (Problems 7.1/7.3)",
    );
    let specs = if full {
        DatasetSpec::scale_presets()
    } else {
        vec![
            DatasetSpec::sci("SCI_SMOKE", 60, 8, 40),
            DatasetSpec::cur("CUR_SMOKE", 60, 8, 40),
        ]
    };
    let datasets: Vec<Json> = specs.iter().map(|s| run_dataset(s, full)).collect();

    let full_tier = if full {
        Json::object(vec![
            ("ran", Json::Bool(true)),
            ("skip_reason", Json::Str(String::new())),
        ])
    } else {
        Json::object(vec![
            ("ran", Json::Bool(false)),
            (
                "skip_reason",
                Json::Str(
                    "ORPHEUS_FRONTIER_TIER != full — the 1M-record tier runs locally; \
                     its numbers are recorded in EXPERIMENTS.md"
                        .into(),
                ),
            ),
        ])
    };
    let doc = Json::object(vec![
        (
            "tier",
            Json::Str(if full { "full" } else { "smoke" }.into()),
        ),
        ("datasets", Json::Arr(datasets)),
        ("budget_oracle", budget_oracle()),
        ("full_tier", full_tier),
    ]);

    // Self-check against the pinned schema before anything consumes it.
    let rendered = doc.to_string_pretty();
    let missing = obs::missing_keys(&rendered, &SCHEMA).expect("own output must parse");
    if !missing.is_empty() {
        eprintln!("frontier: output violates its schema, missing: {missing:?}");
        return ExitCode::FAILURE;
    }

    let report = bench::gate::check_frontier(&doc);
    if !report.passed() {
        for msg in &report.regressions {
            eprintln!("  FAIL {msg}");
        }
        eprintln!("frontier: {} assertion(s) failed", report.regressions.len());
        return ExitCode::FAILURE;
    }
    println!(
        "frontier: {} assertion(s) passed on the {} tier",
        report.checked,
        if full { "full" } else { "smoke" }
    );

    let dir = bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create results dir: {e}");
    }
    let name = if full {
        "frontier_full.json"
    } else {
        "frontier_smoke.json"
    };
    let path = dir.join(name);
    match std::fs::write(&path, rendered) {
        Ok(()) => println!("results: {}", path.display()),
        Err(e) => {
            eprintln!("frontier: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
