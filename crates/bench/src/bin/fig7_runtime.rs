//! Chapter 7 solver running times (§7.5): scaling of MST/arborescence,
//! SPT, LMG, and MP with the number of versions.

use bench::{ms, time};
use deltastore::{
    p1_min_storage, p2_min_recreation, p3_min_sum_recreation, p6_min_storage_max, GenConfig,
    GraphShape,
};

fn main() {
    bench::banner(
        "Ch. 7: solver running times",
        "§7.5 — algorithm scalability with the number of versions",
    );
    bench::header(&["versions", "edges", "MST ms", "SPT ms", "LMG ms", "MP ms"]);
    for n in [100usize, 250, 500, 1000, 2000] {
        let g = GenConfig {
            versions: n,
            shape: GraphShape::Random,
            base_items: 1000,
            adds_per_step: 50,
            removes_per_step: 15,
            extra_edges: 2 * n,
            directed: true,
            decouple_phi: false,
            seed: 5,
        }
        .build();
        let (mst, t_mst) = time(|| p1_min_storage(&g));
        let (spt, t_spt) = time(|| p2_min_recreation(&g));
        let beta = mst.storage_cost() * 2;
        let (_, t_lmg) = time(|| p3_min_sum_recreation(&g, beta));
        let theta = spt.max_recreation() * 2;
        let (_, t_mp) = time(|| p6_min_storage_max(&g, theta));
        bench::row(&[
            n.to_string(),
            g.num_edges().to_string(),
            ms(t_mst),
            ms(t_spt),
            ms(t_lmg),
            ms(t_mp),
        ]);
    }
}
