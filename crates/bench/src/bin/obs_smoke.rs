//! CI observability smoke test.
//!
//! Drives a scripted commit/checkout workload against a durable OrpheusDb
//! seeded from a benchgen dataset, then checks the two machine-readable
//! observability surfaces end to end:
//!
//! * `explain analyze [--json]` on a hash-join-over-versions query must
//!   produce a plan tree with estimated and actual row counts, and its
//!   JSON form must carry the documented schema;
//! * `metrics --json` must parse and contain the WAL fsync counter, the
//!   buffer-pool hit ratio gauge, and commit/checkout/query latency
//!   histogram percentiles.
//!
//! Any violation panics, so a broken pipeline fails `scripts/ci.sh`.

use benchgen::{generate, DatasetSpec};
use orpheus_core::{CommandOutput, OrpheusDb};
use partition::Vid;
use relstore::{Column, DataType, Schema, Value};

/// Unwrap a command's textual output.
fn text(out: CommandOutput) -> String {
    match out {
        CommandOutput::Message(s) => s,
        other => panic!("expected a text payload, got {other:?}"),
    }
}

/// Assert that a JSON document parses and contains every required path
/// (paths use `/` separators because metric names contain dots).
fn check_schema(what: &str, src: &str, required: &[&str]) {
    match obs::missing_keys(src, required) {
        Ok(missing) if missing.is_empty() => {}
        Ok(missing) => panic!("{what}: missing required keys {missing:?} in:\n{src}"),
        Err(e) => panic!("{what}: output is not valid JSON ({e}):\n{src}"),
    }
}

fn num(doc: &obs::Json, path: &str) -> f64 {
    doc.get_path(path)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("expected a number at {path}"))
}

fn main() {
    bench::banner(
        "observability smoke: explain analyze + metrics --json",
        "CI gate — span/metrics/explain pipeline on a benchgen workload",
    );
    let dir = std::env::temp_dir().join(format!("orpheus-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut db, _) = OrpheusDb::open_durable(&dir, 256).expect("open durable store");
    db.create_user("ci").unwrap();
    db.login("ci").unwrap();

    // Seed a CVD from a generated dataset's root version.
    let d = generate(&DatasetSpec::sci("SMOKE", 20, 4, 4));
    let schema = Schema::new(
        std::iter::once(Column::new("k", DataType::Int64))
            .chain((1..d.spec.num_attrs).map(|i| Column::new(format!("a{i}"), DataType::Int64)))
            .collect(),
    );
    let rows: Vec<Vec<Value>> = d
        .version_records(Vid(0))
        .iter()
        .map(|&rid| d.record(rid).iter().map(|&x| Value::Int64(x)).collect())
        .collect();
    let width = d.spec.num_attrs;
    db.init_cvd("SMOKE", schema, vec!["k".into()], rows)
        .expect("init cvd");

    // Scripted workload: checkout the latest version, add a row, commit.
    for round in 0..3i64 {
        let table = format!("work{round}");
        let latest = db.cvd("SMOKE").unwrap().latest_version();
        db.checkout("SMOKE", &[latest], &table).expect("checkout");
        let t = db.staging_table_mut(&table).unwrap();
        t.insert(
            (0..width)
                .map(|c| Value::Int64(10_000 + round * 100 + c as i64))
                .collect(),
        )
        .unwrap();
        db.commit(&table, "smoke round").expect("commit");
    }

    // A couple of reads so the query path shows up in the histograms.
    let count = match db
        .execute("run SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k")
        .expect("join query")
    {
        CommandOutput::Table(res) => res.rows.len(),
        other => panic!("expected a result table, got {other:?}"),
    };

    // explain analyze: text form shows the plan tree with estimates,
    // actuals, and the pool reconciliation footer.
    let plan = text(
        db.execute("explain analyze SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k")
            .expect("explain analyze"),
    );
    for needle in [
        "HashJoin",
        "SeqScan",
        "est rows=",
        "act rows=",
        "time=",
        "pool delta:",
    ] {
        assert!(
            plan.contains(needle),
            "explain analyze output lacks {needle:?}:\n{plan}"
        );
    }
    println!("{plan}\n");

    // JSON form must match the documented schema and agree with `run`.
    let plan_json = text(
        db.execute(
            "explain analyze --json SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k",
        )
        .expect("explain analyze --json"),
    );
    check_schema(
        "explain analyze --json",
        &plan_json,
        &[
            "plan/label",
            "plan/est_rows",
            "plan/act_rows",
            "plan/time_us",
            "plan/children",
            "pool_delta/logical_reads",
            "pool_delta/physical_reads",
            "wall_us",
        ],
    );
    let doc = obs::parse(&plan_json).unwrap();
    assert_eq!(
        num(&doc, "plan/act_rows") as usize,
        count,
        "explain analyze actual rows disagree with run()"
    );

    // metrics --json after the workload: WAL fsyncs, hit ratio, and the
    // three command latency histograms must all be present.
    let metrics = text(db.execute("metrics --json").expect("metrics --json"));
    check_schema(
        "metrics --json",
        &metrics,
        &[
            "counters/pagestore.wal.fsyncs",
            "counters/pagestore.pool.logical_reads",
            "counters/relstore.tracker.tuples",
            "gauges/pagestore.pool.hit_ratio",
            "histograms/orpheus.commit.latency_us/p50",
            "histograms/orpheus.commit.latency_us/p99",
            "histograms/orpheus.checkout.latency_us/p50",
            "histograms/orpheus.query.latency_us/p50",
        ],
    );
    let doc = obs::parse(&metrics).unwrap();
    assert!(
        num(&doc, "counters/pagestore.wal.fsyncs") > 0.0,
        "durable workload recorded no WAL fsyncs"
    );
    assert!(
        num(&doc, "histograms/orpheus.commit.latency_us/p50")
            <= num(&doc, "histograms/orpheus.commit.latency_us/p99"),
        "commit latency percentiles out of order"
    );

    // Span tree covers the whole command surface.
    let spans = text(db.execute("spans").expect("spans"));
    for needle in ["orpheus.commit", "orpheus.checkout", "orpheus.query"] {
        assert!(spans.contains(needle), "span tree lacks {needle}:\n{spans}");
    }

    match bench::write_metrics_snapshot("smoke", db.metrics()) {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("joined rows: {count}");
    println!("observability smoke: all checks passed");
}
