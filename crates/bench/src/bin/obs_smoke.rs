//! CI observability smoke test.
//!
//! Drives a scripted commit/checkout workload against a durable OrpheusDb
//! seeded from a benchgen dataset, then checks the two machine-readable
//! observability surfaces end to end:
//!
//! * `explain analyze [--json]` on a hash-join-over-versions query must
//!   produce a plan tree with estimated and actual row counts, and its
//!   JSON form must carry the documented schema;
//! * `metrics --json` must parse and contain the WAL fsync counter, the
//!   buffer-pool hit ratio gauge, commit/checkout/query latency
//!   histogram percentiles, and the `obs.journal.*` counters;
//! * `trace dump --json` must export Chrome-trace-event JSONL where
//!   every line carries the documented keys, with the request, commit,
//!   and WAL-fsync spans present under non-zero trace ids (a summary is
//!   written to `results/trace_smoke.json`);
//! * disabling the journal (`sample 0`) must record zero further
//!   journal allocations.
//!
//! Any violation panics, so a broken pipeline fails `scripts/ci.sh`.

use benchgen::{generate, DatasetSpec};
use orpheus_core::{CommandOutput, OrpheusDb};
use partition::Vid;
use relstore::{Column, DataType, Schema, Value};

/// Unwrap a command's textual output.
fn text(out: CommandOutput) -> String {
    match out {
        CommandOutput::Message(s) => s,
        other => panic!("expected a text payload, got {other:?}"),
    }
}

/// Assert that a JSON document parses and contains every required path
/// (paths use `/` separators because metric names contain dots).
fn check_schema(what: &str, src: &str, required: &[&str]) {
    match obs::missing_keys(src, required) {
        Ok(missing) if missing.is_empty() => {}
        Ok(missing) => panic!("{what}: missing required keys {missing:?} in:\n{src}"),
        Err(e) => panic!("{what}: output is not valid JSON ({e}):\n{src}"),
    }
}

fn num(doc: &obs::Json, path: &str) -> f64 {
    doc.get_path(path)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("expected a number at {path}"))
}

fn main() {
    bench::banner(
        "observability smoke: explain analyze + metrics --json",
        "CI gate — span/metrics/explain pipeline on a benchgen workload",
    );
    let dir = std::env::temp_dir().join(format!("orpheus-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut db, _) = OrpheusDb::open_durable(&dir, 256).expect("open durable store");
    db.create_user("ci").unwrap();
    db.login("ci").unwrap();

    // Seed a CVD from a generated dataset's root version.
    let d = generate(&DatasetSpec::sci("SMOKE", 20, 4, 4));
    let schema = Schema::new(
        std::iter::once(Column::new("k", DataType::Int64))
            .chain((1..d.spec.num_attrs).map(|i| Column::new(format!("a{i}"), DataType::Int64)))
            .collect(),
    );
    let rows: Vec<Vec<Value>> = d
        .version_records(Vid(0))
        .iter()
        .map(|&rid| d.record(rid).iter().map(|&x| Value::Int64(x)).collect())
        .collect();
    let width = d.spec.num_attrs;
    db.init_cvd("SMOKE", schema, vec!["k".into()], rows)
        .expect("init cvd");

    // Scripted workload: checkout the latest version, add a row, commit.
    // Driven through the command surface so each step is a traced
    // request and lands in the event journal.
    for round in 0..3i64 {
        let table = format!("work{round}");
        let latest = db.cvd("SMOKE").unwrap().latest_version();
        db.execute(&format!("checkout SMOKE -v {} -t {table}", latest.0))
            .expect("checkout");
        let row: Vec<String> = (0..width)
            .map(|c| (10_000 + round * 100 + c as i64).to_string())
            .collect();
        db.execute(&format!("insert {table} {}", row.join(",")))
            .expect("insert");
        db.execute(&format!("commit -t {table} -m smoke round"))
            .expect("commit");
    }

    // A couple of reads so the query path shows up in the histograms.
    let count = match db
        .execute("run SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k")
        .expect("join query")
    {
        CommandOutput::Table(res) => res.rows.len(),
        other => panic!("expected a result table, got {other:?}"),
    };

    // explain analyze: text form shows the plan tree with estimates,
    // actuals, and the pool reconciliation footer.
    let plan = text(
        db.execute("explain analyze SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k")
            .expect("explain analyze"),
    );
    for needle in [
        "HashJoin",
        "SeqScan",
        "est rows=",
        "act rows=",
        "time=",
        "pool delta:",
    ] {
        assert!(
            plan.contains(needle),
            "explain analyze output lacks {needle:?}:\n{plan}"
        );
    }
    println!("{plan}\n");

    // JSON form must match the documented schema and agree with `run`.
    let plan_json = text(
        db.execute(
            "explain analyze --json SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k",
        )
        .expect("explain analyze --json"),
    );
    check_schema(
        "explain analyze --json",
        &plan_json,
        &[
            "plan/label",
            "plan/est_rows",
            "plan/act_rows",
            "plan/time_us",
            "plan/children",
            "pool_delta/logical_reads",
            "pool_delta/physical_reads",
            "wall_us",
        ],
    );
    let doc = obs::parse(&plan_json).unwrap();
    assert_eq!(
        num(&doc, "plan/act_rows") as usize,
        count,
        "explain analyze actual rows disagree with run()"
    );

    // metrics --json after the workload: WAL fsyncs, hit ratio, and the
    // three command latency histograms must all be present.
    let metrics = text(db.execute("metrics --json").expect("metrics --json"));
    check_schema(
        "metrics --json",
        &metrics,
        &[
            "counters/pagestore.wal.fsyncs",
            "counters/pagestore.pool.logical_reads",
            "counters/relstore.tracker.tuples",
            "gauges/pagestore.pool.hit_ratio",
            "histograms/orpheus.commit.latency_us/p50",
            "histograms/orpheus.commit.latency_us/p99",
            "histograms/orpheus.checkout.latency_us/p50",
            "histograms/orpheus.query.latency_us/p50",
            "counters/obs.journal.recorded",
            "counters/obs.journal.dropped",
            "counters/obs.journal.allocs",
            "gauges/obs.journal.events",
        ],
    );
    let doc = obs::parse(&metrics).unwrap();
    assert!(
        num(&doc, "counters/pagestore.wal.fsyncs") > 0.0,
        "durable workload recorded no WAL fsyncs"
    );
    assert!(
        num(&doc, "histograms/orpheus.commit.latency_us/p50")
            <= num(&doc, "histograms/orpheus.commit.latency_us/p99"),
        "commit latency percentiles out of order"
    );

    // Span tree covers the whole command surface.
    let spans = text(db.execute("spans").expect("spans"));
    for needle in ["orpheus.commit", "orpheus.checkout", "orpheus.query"] {
        assert!(spans.contains(needle), "span tree lacks {needle}:\n{spans}");
    }

    // trace dump --json: every JSONL line must carry the Chrome trace
    // schema, and the workload's request/commit/WAL-fsync spans must be
    // present under non-zero trace ids.
    let dump = text(db.execute("trace dump --json").expect("trace dump --json"));
    let mut names = std::collections::BTreeSet::new();
    let mut traces = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for line in dump.lines().filter(|l| !l.trim().is_empty()) {
        check_schema(
            "trace dump --json line",
            line,
            &[
                "name",
                "cat",
                "ph",
                "ts",
                "pid",
                "tid",
                "args/trace",
                "args/span",
            ],
        );
        let ev = obs::parse(line).expect("trace event");
        let name = ev.get_path("name").and_then(|v| v.as_str()).expect("name");
        let trace = ev
            .get_path("args/trace")
            .and_then(|v| v.as_str())
            .expect("args.trace");
        assert_ne!(trace, "0x0", "journaled event with an untraced id: {line}");
        names.insert(name.to_owned());
        traces.insert(trace.to_owned());
        lines += 1;
    }
    for needle in ["orpheus.request", "orpheus.commit", "pagestore.wal.fsync"] {
        assert!(
            names.contains(needle),
            "trace dump lacks {needle:?} events; saw {names:?}"
        );
    }
    let journal = db.recorder().journal();
    assert_eq!(
        journal.dropped(),
        0,
        "smoke workload overflowed the journal"
    );
    let trace_summary = obs::Json::object(vec![
        ("events", obs::Json::Num(lines as f64)),
        ("traces", obs::Json::Num(traces.len() as f64)),
        ("recorded", obs::Json::Num(journal.recorded() as f64)),
        ("dropped", obs::Json::Num(journal.dropped() as f64)),
        (
            "span_names",
            obs::Json::Arr(names.iter().cloned().map(obs::Json::Str).collect()),
        ),
    ]);
    let trace_path = bench::results_dir().join("trace_smoke.json");
    match std::fs::create_dir_all(bench::results_dir())
        .and_then(|()| std::fs::write(&trace_path, trace_summary.to_string_pretty()))
    {
        Ok(()) => println!("trace summary: {}", trace_path.display()),
        Err(e) => eprintln!("warning: could not write trace summary: {e}"),
    }
    println!("trace dump: {lines} events across {} traces", traces.len());

    // Disabled journal = zero further allocations, even under load.
    journal.set_sample(0);
    let allocs_before = journal.allocs();
    db.execute("run SELECT * FROM VERSION 0 OF CVD SMOKE JOIN VERSION 1 ON k")
        .expect("query with journal disabled");
    assert_eq!(
        db.recorder().journal().allocs(),
        allocs_before,
        "a disabled journal must not allocate"
    );

    match bench::write_metrics_snapshot("smoke", db.metrics()) {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("joined rows: {count}");
    println!("observability smoke: all checks passed");
}
