//! CI server smoke gate.
//!
//! Boots the multi-session TCP front end on a durable store, drives 8
//! concurrent scripted clients (checkout → insert → commit cycles plus
//! pinned snapshot reads), and then checks the promises the server
//! makes, end to end:
//!
//! * **Serial equivalence** — the final database state, dumped through a
//!   client, is byte-identical to a serial replay of the same commit log
//!   in a fresh single-session `OrpheusDb`;
//! * **Group commit** — `pagestore.wal.fsyncs` stays strictly below the
//!   commit count (one durability point per batch, not per commit);
//! * **Metrics schema** — `metrics --json` carries every documented
//!   `orpheus.server.*` and `obs.journal.*` key (counters, gauges,
//!   latency percentiles); a missing key fails the gate;
//! * **End-to-end tracing** — every scripted commit runs under a
//!   client-chosen trace id; `trace dump --json` must show, per commit
//!   trace, the request span and a WAL-fsync event (real or shared
//!   group-commit attribution), and morsel worker task events must
//!   carry the trace of the query that fanned out;
//! * **Backpressure** — a full commit admission queue answers `53300`
//!   immediately instead of queueing without bound;
//! * **Clean shutdown** — every service thread joins (no leaked threads,
//!   verified against `/proc/self/status`).
//!
//! Any violation panics, so a broken server fails `scripts/ci.sh`.

use orpheus_server::{
    client::render_messages, output_messages, Client, EngineConfig, Server, ServerConfig,
};
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::Duration;

const WRITERS: usize = 8;
const COMMITS: usize = 3;

/// Run one query, panic on a typed error, return the completion tag.
fn ok(c: &mut Client, line: &str) -> String {
    let reply = c.query(line).expect("query transport");
    if let Some((code, msg)) = reply.error() {
        panic!("query `{line}` failed [{code}]: {msg}");
    }
    reply.tag().unwrap_or_default().to_owned()
}

/// The client-chosen trace id for writer `w`'s commit `i` (never 0).
fn commit_trace(w: usize, i: usize) -> u64 {
    0x5347_0000_0000_0000 | ((w as u64) << 8) | (i as u64 + 1)
}

/// One scripted client: pin a snapshot, verify the read repeats, then
/// run checkout → insert → commit cycles, each from this writer's
/// previous version. Commits run under client-chosen trace ids, which
/// the server must echo on the completion.
fn scripted_client(addr: SocketAddr, w: usize) {
    let mut c = Client::connect(addr, &format!("w{w}")).expect("connect");
    ok(&mut c, "pin t");
    let read = "run SELECT vid, count(*) FROM CVD t GROUP BY vid";
    let baseline = c.query(read).expect("snapshot read").render();
    let mut parent = 0u32;
    for i in 0..COMMITS {
        let table = format!("w{w}c{i}");
        ok(&mut c, &format!("checkout t -v {parent} -t {table}"));
        let k = 1000 + w * 100 + i;
        ok(&mut c, &format!("insert {table} {k},{w},{i}"));
        let trace = commit_trace(w, i);
        let reply = c
            .query_traced(&format!("commit -t {table} -m w{w} c{i}"), trace)
            .expect("traced commit");
        if let Some((code, msg)) = reply.error() {
            panic!("traced commit failed [{code}]: {msg}");
        }
        assert_eq!(
            reply.trace(),
            Some(trace),
            "server must echo the wire trace id"
        );
        let tag = reply.tag().unwrap_or_default();
        parent = tag
            .strip_prefix("COMMIT v")
            .unwrap_or_else(|| panic!("unexpected commit tag: {tag}"))
            .parse()
            .expect("vid");
        // The pinned snapshot must not see this session's own commit.
        let again = c.query(read).expect("snapshot read").render();
        assert_eq!(again, baseline, "pinned read changed under own commits");
    }
    c.terminate().expect("terminate");
}

/// Parse `log t` into `(vid, parent, author, msg)` entries, oldest first.
fn parse_log(log: &str) -> Vec<(u32, u32, String, String)> {
    let lines: Vec<&str> = log.lines().collect();
    let mut entries = Vec::new();
    for pair in lines.chunks(2) {
        let [head, detail] = pair else {
            panic!("odd log line count in:\n{log}")
        };
        let (vid_part, parents) = head
            .trim_start_matches("* ")
            .split_once("  ← ")
            .expect("log head");
        let vid: u32 = vid_part.trim_start_matches('v').parse().expect("vid");
        let parent: u32 = if parents == "(root)" {
            0
        } else {
            parents.trim_start_matches('v').parse().expect("parent")
        };
        let after = detail.trim().strip_prefix("author: ").expect("author");
        let (author, rest) = after.split_once("  records: ").expect("records");
        let (_n, msg) = rest.split_once("  msg: ").expect("msg");
        entries.push((vid, parent, author.to_owned(), msg.to_owned()));
    }
    entries.sort_by_key(|e| e.0);
    entries
}

/// The state-dump query set, identical on both sides of the comparison.
fn dump_queries(max_vid: u32) -> Vec<String> {
    let mut qs: Vec<String> = (0..=max_vid)
        .map(|v| format!("run SELECT * FROM VERSION {v} OF CVD t"))
        .collect();
    qs.push("run SELECT vid, count(*) FROM CVD t GROUP BY vid".into());
    qs.push("run SELECT vid, sum(k) FROM CVD t GROUP BY vid".into());
    qs.push(format!("run SELECT * FROM V_DIFF({max_vid}, 0) OF CVD t"));
    qs.push("log t".into());
    qs
}

fn check_schema(what: &str, src: &str, required: &[&str]) {
    match obs::missing_keys(src, required) {
        Ok(missing) if missing.is_empty() => {}
        Ok(missing) => panic!("{what}: missing required keys {missing:?}"),
        Err(e) => panic!("{what}: output is not valid JSON ({e}):\n{src}"),
    }
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    bench::banner(
        "server smoke: concurrent sessions, group commit, backpressure",
        "CI gate — multi-session front end vs serial replay",
    );
    let threads_before = thread_count();

    let dir = std::env::temp_dir().join(format!("orpheus-server-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let csv = std::env::temp_dir().join(format!("orpheus-server-smoke-{}.csv", std::process::id()));
    {
        let mut f = std::fs::File::create(&csv).expect("seed csv");
        writeln!(f, "k,w,i").unwrap();
        for k in 0..20 {
            writeln!(f, "{k},-1,-1").unwrap();
        }
    }

    let server = Server::start(ServerConfig {
        port: 0,
        workers: WRITERS,
        engine: EngineConfig {
            data_dir: Some(dir.clone()),
            linger: Duration::from_millis(20),
            // ≥2 morsel workers so the trace leg can assert that worker
            // task spans re-attach to the originating request.
            threads: 2,
            ..EngineConfig::default()
        },
    })
    .expect("start server");
    let addr = server.local_addr();
    println!("server at {addr}, {WRITERS} scripted clients × {COMMITS} commits");

    let mut admin = Client::connect(addr, "admin").expect("connect admin");
    ok(
        &mut admin,
        &format!("init t -f {} -s k:int,w:int,i:int -k k", csv.display()),
    );
    // Stall the engine briefly so the first commit wave forms one batch.
    ok(&mut admin, "sleep 80");

    let pool = exec_pool::WorkerPool::new(WRITERS);
    let tasks: Vec<_> = (0..WRITERS)
        .map(|w| move |_worker: usize| scripted_client(addr, w))
        .collect();
    pool.run(tasks).expect("scripted clients");

    // --- serial equivalence --------------------------------------------
    let log_text = ok(&mut admin, "log t");
    let entries = parse_log(&log_text);
    assert_eq!(entries.len(), 1 + WRITERS * COMMITS, "commit count");
    let mut replay = orpheus_core::OrpheusDb::new();
    replay
        .execute_as(
            "admin",
            &format!("init t -f {} -s k:int,w:int,i:int -k k", csv.display()),
        )
        .expect("replay init");
    for (vid, parent, author, msg) in entries.iter().filter(|e| e.0 > 0) {
        let (w_part, c_part) = msg.split_once(' ').expect("msg shape");
        let w: usize = w_part.trim_start_matches('w').parse().expect("w");
        let i: usize = c_part.trim_start_matches('c').parse().expect("i");
        let table = format!("w{w}c{i}");
        replay
            .execute_as(author, &format!("checkout t -v {parent} -t {table}"))
            .expect("replay checkout");
        let k = 1000 + w * 100 + i;
        replay
            .execute_as(author, &format!("insert {table} {k},{w},{i}"))
            .expect("replay insert");
        let out = replay
            .execute_as(author, &format!("commit -t {table} -m {msg}"))
            .expect("replay commit");
        assert_eq!(
            out,
            orpheus_core::CommandOutput::Version(partition::Vid(*vid)),
            "replay assigned a different vid for {msg}"
        );
    }
    let max_vid = entries.last().expect("entries").0;
    for q in dump_queries(max_vid) {
        let live = {
            let reply = admin.query(&q).expect("dump query");
            assert!(reply.error().is_none(), "`{q}` failed on the server");
            reply.render()
        };
        let replayed = render_messages(&output_messages(
            &replay.execute_as("admin", &q).expect("replay query"),
        ));
        assert_eq!(live, replayed, "state diverged on `{q}`");
    }
    println!("serial equivalence: {} queries byte-identical", max_vid + 5);

    // --- metrics schema + group-commit assertion -----------------------
    let metrics_json = ok(&mut admin, "metrics --json");
    check_schema(
        "metrics --json",
        &metrics_json,
        &[
            "counters/orpheus.server.sessions_total",
            "counters/orpheus.server.queries_total",
            "counters/orpheus.server.snapshot_reads_total",
            "counters/orpheus.server.commits_total",
            "counters/orpheus.server.group_commit.batches",
            "counters/orpheus.server.backpressure_rejections",
            "counters/pagestore.wal.fsyncs",
            "gauges/orpheus.server.active_sessions",
            "gauges/orpheus.server.queued_commits",
            "histograms/orpheus.server.query.latency_us/p50",
            "histograms/orpheus.server.query.latency_us/p95",
            "histograms/orpheus.server.query.latency_us/p99",
            "histograms/orpheus.server.group_commit.batch_size/p50",
            "counters/obs.journal.recorded",
            "counters/obs.journal.dropped",
            "counters/obs.journal.allocs",
            "gauges/obs.journal.events",
        ],
    );
    let registry = server.registry().clone();
    let commits = registry.counter("orpheus.server.commits_total");
    let fsyncs = registry.counter("pagestore.wal.fsyncs");
    let batches = registry.counter("orpheus.server.group_commit.batches");
    assert_eq!(commits, (WRITERS * COMMITS) as u64);
    assert!(
        fsyncs < commits,
        "group commit must fsync less than once per commit: {fsyncs} fsyncs / {commits} commits"
    );
    println!("group commit: {commits} commits → {batches} batches, {fsyncs} WAL fsyncs");

    // --- end-to-end tracing --------------------------------------------
    // A traced parallel read: morsel worker spans must re-attach to it.
    let read_trace = 0x5347_0000_0000_ff00u64;
    let reply = admin
        .query_traced("run SELECT * FROM VERSION 0 OF CVD t", read_trace)
        .expect("traced read");
    assert!(reply.error().is_none(), "traced read failed");
    assert_eq!(reply.trace(), Some(read_trace), "trace echo on read");

    let dump = ok(&mut admin, "trace dump --json");
    let mut by_trace: std::collections::HashMap<u64, Vec<String>> =
        std::collections::HashMap::new();
    for line in dump.lines().filter(|l| !l.trim().is_empty()) {
        check_schema(
            "trace dump --json line",
            line,
            &["name", "ph", "ts", "args/trace", "args/span"],
        );
        let ev = obs::parse(line).expect("trace event");
        let name = ev.get_path("name").and_then(|v| v.as_str()).expect("name");
        let trace = ev
            .get_path("args/trace")
            .and_then(|v| v.as_str())
            .expect("args.trace");
        let trace = u64::from_str_radix(trace.trim_start_matches("0x"), 16).expect("hex trace");
        by_trace.entry(trace).or_default().push(name.to_owned());
    }
    for w in 0..WRITERS {
        for i in 0..COMMITS {
            let trace = commit_trace(w, i);
            let names = by_trace
                .get(&trace)
                .unwrap_or_else(|| panic!("no journal events for commit trace {trace:#x}"));
            assert!(
                names.iter().any(|n| n == "orpheus.request"),
                "commit trace {trace:#x} lost its request span: {names:?}"
            );
            assert!(
                names
                    .iter()
                    .any(|n| n == "pagestore.wal.fsync" || n == "pagestore.wal.fsync.shared"),
                "commit trace {trace:#x} has no WAL-fsync attribution: {names:?}"
            );
        }
    }
    let read_names = by_trace
        .get(&read_trace)
        .unwrap_or_else(|| panic!("no journal events for read trace {read_trace:#x}"));
    assert!(
        read_names.iter().any(|n| n == "exec.pool.task"),
        "worker events did not re-attach to the read trace: {read_names:?}"
    );
    println!(
        "tracing: {} traces journaled; every commit trace carries its WAL-fsync attribution",
        by_trace.len()
    );

    match bench::write_metrics_snapshot("server_smoke", &registry) {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }

    admin.terminate().expect("terminate admin");
    server.shutdown().expect("clean shutdown");

    // --- backpressure leg ----------------------------------------------
    let small = Server::start(ServerConfig {
        port: 0,
        workers: WRITERS,
        engine: EngineConfig {
            admission_capacity: 2,
            ..EngineConfig::default()
        },
    })
    .expect("start backpressure server");
    let baddr = small.local_addr();
    let mut stall = Client::connect(baddr, "admin").expect("connect");
    ok(&mut stall, "sleep 400");
    std::thread::sleep(Duration::from_millis(30));
    let outcomes = pool
        .run(
            (0..6)
                .map(|i| {
                    move |_worker: usize| {
                        let mut c = Client::connect(baddr, &format!("b{i}")).expect("connect");
                        let reply = c.query("commit -t none -m x").expect("commit");
                        let (code, _) = reply.error().expect("commit must fail");
                        let code = code.to_owned();
                        c.terminate().expect("terminate");
                        code
                    }
                })
                .collect(),
        )
        .expect("backpressure clients");
    let rejected = outcomes.iter().filter(|c| *c == "53300").count();
    assert!(
        rejected >= 1,
        "overflowing a capacity-2 admission queue must reject with 53300: {outcomes:?}"
    );
    println!("backpressure: {rejected}/6 commits rejected with 53300");
    stall.terminate().expect("terminate");
    small.shutdown().expect("clean shutdown");

    // --- no leaked threads ---------------------------------------------
    std::thread::sleep(Duration::from_millis(50));
    let threads_after = thread_count();
    assert!(
        threads_after <= threads_before,
        "leaked threads: {threads_before} before, {threads_after} after"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&csv);
    println!("server smoke: all checks passed");
}
