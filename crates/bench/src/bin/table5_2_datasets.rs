//! Table 5.2 — benchmark dataset description: |V|, |R|, |E|, B, I, |R̂|
//! for the scaled SCI_* and CUR_* datasets.

use benchgen::{generate, DatasetSpec};

fn main() {
    bench::banner("Table 5.2: dataset description", "Table 5.2 (§5.5.1)");
    bench::header(&["dataset", "|V|", "|R|", "|E|", "B", "I", "|R̂|", "R̂/R %"]);
    for spec in DatasetSpec::presets() {
        let d = generate(&spec);
        let s = d.stats();
        bench::row(&[
            s.name.clone(),
            s.versions.to_string(),
            s.records.to_string(),
            s.edges.to_string(),
            s.branches.to_string(),
            s.mods_per_commit.to_string(),
            s.rhat.to_string(),
            format!("{:.1}", 100.0 * s.rhat as f64 / s.records as f64),
        ]);
    }
}
