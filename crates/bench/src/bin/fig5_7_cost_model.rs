//! Fig. 5.7 — validation of the checkout cost model: checkout cost as a
//! function of the partition size |Rk| under hash join, merge join, and
//! index-nested-loop join, with the data table clustered on `rid` vs on
//! the relation primary key.
//!
//! Expected shapes (§5.5.5): hash- and merge-join costs grow linearly with
//! |Rk| regardless of layout; INL join on a rid-clustered table is flat for
//! small |rlist| and degrades into a sequential scan as |rlist| approaches
//! |Rk|; INL join on a PK-clustered table pays a random page per probe.
//! We report the deterministic simulated cost (cost-model units), which is
//! what the wall-clock curves of Fig. 5.7 reflect on a disk-resident
//! PostgreSQL.

use relstore::{
    Column, DataType, ExecContext, Executor, HashJoin, IndexKind, IndexNestedLoopJoin, MergeJoin,
    Schema, SeqScan, Table, Value, Values,
};

fn build_table(rk: usize, cluster_on_rid: bool) -> Table {
    let mut t = Table::new(
        "data",
        Schema::new(vec![
            Column::new("rid", DataType::Int64),
            Column::new("pk", DataType::Int64),
            Column::new("payload", DataType::Int64),
        ]),
    );
    // pk ordering is a pseudo-random permutation of rid.
    for rid in 0..rk as i64 {
        let pk = (rid.wrapping_mul(2654435761)) % (rk as i64);
        t.insert(vec![
            Value::Int64(rid),
            Value::Int64(pk),
            Value::Int64(rid % 97),
        ])
        .unwrap();
    }
    t.cluster_on(if cluster_on_rid { "rid" } else { "pk" })
        .unwrap();
    t.create_index("rid_ix", "rid", false, IndexKind::BTree)
        .unwrap();
    t
}

fn rlist(rk: usize, n: usize) -> Vec<i64> {
    // Sorted pseudo-random sample of n rids out of rk.
    let mut out: Vec<i64> = (0..n as i64)
        .map(|i| (i.wrapping_mul(48271) % rk as i64).abs())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn run_join(t: &Table, ids: &[i64], strategy: &str) -> f64 {
    let mut ctx = ExecContext::new();
    let rows = match strategy {
        "hash" => {
            let build = Box::new(Values::ints("rid", ids.to_vec()));
            let probe = Box::new(SeqScan::new(t));
            let mut join = HashJoin::new(build, probe, 0, 0);
            join.collect(&mut ctx).unwrap()
        }
        "merge" => {
            let left = Box::new(Values::ints("rid", ids.to_vec()));
            let right = Box::new(SeqScan::new(t));
            let mut join = MergeJoin::new(left, right, 0, 0);
            join.collect(&mut ctx).unwrap()
        }
        "inl" => {
            let outer = Box::new(Values::ints("rid", ids.to_vec()));
            let mut join = IndexNestedLoopJoin::new(outer, t, "rid_ix", 0).unwrap();
            join.collect(&mut ctx).unwrap()
        }
        _ => unreachable!(),
    };
    assert_eq!(rows.len(), ids.len());
    ctx.tracker.simulated_millis(&ctx.model)
}

fn main() {
    bench::banner(
        "Fig 5.7: checkout cost model validation",
        "Fig. 5.7(a–f) — join strategy × physical clustering, cost vs |Rk|",
    );
    let rks = [20_000usize, 50_000, 100_000, 200_000, 300_000];
    let rlists = [1_000usize, 5_000, 20_000, 100_000];
    for clustered in [true, false] {
        println!(
            "--- data table clustered on {} ---",
            if clustered {
                "rid (a,b,c)"
            } else {
                "PK (d,e,f)"
            }
        );
        bench::header(&["|Rk|", "|rlist|", "hash ms", "merge ms", "inl ms"]);
        for &rk in &rks {
            let t = build_table(rk, clustered);
            for &n in &rlists {
                if n > rk {
                    continue;
                }
                let ids = rlist(rk, n);
                bench::row(&[
                    rk.to_string(),
                    ids.len().to_string(),
                    format!("{:.1}", run_join(&t, &ids, "hash")),
                    format!("{:.1}", run_join(&t, &ids, "merge")),
                    format!("{:.1}", run_join(&t, &ids, "inl")),
                ]);
            }
        }
        println!();
    }
}
