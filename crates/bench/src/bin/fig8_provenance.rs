//! §8.8 — preliminary evaluation of lineage inference: precision, recall,
//! F1, and operation-label accuracy over synthetic untracked repositories,
//! with and without min-hash candidate pruning, and the pruning speedup.

use bench::time;
use provenance::{infer_lineage, score_edges, synthesize, InferConfig, SynthConfig};

fn main() {
    bench::banner(
        "§8.8: lineage inference quality",
        "precision/recall of inferred derivation edges vs ground truth",
    );
    bench::header(&[
        "derivations",
        "pruning",
        "precision",
        "recall",
        "F1",
        "op acc.",
        "time ms",
    ]);
    for derivations in [10usize, 25, 50, 100] {
        for &(label, floor) in &[("off", 0.0f64), ("minhash", 0.1)] {
            let mut agg = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let mut total_ms = 0.0;
            let runs = 5u64;
            for seed in 0..runs {
                let w = synthesize(SynthConfig {
                    derivations,
                    base_rows: 400,
                    base_cols: 6,
                    seed,
                });
                let (g, t) = time(|| {
                    infer_lineage(
                        &w.repo,
                        InferConfig {
                            sketch_floor: floor,
                            ..InferConfig::default()
                        },
                    )
                });
                total_ms += t.as_secs_f64() * 1e3;
                let s = score_edges(&g, &w.truth);
                agg.0 += s.precision;
                agg.1 += s.recall;
                agg.2 += s.f1;
                agg.3 += s.operation_accuracy;
            }
            let n = runs as f64;
            bench::row(&[
                derivations.to_string(),
                label.to_string(),
                format!("{:.3}", agg.0 / n),
                format!("{:.3}", agg.1 / n),
                format!("{:.3}", agg.2 / n),
                format!("{:.3}", agg.3 / n),
                format!("{:.1}", total_ms / n),
            ]);
        }
    }
}
