//! Ablations for LyreSplit's design choices (DESIGN.md):
//!
//! 1. **Weighted frequencies (§5.3.2)** — when recent versions are checked
//!    out far more often, does the weighted expansion beat running plain
//!    LyreSplit on the unweighted tree?
//! 2. **Schema-aware weights (§5.3.3)** — with evolving schemas, does
//!    cell-based (records × attributes) splitting beat record-based?
//! 3. **DAG→tree transform (§5.3.1)** — how much does computing the exact
//!    duplicated-record count |R̂| (from the bipartite graph) matter versus
//!    the upper bound available from edge weights alone?

use benchgen::{generate, DatasetSpec};
use partition::lyresplit::{lyresplit, lyresplit_weighted, schema_weighted_tree};

fn main() {
    bench::banner(
        "LyreSplit ablations",
        "§5.3.1–5.3.3 generalizations: weighted, schema-aware, DAG transform",
    );

    // -- 1. Weighted checkout frequencies -----------------------------------
    let d = generate(&DatasetSpec::sci("SCI_W", 800, 80, 20));
    let tree = d.tree();
    let bipartite = &d.bipartite;
    // Recent 10% of versions are checked out 50× as often.
    let n = d.num_versions();
    let freqs: Vec<u64> = (0..n)
        .map(|i| if i >= n * 9 / 10 { 50 } else { 1 })
        .collect();
    println!("--- weighted frequencies (hot recent versions, 50×) ---");
    bench::header(&["variant", "δ", "S (records)", "Cw (records)"]);
    for delta in [0.05f64, 0.2, 0.5] {
        let plain = lyresplit(&tree, delta);
        let weighted = lyresplit_weighted(&tree, &freqs, delta);
        let cw_plain = plain.partitioning.weighted_checkout(bipartite, &freqs);
        let cw_weighted = weighted.partitioning.weighted_checkout(bipartite, &freqs);
        let s_plain = plain.partitioning.evaluate(bipartite).storage_records;
        let s_weighted = weighted.partitioning.evaluate(bipartite).storage_records;
        bench::row(&[
            "plain".into(),
            format!("{delta}"),
            s_plain.to_string(),
            format!("{cw_plain:.0}"),
        ]);
        bench::row(&[
            "weighted".into(),
            format!("{delta}"),
            s_weighted.to_string(),
            format!("{cw_weighted:.0}"),
        ]);
    }

    // -- 2. Schema-aware splitting -------------------------------------------
    // Synthetic schema evolution: versions gain attributes over time, so
    // later versions are "wider". Cell-based weights should prefer cutting
    // between schema eras.
    println!("\n--- schema-aware splitting (4 schema eras; era changes share half) ---");
    let n_v = tree.num_versions();
    let era = |v: usize| 4 * v / n_v;
    let attrs: Vec<u64> = (0..n_v).map(|v| 10 + 5 * era(v) as u64).collect();
    let common: Vec<u64> = (0..n_v)
        .map(|v| match tree.parent[v] {
            // Crossing an era boundary rewrites half the attributes.
            Some(p) if era(p.idx()) != era(v) => attrs[p.idx()].min(attrs[v]) / 2,
            Some(p) => attrs[p.idx()].min(attrs[v]),
            None => 0,
        })
        .collect();
    let cell_tree = schema_weighted_tree(&tree, &attrs, &common);
    bench::header(&["variant", "δ", "parts", "S (cells)", "Cavg (cells)"]);
    for delta in [0.1f64, 0.3] {
        // Evaluate both partitionings on the cell-weighted tree model:
        // per-partition cells = Σ over the partition's component of the
        // cell tree's Eq. 5.4.
        for (name, res) in [
            ("record-based", lyresplit(&tree, delta)),
            ("cell-based", lyresplit(&cell_tree, delta)),
        ] {
            let groups = res.partitioning.groups();
            let mut cells = 0u64;
            let mut checkout_cells = 0u128;
            for g in &groups {
                let total: u64 = g.iter().map(|v| cell_tree.sizes[v.idx()]).sum();
                let shared: u64 = g
                    .iter()
                    .filter_map(|v| {
                        cell_tree.parent[v.idx()]
                            .and_then(|p| g.contains(&p).then_some(cell_tree.edge_weight[v.idx()]))
                    })
                    .sum();
                let part_cells = total - shared;
                cells += part_cells;
                checkout_cells += part_cells as u128 * g.len() as u128;
            }
            bench::row(&[
                name.into(),
                format!("{delta}"),
                groups.len().to_string(),
                cells.to_string(),
                format!("{:.0}", checkout_cells as f64 / n_v as f64),
            ]);
        }
    }

    // -- 3. DAG→tree transform: exact |R̂| vs upper bound --------------------
    println!("\n--- DAG→tree duplicated-record accounting (CUR workloads) ---");
    bench::header(&["dataset", "exact R̂", "bound R̂", "overestimate"]);
    for spec in [
        DatasetSpec::cur("CUR_10K", 1000, 100, 10),
        DatasetSpec::cur("CUR_50K", 1000, 100, 50),
    ] {
        let d = generate(&spec);
        let exact = d.graph.to_tree(Some(&d.bipartite)).rhat;
        let bound = d.graph.to_tree(None).rhat;
        bench::row(&[
            spec.name.clone(),
            exact.to_string(),
            bound.to_string(),
            format!("{:.2}x", bound as f64 / exact.max(1) as f64),
        ]);
    }
}
