//! CI perf-regression gate over the `obs_smoke` metrics snapshot and the
//! `parallel_scaling` results.
//!
//! Compares the current run's snapshot (`$ORPHEUS_RESULTS_DIR/metrics_smoke.json`,
//! produced by `scripts/perf_gate.sh` into the git-ignored `results/ci/`)
//! against the checked-in baseline `results/baseline_smoke.json`, using the
//! per-key tolerances in `bench::gate`. Deterministic work counters are the
//! gated quantities; wall-clock latencies never are.
//!
//! Additionally asserts the baseline-free invariants of
//! `$ORPHEUS_RESULTS_DIR/parallel_scaling.json`: the parallel scan path
//! copied **zero** bytes from coordinator to workers (pages ship as
//! leases), morsel allocations stayed within budget, and the ≥2× @ 4
//! threads wall-clock leg either ran (hosts with ≥4 cores) and met its
//! floor, or recorded its skip reason.
//!
//! And of `$ORPHEUS_RESULTS_DIR/frontier_smoke.json` (the page-format
//! storage/recreation gate): Delta strictly undercuts Flat's stored
//! bytes past the recorded floor, every budget-frontier point respects
//! its β, the LMG/exact oracle ratio holds, and the full (1M) tier ran
//! or recorded why it did not.
//!
//! Exit status 1 on any regression. When an intentional engine change moves
//! a counter, refresh the baseline:
//!
//! ```text
//! ./scripts/perf_gate.sh --refresh
//! ```

use std::process::ExitCode;

const BASELINE: &str = "results/baseline_smoke.json";

fn load(path: &std::path::Path) -> Result<obs::Json, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    obs::parse(&src).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let refresh = std::env::args().any(|a| a == "--refresh");
    let baseline_path = std::path::PathBuf::from(BASELINE);
    let current_path = bench::results_dir().join("metrics_smoke.json");

    if refresh {
        match std::fs::copy(&current_path, &baseline_path) {
            Ok(_) => {
                println!(
                    "perf gate: baseline refreshed from {}",
                    current_path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("perf gate: refresh failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("perf gate: {err}");
            }
            eprintln!("perf gate: run ./scripts/perf_gate.sh to produce both files");
            return ExitCode::FAILURE;
        }
    };

    let mut report = bench::gate::compare(&baseline, &current);
    println!(
        "perf gate: {} gated key(s), baseline {}",
        report.checked,
        baseline_path.display()
    );

    // Scaling results: absolute (baseline-free) zero-copy and wall-clock
    // assertions over the parallel_scaling run.
    let scaling_path = bench::results_dir().join("parallel_scaling.json");
    match load(&scaling_path) {
        Ok(scaling) => {
            let s = bench::gate::check_scaling(&scaling);
            if let Some(reason) = scaling
                .get_path("wall_clock_leg/skip_reason")
                .and_then(obs::Json::as_str)
                .filter(|r| !r.is_empty())
            {
                println!("  scaling wall-clock leg skipped: {reason}");
            }
            println!("perf gate: {} scaling assertion(s) checked", s.checked);
            report.checked += s.checked;
            report.regressions.extend(s.regressions);
        }
        Err(err) => {
            eprintln!("perf gate: {err}");
            report
                .regressions
                .push("parallel_scaling.json: missing — scaling gate did not run".into());
        }
    }

    // Frontier results: absolute page-format storage/recreation
    // assertions over the frontier smoke run.
    let frontier_path = bench::results_dir().join("frontier_smoke.json");
    match load(&frontier_path) {
        Ok(frontier) => {
            let f = bench::gate::check_frontier(&frontier);
            if let Some(reason) = frontier
                .get_path("full_tier/skip_reason")
                .and_then(obs::Json::as_str)
                .filter(|r| !r.is_empty())
            {
                println!("  frontier full tier skipped: {reason}");
            }
            println!("perf gate: {} frontier assertion(s) checked", f.checked);
            report.checked += f.checked;
            report.regressions.extend(f.regressions);
        }
        Err(err) => {
            eprintln!("perf gate: {err}");
            report
                .regressions
                .push("frontier_smoke.json: missing — page-format gate did not run".into());
        }
    }

    for msg in &report.improvements {
        println!("  improved  {msg}");
    }
    if report.passed() {
        if !report.improvements.is_empty() {
            println!(
                "perf gate: PASS with improvements — consider ./scripts/perf_gate.sh --refresh"
            );
        } else {
            println!("perf gate: PASS");
        }
        ExitCode::SUCCESS
    } else {
        for msg in &report.regressions {
            eprintln!("  REGRESSED {msg}");
        }
        eprintln!(
            "perf gate: FAIL — {} regression(s). If intentional, refresh the baseline:\n  ./scripts/perf_gate.sh --refresh",
            report.regressions.len()
        );
        ExitCode::FAILURE
    }
}
