//! CI perf-regression gate over the `obs_smoke` metrics snapshot.
//!
//! Compares the current run's snapshot (`$ORPHEUS_RESULTS_DIR/metrics_smoke.json`,
//! produced by `scripts/perf_gate.sh` into the git-ignored `results/ci/`)
//! against the checked-in baseline `results/baseline_smoke.json`, using the
//! per-key tolerances in `bench::gate`. Deterministic work counters are the
//! gated quantities; wall-clock latencies never are.
//!
//! Exit status 1 on any regression. When an intentional engine change moves
//! a counter, refresh the baseline:
//!
//! ```text
//! ./scripts/perf_gate.sh --refresh
//! ```

use std::process::ExitCode;

const BASELINE: &str = "results/baseline_smoke.json";

fn load(path: &std::path::Path) -> Result<obs::Json, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    obs::parse(&src).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let refresh = std::env::args().any(|a| a == "--refresh");
    let baseline_path = std::path::PathBuf::from(BASELINE);
    let current_path = bench::results_dir().join("metrics_smoke.json");

    if refresh {
        match std::fs::copy(&current_path, &baseline_path) {
            Ok(_) => {
                println!(
                    "perf gate: baseline refreshed from {}",
                    current_path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("perf gate: refresh failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("perf gate: {err}");
            }
            eprintln!("perf gate: run ./scripts/perf_gate.sh to produce both files");
            return ExitCode::FAILURE;
        }
    };

    let report = bench::gate::compare(&baseline, &current);
    println!(
        "perf gate: {} gated key(s), baseline {}",
        report.checked,
        baseline_path.display()
    );
    for msg in &report.improvements {
        println!("  improved  {msg}");
    }
    if report.passed() {
        if !report.improvements.is_empty() {
            println!(
                "perf gate: PASS with improvements — consider ./scripts/perf_gate.sh --refresh"
            );
        } else {
            println!("perf gate: PASS");
        }
        ExitCode::SUCCESS
    } else {
        for msg in &report.regressions {
            eprintln!("  REGRESSED {msg}");
        }
        eprintln!(
            "perf gate: FAIL — {} regression(s). If intentional, refresh the baseline:\n  ./scripts/perf_gate.sh --refresh",
            report.regressions.len()
        );
        ExitCode::FAILURE
    }
}
