//! Fig. 5.20 / 5.21 — estimated storage cost vs estimated checkout cost
//! (both in records, the model the partitioners optimize) for LyreSplit,
//! Agglo, and KMeans over SCI_* and CUR_* datasets.
//!
//! The model-level analogue of Fig. 5.8: no physical execution, exact
//! evaluation of S = Σ|Rk| and Cavg = Σ|Vk||Rk| / n against the bipartite
//! graph.

use benchgen::{generate, DatasetSpec};
use partition::{agglo_partition, kmeans_partition, lyresplit, AggloParams, KmeansParams};

fn main() {
    bench::banner(
        "Fig 5.20 / 5.21: estimated storage vs estimated checkout cost",
        "Fig. 5.20(a–c), 5.21(a–c)",
    );
    let specs = [
        DatasetSpec::sci("SCI_10K", 1000, 100, 10),
        DatasetSpec::sci("SCI_50K", 1000, 100, 50),
        DatasetSpec::cur("CUR_10K", 1000, 100, 10),
        DatasetSpec::cur("CUR_50K", 1000, 100, 50),
    ];
    for spec in specs {
        let d = generate(&spec);
        let tree = d.tree();
        let b = &d.bipartite;
        println!(
            "--- {} (|R| = {}, lower bounds: S ≥ {}, Cavg ≥ {:.0}) ---",
            spec.name,
            d.num_records(),
            d.num_records(),
            b.num_edges() as f64 / b.num_versions() as f64,
        );
        bench::header(&["algorithm", "param", "S (records)", "Cavg (records)"]);
        for delta in [0.0001, 0.001, 0.01, 0.1, 0.5, 1.0] {
            let res = lyresplit(&tree, delta);
            let s = res.partitioning.evaluate(b);
            bench::row(&[
                "LyreSplit".into(),
                format!("δ={delta}"),
                s.storage_records.to_string(),
                format!("{:.0}", s.checkout_avg),
            ]);
        }
        let r = b.num_records();
        for cap_factor in [8u64, 2, 1] {
            let p = agglo_partition(
                b,
                AggloParams {
                    capacity: (r / cap_factor).max(1),
                    ..AggloParams::default()
                },
            );
            let s = p.evaluate(b);
            bench::row(&[
                "Agglo".into(),
                format!("BC=R/{cap_factor}"),
                s.storage_records.to_string(),
                format!("{:.0}", s.checkout_avg),
            ]);
        }
        for k in [2usize, 8, 20] {
            let p = kmeans_partition(
                b,
                KmeansParams {
                    k,
                    iterations: 5,
                    ..KmeansParams::default()
                },
            );
            let s = p.evaluate(b);
            bench::row(&[
                "KMeans".into(),
                format!("k={k}"),
                s.storage_records.to_string(),
                format!("{:.0}", s.checkout_avg),
            ]);
        }
        println!();
    }
}
