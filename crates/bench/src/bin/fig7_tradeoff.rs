//! Chapter 7 storage/recreation trade-off (§7.5): for each workload shape
//! and scenario, sweep the constraint threshold and report the frontier
//! each solver achieves, bracketed by the two extremes (MST = minimum
//! storage, SPT = minimum recreation).
//!
//! Expected shape: LMG and MP trace smooth frontiers between the extremes;
//! tightening θ (or β) trades storage for recreation monotonically; in the
//! directed Φ≠Δ scenario the frontier shifts because recreation is no
//! longer proportional to storage.

use deltastore::{
    gith, p1_min_storage, p2_min_recreation, p3_min_sum_recreation, p5_min_storage_sum,
    p6_min_storage_max, GenConfig, GraphShape,
};

fn sweep(name: &str, cfg: GenConfig) {
    let g = cfg.build();
    let mst = p1_min_storage(&g);
    let spt = p2_min_recreation(&g);
    println!(
        "--- {name}: n={} edges={} | MST: C={} ΣR={} | SPT: C={} ΣR={} ---",
        g.num_versions(),
        g.num_edges(),
        mst.storage_cost(),
        mst.sum_recreation(),
        spt.storage_cost(),
        spt.sum_recreation(),
    );

    // Problem 7.5: min storage s.t. ΣR ≤ θ.
    bench::header(&["problem", "threshold", "C (storage)", "ΣR", "max R", "mat."]);
    for f in [1.05f64, 1.25, 1.5, 2.0, 4.0, 16.0] {
        let theta = (spt.sum_recreation() as f64 * f) as u64;
        let sol = p5_min_storage_sum(&g, theta);
        bench::row(&[
            "P5 (LMG)".into(),
            format!("θ={f}×SPT"),
            sol.storage_cost().to_string(),
            sol.sum_recreation().to_string(),
            sol.max_recreation().to_string(),
            sol.num_materialized().to_string(),
        ]);
    }
    // Problem 7.3: min ΣR s.t. C ≤ β.
    for f in [1.0f64, 1.5, 2.0, 4.0, 8.0] {
        let beta = (mst.storage_cost() as f64 * f) as u64;
        let sol = p3_min_sum_recreation(&g, beta);
        bench::row(&[
            "P3 (LMG)".into(),
            format!("β={f}×MST"),
            sol.storage_cost().to_string(),
            sol.sum_recreation().to_string(),
            sol.max_recreation().to_string(),
            sol.num_materialized().to_string(),
        ]);
    }
    // GitH baseline: delta chains capped at a depth.
    for depth in [0usize, 4, 16, 64] {
        let sol = gith(&g, depth);
        bench::row(&[
            "GitH".into(),
            format!("depth={depth}"),
            sol.storage_cost().to_string(),
            sol.sum_recreation().to_string(),
            sol.max_recreation().to_string(),
            sol.num_materialized().to_string(),
        ]);
    }
    // Problem 7.6: min storage s.t. max R ≤ θ.
    for f in [1.0f64, 1.5, 2.0, 4.0, 16.0] {
        let theta = (spt.max_recreation() as f64 * f) as u64;
        match p6_min_storage_max(&g, theta) {
            Some(sol) => bench::row(&[
                "P6 (MP)".into(),
                format!("θ={f}×SPTmax"),
                sol.storage_cost().to_string(),
                sol.sum_recreation().to_string(),
                sol.max_recreation().to_string(),
                sol.num_materialized().to_string(),
            ]),
            None => bench::row(&[
                "P6 (MP)".into(),
                format!("θ={f}×SPTmax"),
                "infeasible".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!();
}

fn main() {
    bench::banner(
        "Ch. 7: storage/recreation trade-off frontiers",
        "§7.5 evaluation — LMG (P3/P5) and MP (P6) across workload shapes and scenarios",
    );
    let base = GenConfig {
        versions: 400,
        base_items: 2000,
        adds_per_step: 80,
        removes_per_step: 20,
        extra_edges: 400,
        seed: 17,
        ..GenConfig::default()
    };
    sweep(
        "chain, directed, Φ=Δ",
        GenConfig {
            shape: GraphShape::Chain,
            directed: true,
            decouple_phi: false,
            ..base
        },
    );
    sweep(
        "tree, directed, Φ=Δ",
        GenConfig {
            shape: GraphShape::Tree { branching: 4 },
            directed: true,
            decouple_phi: false,
            ..base
        },
    );
    sweep(
        "random, undirected, Φ=Δ (Scenario 7.1)",
        GenConfig {
            shape: GraphShape::Random,
            directed: false,
            decouple_phi: false,
            ..base
        },
    );
    sweep(
        "random, directed, Φ≠Δ (Scenario 7.3)",
        GenConfig {
            shape: GraphShape::Random,
            directed: true,
            decouple_phi: true,
            ..base
        },
    );
    sweep(
        "flat (all from v1), directed, Φ=Δ",
        GenConfig {
            shape: GraphShape::Flat,
            directed: true,
            decouple_phi: false,
            ..base
        },
    );

    // LAST sweep for the undirected scenario.
    println!("--- LAST (undirected, Φ=Δ): α sweep ---");
    let g = GenConfig {
        shape: GraphShape::Tree { branching: 3 },
        directed: false,
        decouple_phi: false,
        ..base
    }
    .build();
    let mst = p1_min_storage(&g);
    let spt = p2_min_recreation(&g);
    bench::header(&["α", "C (storage)", "max R", "C/MST", "maxR/SPTmax"]);
    for alpha in [1.1f64, 1.5, 2.0, 3.0, 8.0] {
        let sol = deltastore::last::last_tree(&g, alpha);
        bench::row(&[
            format!("{alpha}"),
            sol.storage_cost().to_string(),
            sol.max_recreation().to_string(),
            format!(
                "{:.2}",
                sol.storage_cost() as f64 / mst.storage_cost() as f64
            ),
            format!(
                "{:.2}",
                sol.max_recreation() as f64 / spt.max_recreation() as f64
            ),
        ]);
    }
}
