//! Fig. 5.7 (measured variant) — the checkout cost-model validation run
//! against *measured* buffer-pool I/O instead of the analytic estimates.
//!
//! Each data table lives on a buffer pool far smaller than its heap, so
//! joins fault pages in for real: sequential scans read every heap page
//! once, clustered index-nested-loop probes ride the pool's hit rate, and
//! unclustered probes miss almost every time. A strategy's measured cost
//! prices physical page reads at `seq_page_cost` and re-uses the exact CPU
//! counters (tuples, index entries, operator evaluations) the tracker
//! already records — no modelled I/O at all.
//!
//! The validation: for every (|Rk|, clustering) cell of Fig. 5.7, the
//! strategy that wins the analytic cost model (summed over the |rlist|
//! sweep) must also win under measured I/O. Individual |rlist| crossover
//! points may shift — a measured miss costs one page read while the model
//! charges `random_page_cost` = 4 for the seek it implies — but the
//! figure's qualitative story (which join to pick given layout and
//! partition size) must survive contact with a real buffer pool.

use relstore::{
    BufferPool, Column, CostModel, CostTracker, DataType, ExecContext, Executor, HashJoin,
    IndexKind, IndexNestedLoopJoin, MergeJoin, Schema, SeqScan, Table, Value, Values,
};
use std::rc::Rc;

/// Frames per table pool — far below every table's page count, so scans
/// and probe sets cannot be cached away.
const POOL_FRAMES: usize = 32;

const STRATEGIES: [&str; 3] = ["hash", "merge", "inl"];

fn build_table(rk: usize, cluster_on_rid: bool) -> Table {
    let mut t = Table::with_pool(
        "data",
        Schema::new(vec![
            Column::new("rid", DataType::Int64),
            Column::new("pk", DataType::Int64),
            Column::new("payload", DataType::Int64),
        ]),
        Rc::new(BufferPool::in_memory(POOL_FRAMES)),
    );
    // pk ordering is a pseudo-random permutation of rid.
    for rid in 0..rk as i64 {
        let pk = (rid.wrapping_mul(2654435761)) % (rk as i64);
        t.insert(vec![
            Value::Int64(rid),
            Value::Int64(pk),
            Value::Int64(rid % 97),
        ])
        .unwrap();
    }
    t.cluster_on(if cluster_on_rid { "rid" } else { "pk" })
        .unwrap();
    t.create_index("rid_ix", "rid", false, IndexKind::BTree)
        .unwrap();
    t
}

fn rlist(rk: usize, n: usize) -> Vec<i64> {
    let mut out: Vec<i64> = (0..n as i64)
        .map(|i| (i.wrapping_mul(48271) % rk as i64).abs())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Measured cost units: physical page reads at sequential price plus the
/// tracker's exact CPU counters.
fn measured_cost(t: &CostTracker, m: &CostModel) -> f64 {
    t.measured.physical_reads as f64 * m.seq_page
        + t.tuples as f64 * m.cpu_tuple
        + t.index_tuples as f64 * m.cpu_index_tuple
        + t.operator_evals as f64 * m.cpu_operator
}

/// Run one join; returns (estimated cost units, measured cost units) and
/// absorbs the run's counters into the experiment-wide tracker.
fn run_join(t: &Table, ids: &[i64], strategy: &str, obs: &ExperimentObs) -> (f64, f64) {
    let start = std::time::Instant::now();
    let mut ctx = ExecContext::new();
    let rows = match strategy {
        "hash" => {
            let build = Box::new(Values::ints("rid", ids.to_vec()));
            let probe = Box::new(SeqScan::new(t));
            let mut join = HashJoin::new(build, probe, 0, 0);
            join.collect(&mut ctx).unwrap()
        }
        "merge" => {
            let left = Box::new(Values::ints("rid", ids.to_vec()));
            let right = Box::new(SeqScan::new(t));
            let mut join = MergeJoin::new(left, right, 0, 0);
            join.collect(&mut ctx).unwrap()
        }
        "inl" => {
            let outer = Box::new(Values::ints("rid", ids.to_vec()));
            let mut join = IndexNestedLoopJoin::new(outer, t, "rid_ix", 0).unwrap();
            join.collect(&mut ctx).unwrap()
        }
        _ => unreachable!(),
    };
    assert_eq!(rows.len(), ids.len());
    obs.registry.observe_duration(
        &format!("fig5_7.join_{strategy}.latency_us"),
        start.elapsed(),
    );
    obs.tracker.borrow_mut().absorb(&ctx.tracker);
    (
        ctx.tracker.total(&ctx.model),
        measured_cost(&ctx.tracker, &ctx.model),
    )
}

/// Experiment-wide observability: every join's counters accumulate here
/// and land in `results/metrics_fig5_7_measured.json`.
struct ExperimentObs {
    registry: obs::Registry,
    tracker: std::cell::RefCell<CostTracker>,
}

fn winner(totals: &[f64; 3]) -> &'static str {
    let mut best = 0;
    for i in 1..3 {
        if totals[i] < totals[best] {
            best = i;
        }
    }
    STRATEGIES[best]
}

fn main() {
    bench::banner(
        "Fig 5.7 (measured): cost model vs buffer-pool reality",
        "Fig. 5.7(a–f) — join strategy × clustering under measured page I/O",
    );
    let rks = [20_000usize, 50_000, 100_000, 200_000, 300_000];
    let rlists = [1_000usize, 5_000, 20_000, 100_000];
    let mut mismatches = 0usize;
    let obs = ExperimentObs {
        registry: obs::Registry::new(),
        tracker: std::cell::RefCell::new(CostTracker::new()),
    };
    let mut pool_total = relstore::IoStats::default();
    for clustered in [true, false] {
        println!(
            "--- data table clustered on {}, pool = {POOL_FRAMES} frames ---",
            if clustered {
                "rid (a,b,c)"
            } else {
                "PK (d,e,f)"
            }
        );
        bench::header(&[
            "|Rk|",
            "|rlist|",
            "hash meas",
            "merge meas",
            "inl meas",
            "est win",
            "meas win",
        ]);
        for &rk in &rks {
            let t = build_table(rk, clustered);
            // Per-cell totals summed over the |rlist| sweep.
            let mut est_cell = [0.0f64; 3];
            let mut meas_cell = [0.0f64; 3];
            for &n in &rlists {
                if n > rk {
                    continue;
                }
                let ids = rlist(rk, n);
                let mut est = [0.0f64; 3];
                let mut meas = [0.0f64; 3];
                for (i, s) in STRATEGIES.iter().enumerate() {
                    let (e, m) = run_join(&t, &ids, s, &obs);
                    est[i] = e;
                    meas[i] = m;
                    est_cell[i] += e;
                    meas_cell[i] += m;
                }
                bench::row(&[
                    rk.to_string(),
                    ids.len().to_string(),
                    format!("{:.1}", meas[0]),
                    format!("{:.1}", meas[1]),
                    format!("{:.1}", meas[2]),
                    winner(&est).to_string(),
                    winner(&meas).to_string(),
                ]);
            }
            pool_total.absorb(&t.pool().stats());
            let (ew, mw) = (winner(&est_cell), winner(&meas_cell));
            println!(
                "    cell |Rk|={rk}: estimated winner = {ew}, measured winner = {mw}  {}",
                if ew == mw { "✓" } else { "✗ MISMATCH" }
            );
            if ew != mw {
                mismatches += 1;
            }
        }
        println!();
    }
    assert_eq!(
        mismatches, 0,
        "measured I/O disagreed with the analytic cost model on {mismatches} cell(s)"
    );
    println!("all (|Rk|, clustering) cells: measured winner matches analytic winner");
    pool_total.publish(&obs.registry);
    obs.tracker.borrow().publish(&obs.registry);
    match bench::write_metrics_snapshot("fig5_7_measured", &obs.registry) {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }
}
