//! Fig. 4.1 — comparison between the five data models on storage size (a),
//! commit time (b), and checkout time (c), over the scaled SCI_* datasets.
//!
//! Protocol (§4.2): load the full dataset, check out the latest version
//! into a materialized table, and commit it straight back as a new version.
//! We report wall-clock time for both operations plus the physical storage
//! footprint. Expected shape: a-table-per-version ≈ 10× storage of the
//! split models; combined-table and split-by-vlist commits are orders of
//! magnitude slower than split-by-rlist; delta-based checkout degrades with
//! chain depth while a-table-per-version checkout is minimal.

use bench::{dataset_to_cvd, load_model, ms, time};
use benchgen::{generate, DatasetSpec};
use orpheus_core::models::ModelKind;
use partition::Rid;
use relstore::ExecContext;

fn main() {
    bench::banner(
        "Fig 4.1: data model comparison",
        "Fig. 4.1(a,b,c) — storage / commit / checkout across five data models",
    );
    let specs = [
        DatasetSpec::sci("SCI_10K", 1000, 100, 10),
        DatasetSpec::sci("SCI_20K", 1000, 100, 20),
        DatasetSpec::sci("SCI_50K", 1000, 100, 50),
        DatasetSpec::sci("SCI_80K", 1000, 100, 80),
    ];
    bench::header(&[
        "dataset",
        "model",
        "storage MB",
        "commit ms",
        "sim cmt ms",
        "checkout ms",
        "sim co ms",
    ]);
    let registry = obs::Registry::new();
    let mut total_tracker = relstore::CostTracker::new();
    for spec in specs {
        let dataset = generate(&spec);
        let mut cvd = dataset_to_cvd(&dataset);
        let latest = cvd.latest_version();
        // The commit payload: the latest version checked out and committed
        // back unchanged (plus one modified row so the commit is not a
        // pure no-op for every model).
        let mut rows: Vec<relstore::Row> = cvd
            .checkout_rows(&[latest])
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        if let Some(first) = rows.first_mut() {
            first[1] = relstore::Value::Int64(-1);
        }
        let commit_res = cvd
            .commit(&[latest], rows, "recommit", "bench")
            .expect("commit");
        let new_rids: Vec<Rid> = {
            let total = cvd.num_records();
            ((total - commit_res.new_records)..total)
                .map(|i| Rid(i as u64))
                .collect()
        };

        for kind in ModelKind::all() {
            // Load everything *except* the final version; time its commit.
            let mut db = relstore::Database::new();
            let mut model = kind.build(cvd.name());
            model.init(&mut db, &cvd).unwrap();
            let mut seen: std::collections::HashSet<Rid> = Default::default();
            for v in cvd.graph().versions() {
                if v == commit_res.vid {
                    continue;
                }
                let rids = cvd.version_records(v).unwrap();
                let fresh: Vec<Rid> = rids.iter().copied().filter(|r| seen.insert(*r)).collect();
                model
                    .apply_commit(&mut db, &cvd, v, &fresh, &mut relstore::CostTracker::new())
                    .unwrap();
            }
            let mut commit_tracker = relstore::CostTracker::new();
            let (_, commit_t) = time(|| {
                model
                    .apply_commit(
                        &mut db,
                        &cvd,
                        commit_res.vid,
                        &new_rids,
                        &mut commit_tracker,
                    )
                    .unwrap()
            });
            // Checkout the (pre-commit) latest version.
            let mut ctx = ExecContext::new();
            let (out, checkout_t) = time(|| model.checkout(&db, &cvd, latest, &mut ctx).unwrap());
            assert_eq!(out.len(), cvd.version_records(latest).unwrap().len());
            registry.observe_duration("fig4_1.commit.latency_us", commit_t);
            registry.observe_duration("fig4_1.checkout.latency_us", checkout_t);
            total_tracker.absorb(&commit_tracker);
            total_tracker.absorb(&ctx.tracker);
            let storage_mb = model.storage_bytes(&db) as f64 / (1024.0 * 1024.0);
            bench::row(&[
                spec.name.clone(),
                kind.name().to_string(),
                format!("{storage_mb:.1}"),
                ms(commit_t),
                format!("{:.1}", commit_tracker.simulated_millis(&ctx.model)),
                ms(checkout_t),
                format!("{:.1}", ctx.tracker.simulated_millis(&ctx.model)),
            ]);
        }
        println!();
    }
    total_tracker.publish(&registry);
    match bench::write_metrics_snapshot("fig4_1_data_models", &registry) {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }
    // Reload helper kept warm for the linter.
    let _ = load_model;
}
