//! Fig. 5.14 / 5.15 — the benefit of partitioning: average checkout time
//! and storage size without partitioning vs LyreSplit at γ = 1.5|R| and
//! γ = 2|R|, on SCI_* and CUR_* datasets.
//!
//! Expected shape: with ≤2× storage, checkout time drops by 3–20× and the
//! reduction grows with dataset size; CUR reductions are smaller because
//! its versions are larger (|E|/|V| is the floor, Observation 5.1).

use bench::{dataset_to_cvd, sample_versions, time};
use benchgen::{generate, DatasetSpec};
use orpheus_core::models::ModelKind;
use orpheus_core::partitioned::PartitionedStore;
use partition::lyresplit_for_budget;
use relstore::ExecContext;

fn main() {
    bench::banner(
        "Fig 5.14 / 5.15: benefit of partitioning",
        "Fig. 5.14(a,b), 5.15(a,b) — checkout time and storage, with vs without partitioning",
    );
    let specs = [
        DatasetSpec::sci("SCI_10K", 1000, 100, 10),
        DatasetSpec::sci("SCI_50K", 1000, 100, 50),
        DatasetSpec::sci("SCI_100K", 2000, 200, 50),
        DatasetSpec::cur("CUR_10K", 1000, 100, 10),
        DatasetSpec::cur("CUR_50K", 1000, 100, 50),
    ];
    bench::header(&[
        "dataset",
        "scheme",
        "parts",
        "storage MB",
        "checkout ms",
        "speedup",
    ]);
    for spec in specs {
        let dataset = generate(&spec);
        let cvd = dataset_to_cvd(&dataset);
        let samples = sample_versions(cvd.num_versions(), 50);

        // Baseline: unpartitioned split-by-rlist.
        let (db, model) = bench::load_model(ModelKind::SplitByRlist, &cvd);
        let (_, t) = time(|| {
            for &v in &samples {
                let mut ctx = ExecContext::new();
                model.checkout(&db, &cvd, v, &mut ctx).expect("checkout");
            }
        });
        let base_ms = t.as_secs_f64() * 1e3 / samples.len() as f64;
        let base_mb = model.storage_bytes(&db) as f64 / (1024.0 * 1024.0);
        bench::row(&[
            spec.name.clone(),
            "no partition".into(),
            "1".into(),
            format!("{base_mb:.1}"),
            format!("{base_ms:.2}"),
            "1.0x".into(),
        ]);
        drop(db);

        let tree = cvd.tree();
        for factor in [1.5f64, 2.0] {
            let gamma = (factor * cvd.num_records() as f64) as u64;
            let res = lyresplit_for_budget(&tree, gamma);
            let mut pdb = relstore::Database::new();
            let store = PartitionedStore::build(&mut pdb, &cvd, res.partitioning).expect("build");
            let (_, t) = time(|| {
                for &v in &samples {
                    let mut ctx = ExecContext::new();
                    store.checkout(&pdb, v, &mut ctx).expect("checkout");
                }
            });
            let part_ms = t.as_secs_f64() * 1e3 / samples.len() as f64;
            let mb = store.storage_bytes(&pdb) as f64 / (1024.0 * 1024.0);
            bench::row(&[
                spec.name.clone(),
                format!("γ={factor}|R|"),
                store.partitioning().num_partitions().to_string(),
                format!("{mb:.1}"),
                format!("{part_ms:.2}"),
                format!("{:.1}x", base_ms / part_ms.max(1e-9)),
            ]);
        }
        println!();
    }
}
