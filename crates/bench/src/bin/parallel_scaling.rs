//! Morsel-driven parallel execution: checkout and version-query speedup.
//!
//! Runs the split-by-rlist checkout and a filtered version scan over the
//! SCI_100K dataset at 1/2/4/8 morsel workers and reports wall-clock
//! speedup over the sequential plans. Worker threads only do CPU work
//! (tuple decode, hash probes, predicate/projection evaluation); all page
//! I/O stays on the coordinator, which hands the workers **zero-copy page
//! leases** — the coordinator no longer materialises an owned snapshot of
//! every page before dispatch.
//!
//! Alongside raw wall clock (which only scales when the machine has the
//! cores — the CI container may have one), the binary *measures* the
//! serial fraction by timing the coordinator's page-lease pass alone, and
//! reports the projected speedup `T₁ / (T_io + (T₁ − T_io)/N)` that the
//! measured split supports — projected against **effective cores**
//! `min(threads, cores)`: more threads than cores cannot beat the cores,
//! and pretending otherwise made the old report claim 2.9× "projected" on
//! a 1-core box.
//!
//! Output rows must be identical at every worker count — the binary
//! asserts it, the same guarantee `orpheus-core`'s determinism tests pin
//! down at row level.
//!
//! Besides the human-readable table (`parallel_scaling.txt`), the binary
//! writes `parallel_scaling.json` with the deterministic zero-copy
//! counters (`bytes_copied_to_workers`, `morsel_allocs`) and the
//! wall-clock leg's outcome — *ran* with its measured speedup, or
//! *skipped* with the recorded reason — for `perf_gate` to assert.

use benchgen::{generate, DatasetSpec};
use obs::Json;
use orpheus_core::models::{load_cvd, SplitByRlist};
use orpheus_core::query::VersionedQuery;
use partition::Vid;
use relstore::{BinOp, Database, ExecContext, Expr, Row, Value, WorkerPool};
use std::fmt::Write as _;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock acceptance: checkout at this thread count must beat the
/// sequential run by this factor — asserted by the perf gate only when
/// the host has at least this many cores.
const WALL_LEG_THREADS: usize = 4;
const WALL_LEG_MIN_SPEEDUP: f64 = 2.0;

/// Repetitions per timing (best-of). `ORPHEUS_SCALING_REPS` overrides,
/// e.g. CI runs with 1 to keep the gate fast.
fn reps() -> usize {
    std::env::var("ORPHEUS_SCALING_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Best-of-N wall time for a closure that returns the produced rows.
fn best_of<F: FnMut() -> Vec<Row>>(mut f: F) -> (Vec<Row>, Duration) {
    let mut best: Option<(Vec<Row>, Duration)> = None;
    for _ in 0..reps() {
        let (rows, t) = bench::time(&mut f);
        if best.as_ref().map(|(_, b)| t < *b).unwrap_or(true) {
            best = Some((rows, t));
        }
    }
    best.unwrap()
}

fn main() {
    bench::banner(
        "parallel_scaling: morsel-driven checkout and version queries",
        "engine extension — work-stealing morsel parallelism over SCI_100K",
    );

    let d = generate(&DatasetSpec::sci("SCI_100K", 2000, 200, 50));
    let cvd = bench::dataset_to_cvd(&d);
    let mut db = Database::new();
    let mut model = SplitByRlist::new(cvd.name());
    load_cvd(&mut model, &mut db, &cvd).expect("load model");
    // Checkpoint the freshly loaded pages: leases are only granted on
    // clean frames, and the measured legs must run the zero-copy path.
    db.pool().flush_all().expect("flush");

    // Largest version = the heaviest checkout; the scan query filters the
    // same versions the checkout materializes.
    let target = cvd
        .graph()
        .versions()
        .max_by_key(|&v| cvd.version_records(v).map(|r| r.len()).unwrap_or(0))
        .unwrap_or(Vid(0));
    let data = db.table(&model.data_name()).expect("data table");
    let data_rows = data.live_row_count();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "dataset: |R|={} records in the data table, checkout target {} ({} records), {} core(s)\n",
        data_rows,
        target,
        cvd.version_records(target).map(|r| r.len()).unwrap_or(0),
        cores,
    );

    // The serial fraction: time the coordinator's page-lease pass on its
    // own (everything else runs on the workers).
    let (_, t_io) = best_of(|| {
        let mut tracker = relstore::CostTracker::new();
        let mut rows = 0usize;
        for ord in 0..data.num_heap_pages() {
            let view = data.lease_page(ord, &mut tracker).expect("lease");
            rows += view.tuples().map(|t| t.len()).unwrap_or(0);
        }
        vec![vec![Value::Int64(rows as i64)]]
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "parallel_scaling — SCI_100K (|R|={data_rows}), best of {} runs, {cores} core(s)",
        reps()
    );
    let _ = writeln!(
        out,
        "coordinator page-lease pass (serial fraction): {} ms",
        bench::ms(t_io)
    );
    let cols = [
        "threads",
        "checkout ms",
        "wall",
        "projected",
        "query ms",
        "wall",
        "projected",
    ];
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>8} {:>10} {:>14} {:>8} {:>10}",
        cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6]
    );
    bench::header(&cols);

    // Amdahl projection from the measured serial fraction: the lease pass
    // stays on the coordinator, the rest of the sequential time is
    // worker-parallel CPU — bounded by the cores the host actually has.
    let project = |t1: Duration, threads: usize| -> f64 {
        let n = threads.min(cores).max(1);
        let t1 = t1.as_secs_f64();
        let io = t_io.as_secs_f64().min(t1);
        t1 / (io + (t1 - io) / n as f64)
    };

    let io_before = db.io_stats();
    let mut base_checkout: Option<(Vec<Row>, Duration)> = None;
    let mut base_query: Option<(Vec<Row>, Duration)> = None;
    let mut wall4 = (0.0f64, 0.0f64);
    let mut proj4 = (0.0f64, 0.0f64);
    // Each parallel ParHashJoin run allocates one scratch row per worker;
    // the gate checks the measured morsel allocs against this budget.
    let mut alloc_budget = 0u64;
    for threads in THREAD_COUNTS {
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        if threads > cores {
            let msg = format!(
                "warning: {threads} threads > {cores} core(s) — wall clock cannot scale past \
                 the cores; projections use min(threads, cores)"
            );
            println!("{msg}");
            let _ = writeln!(out, "{msg}");
        }

        let (co_rows, co_t) = best_of(|| {
            let mut ctx = ExecContext::new();
            model
                .checkout_with_pool(&db, target, pool.as_ref(), &mut ctx)
                .expect("checkout")
        });

        // `a1 > 0` scans and filters every record of the target version.
        let predicate = Expr::Bin(
            BinOp::Gt,
            Box::new(Expr::col(2)),
            Box::new(Expr::Const(Value::Int64(0))),
        );
        let (q_rows, q_t) = best_of(|| {
            let q = VersionedQuery::new(&db, &cvd, &model).with_pool(pool.clone());
            let mut ctx = ExecContext::new();
            q.select_versions(&[target], Some(predicate.clone()), None, &mut ctx)
                .expect("select_versions")
                .rows
        });
        if threads > 1 {
            // checkout + query legs, `reps()` runs each, one ParHashJoin
            // scratch row per worker per run.
            alloc_budget += (threads * reps() * 2) as u64;
        }

        match (&base_checkout, &base_query) {
            (Some((rows, _)), Some((qrows, _))) => {
                assert_eq!(
                    &co_rows, rows,
                    "checkout rows diverged at {threads} threads"
                );
                assert_eq!(&q_rows, qrows, "query rows diverged at {threads} threads");
            }
            _ => {
                base_checkout = Some((co_rows, co_t));
                base_query = Some((q_rows, q_t));
            }
        }

        let co_wall =
            base_checkout.as_ref().unwrap().1.as_secs_f64() / co_t.as_secs_f64().max(1e-9);
        let q_wall = base_query.as_ref().unwrap().1.as_secs_f64() / q_t.as_secs_f64().max(1e-9);
        let co_proj = project(base_checkout.as_ref().unwrap().1, threads);
        let q_proj = project(base_query.as_ref().unwrap().1, threads);
        if threads == WALL_LEG_THREADS {
            wall4 = (co_wall, q_wall);
            proj4 = (co_proj, q_proj);
        }
        let cells = [
            threads.to_string(),
            bench::ms(co_t),
            format!("{co_wall:.2}x"),
            format!("{co_proj:.2}x"),
            bench::ms(q_t),
            format!("{q_wall:.2}x"),
            format!("{q_proj:.2}x"),
        ];
        bench::row(&cells);
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>8} {:>10} {:>14} {:>8} {:>10}",
            cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6]
        );
    }
    let io = db.io_stats().since(&io_before);

    println!(
        "\n4-thread speedup: checkout wall {:.2}x / projected {:.2}x, \
         filtered scan wall {:.2}x / projected {:.2}x",
        wall4.0, proj4.0, wall4.1, proj4.1
    );
    println!(
        "coordinator → worker copies: {} B, {} morsel allocs (budget {})",
        io.bytes_copied_to_workers, io.morsel_allocs, alloc_budget
    );
    let _ = writeln!(
        out,
        "\ncoordinator → worker copies: {} B, {} morsel allocs (budget {})",
        io.bytes_copied_to_workers, io.morsel_allocs, alloc_budget
    );

    // The wall-clock acceptance leg only means something with real cores;
    // on smaller machines it is RECORDED as skipped (never silently
    // dropped) and the deterministic counters above carry the gate.
    let wall_ran = cores >= WALL_LEG_THREADS;
    let skip_reason = if wall_ran {
        String::new()
    } else {
        format!(
            "host has {cores} core(s) < {WALL_LEG_THREADS} — wall-clock speedup needs real \
             parallelism; gated on zero-copy counters instead"
        )
    };
    if !wall_ran {
        println!("wall-clock leg skipped: {skip_reason}");
        let _ = writeln!(out, "wall-clock leg skipped: {skip_reason}");
    }

    let json = Json::object(vec![
        ("dataset", Json::Str("SCI_100K".into())),
        ("cores", Json::Num(cores as f64)),
        ("reps", Json::Num(reps() as f64)),
        (
            "zero_copy",
            Json::object(vec![
                (
                    "bytes_copied_to_workers",
                    Json::Num(io.bytes_copied_to_workers as f64),
                ),
                ("morsel_allocs", Json::Num(io.morsel_allocs as f64)),
                ("morsel_allocs_budget", Json::Num(alloc_budget as f64)),
            ]),
        ),
        (
            "wall_clock_leg",
            Json::object(vec![
                ("ran", Json::Bool(wall_ran)),
                ("skip_reason", Json::Str(skip_reason)),
                ("threads", Json::Num(WALL_LEG_THREADS as f64)),
                ("min_speedup", Json::Num(WALL_LEG_MIN_SPEEDUP)),
                ("checkout_speedup", Json::Num(wall4.0)),
                ("query_speedup", Json::Num(wall4.1)),
            ]),
        ),
        (
            "projected",
            Json::object(vec![
                ("checkout_at_4", Json::Num(proj4.0)),
                ("query_at_4", Json::Num(proj4.1)),
            ]),
        ),
    ]);
    let dir = bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create results dir: {e}");
    }
    let json_path = dir.join("parallel_scaling.json");
    match std::fs::write(&json_path, json.to_string_pretty()) {
        Ok(()) => println!("results: {}", json_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", json_path.display()),
    }
    match bench::write_text_result("parallel_scaling", &out) {
        Ok(path) => println!("results: {}", path.display()),
        Err(e) => eprintln!("warning: could not write results: {e}"),
    }
}
