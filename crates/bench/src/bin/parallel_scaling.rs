//! Morsel-driven parallel execution: checkout and version-query speedup.
//!
//! Runs the split-by-rlist checkout and a filtered version scan over the
//! SCI_100K dataset at 1/2/4/8 morsel workers and reports wall-clock
//! speedup over the sequential plans. Worker threads only do CPU work
//! (tuple decode, hash probes, predicate/projection evaluation); all page
//! I/O stays on the coordinator, so the curve flattens toward an
//! Amdahl-style bound.
//!
//! Alongside raw wall clock (which only scales when the machine has the
//! cores — the CI container may have one), the binary *measures* the
//! serial fraction by timing the coordinator's page-snapshot pass alone,
//! and reports the projected speedup `T₁ / (T_io + (T₁ − T_io)/N)` that
//! the measured split supports. The projected column is the
//! machine-independent acceptance number; the wall columns show what this
//! host actually achieved.
//!
//! Output rows must be identical at every worker count — the binary
//! asserts it, the same guarantee `orpheus-core`'s determinism tests pin
//! down at row level.

use benchgen::{generate, DatasetSpec};
use orpheus_core::models::{load_cvd, SplitByRlist};
use orpheus_core::query::VersionedQuery;
use partition::Vid;
use relstore::{BinOp, Database, ExecContext, Expr, Row, Value, WorkerPool};
use std::fmt::Write as _;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

/// Best-of-N wall time for a closure that returns the produced rows.
fn best_of<F: FnMut() -> Vec<Row>>(mut f: F) -> (Vec<Row>, Duration) {
    let mut best: Option<(Vec<Row>, Duration)> = None;
    for _ in 0..REPS {
        let (rows, t) = bench::time(&mut f);
        if best.as_ref().map(|(_, b)| t < *b).unwrap_or(true) {
            best = Some((rows, t));
        }
    }
    best.unwrap()
}

fn main() {
    bench::banner(
        "parallel_scaling: morsel-driven checkout and version queries",
        "engine extension — work-stealing morsel parallelism over SCI_100K",
    );

    let d = generate(&DatasetSpec::sci("SCI_100K", 2000, 200, 50));
    let cvd = bench::dataset_to_cvd(&d);
    let mut db = Database::new();
    let mut model = SplitByRlist::new(cvd.name());
    load_cvd(&mut model, &mut db, &cvd).expect("load model");

    // Largest version = the heaviest checkout; the scan query filters the
    // same versions the checkout materializes.
    let target = cvd
        .graph()
        .versions()
        .max_by_key(|&v| cvd.version_records(v).map(|r| r.len()).unwrap_or(0))
        .unwrap_or(Vid(0));
    let data = db.table(&model.data_name()).expect("data table");
    let data_rows = data.live_row_count();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "dataset: |R|={} records in the data table, checkout target {} ({} records), {} core(s)\n",
        data_rows,
        target,
        cvd.version_records(target).map(|r| r.len()).unwrap_or(0),
        cores,
    );

    // The serial fraction: time the coordinator's page-snapshot pass on
    // its own (everything else runs on the workers).
    let (_, t_io) = best_of(|| {
        let mut tracker = relstore::CostTracker::new();
        let mut rows = 0usize;
        for ord in 0..data.num_heap_pages() {
            let snap = data.snapshot_page(ord, &mut tracker).expect("snapshot");
            rows += snap.tuples().map(|t| t.len()).unwrap_or(0);
        }
        vec![vec![Value::Int64(rows as i64)]]
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "parallel_scaling — SCI_100K (|R|={data_rows}), best of {REPS} runs, {cores} core(s)"
    );
    let _ = writeln!(
        out,
        "coordinator page-snapshot pass (serial fraction): {} ms",
        bench::ms(t_io)
    );
    let cols = [
        "threads",
        "checkout ms",
        "wall",
        "projected",
        "query ms",
        "wall",
        "projected",
    ];
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>8} {:>10} {:>14} {:>8} {:>10}",
        cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6]
    );
    bench::header(&cols);

    // Amdahl projection from the measured serial fraction: the snapshot
    // pass stays on the coordinator, the rest of the sequential time is
    // worker-parallel CPU.
    let project = |t1: Duration, n: usize| -> f64 {
        let t1 = t1.as_secs_f64();
        let io = t_io.as_secs_f64().min(t1);
        t1 / (io + (t1 - io) / n as f64)
    };

    let mut base_checkout: Option<(Vec<Row>, Duration)> = None;
    let mut base_query: Option<(Vec<Row>, Duration)> = None;
    let mut speedup4 = (0.0f64, 0.0f64);
    for threads in THREAD_COUNTS {
        let pool = (threads > 1).then(|| WorkerPool::new(threads));

        let (co_rows, co_t) = best_of(|| {
            let mut ctx = ExecContext::new();
            model
                .checkout_with_pool(&db, target, pool.as_ref(), &mut ctx)
                .expect("checkout")
        });

        // `a1 > 0` scans and filters every record of the target version.
        let predicate = Expr::Bin(
            BinOp::Gt,
            Box::new(Expr::col(2)),
            Box::new(Expr::Const(Value::Int64(0))),
        );
        let (q_rows, q_t) = best_of(|| {
            let q = VersionedQuery::new(&db, &cvd, &model).with_pool(pool.clone());
            let mut ctx = ExecContext::new();
            q.select_versions(&[target], Some(predicate.clone()), None, &mut ctx)
                .expect("select_versions")
                .rows
        });

        match (&base_checkout, &base_query) {
            (Some((rows, _)), Some((qrows, _))) => {
                assert_eq!(
                    &co_rows, rows,
                    "checkout rows diverged at {threads} threads"
                );
                assert_eq!(&q_rows, qrows, "query rows diverged at {threads} threads");
            }
            _ => {
                base_checkout = Some((co_rows, co_t));
                base_query = Some((q_rows, q_t));
            }
        }

        let co_wall =
            base_checkout.as_ref().unwrap().1.as_secs_f64() / co_t.as_secs_f64().max(1e-9);
        let q_wall = base_query.as_ref().unwrap().1.as_secs_f64() / q_t.as_secs_f64().max(1e-9);
        let co_proj = project(base_checkout.as_ref().unwrap().1, threads);
        let q_proj = project(base_query.as_ref().unwrap().1, threads);
        if threads == 4 {
            speedup4 = (co_proj, q_proj);
        }
        let cells = [
            threads.to_string(),
            bench::ms(co_t),
            format!("{co_wall:.2}x"),
            format!("{co_proj:.2}x"),
            bench::ms(q_t),
            format!("{q_wall:.2}x"),
            format!("{q_proj:.2}x"),
        ];
        bench::row(&cells);
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>8} {:>10} {:>14} {:>8} {:>10}",
            cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6]
        );
    }

    println!(
        "\n4-thread projected speedup (measured serial fraction): checkout {:.2}x, filtered scan {:.2}x",
        speedup4.0, speedup4.1
    );
    match bench::write_text_result("parallel_scaling", &out) {
        Ok(path) => println!("results: {}", path.display()),
        Err(e) => eprintln!("warning: could not write results: {e}"),
    }
}
