//! Fig. 5.17 / 5.19 — online maintenance and migration: the current
//! checkout cost Cavg vs the best cost C*avg over a stream of commits, the
//! migrations triggered at tolerance factors µ, and intelligent-vs-naive
//! migration cost.
//!
//! Expected shape: Cavg diverges slowly from C*avg; smaller µ triggers more,
//! cheaper migrations; the intelligent migration strategy costs a fraction
//! (≈1/10 on average in the paper) of naive rebuilding.

use benchgen::{generate, DatasetSpec};
use partition::{OnlineConfig, OnlineEvent, OnlineMaintainer, Vid};

fn run_stream(mu: f64, gamma_factor: f64) {
    let spec = DatasetSpec::sci("SCI_STREAM", 1500, 150, 20);
    let dataset = generate(&spec);
    let mut m = OnlineMaintainer::new(OnlineConfig {
        gamma_factor,
        mu,
        delta_star: 0.02,
        check_every: 25,
    });
    let mut migrations = 0usize;
    let mut intelligent = 0u64;
    let mut naive = 0u64;
    let mut samples: Vec<(usize, f64, f64)> = Vec::new();
    for v in dataset.versions() {
        let parents: Vec<Vid> = dataset.graph.parents(v).to_vec();
        let events = m.commit(dataset.version_records(v).to_vec(), &parents);
        for e in events {
            if let OnlineEvent::Migrated { plan, .. } = e {
                migrations += 1;
                intelligent += plan.intelligent_cost;
                naive += plan.naive_cost;
            }
        }
        let n = v.idx() + 1;
        if n % 250 == 0 {
            samples.push((n, m.checkout_avg(), m.best_checkout_avg()));
        }
    }
    println!(
        "µ={mu:<4} γ={gamma_factor}|R|: {migrations} migrations; migration cost: \
         intelligent {intelligent} rec vs naive {naive} rec ({:.2}x cheaper)",
        naive as f64 / intelligent.max(1) as f64
    );
    for (n, cavg, best) in samples {
        println!(
            "    after {n:>5} commits: Cavg = {cavg:>10.0}  C*avg = {best:>10.0}  ratio {:.2}",
            cavg / best.max(1.0)
        );
    }
    println!();
}

fn main() {
    bench::banner(
        "Fig 5.17 / 5.19: online maintenance and migration",
        "Fig. 5.17(a,b), 5.19(a,b) — Cavg vs C*avg over streamed commits; migration cost",
    );
    for gamma in [1.5f64, 2.0] {
        println!("--- γ = {gamma}|R| ---");
        for mu in [1.05f64, 1.2, 1.5, 2.0, 2.5] {
            run_stream(mu, gamma);
        }
    }
}
