//! Fig. 5.8 — storage size vs checkout time frontier for LyreSplit, Agglo,
//! and KMeans on SCI and CUR datasets.
//!
//! Each point is one partitioning scheme (one parameter value: δ for
//! LyreSplit, capacity BC for Agglo, k for KMeans). We evaluate the exact
//! storage cost S = Σ|Rk| (records) and measure actual checkout time over a
//! sample of versions served from materialized partitions. Expected shape:
//! all curves fall then flatten with more storage; LyreSplit dominates.

use bench::{dataset_to_cvd, ms, sample_versions, time};
use benchgen::{generate, DatasetSpec};
use orpheus_core::partitioned::PartitionedStore;
use partition::{
    agglo_partition, kmeans_partition, lyresplit, AggloParams, KmeansParams, Partitioning,
};
use relstore::ExecContext;

fn checkout_time_ms(cvd: &orpheus_core::Cvd, p: Partitioning) -> (u64, f64, usize) {
    let mut db = relstore::Database::new();
    let store = PartitionedStore::build(&mut db, cvd, p).expect("build store");
    let storage = store.storage_records(&db);
    let parts = store.partitioning().num_partitions();
    let samples = sample_versions(cvd.num_versions(), 50);
    let (_, t) = time(|| {
        for &v in &samples {
            let mut ctx = ExecContext::new();
            store.checkout(&db, v, &mut ctx).expect("checkout");
        }
    });
    (storage, t.as_secs_f64() * 1e3 / samples.len() as f64, parts)
}

fn main() {
    bench::banner(
        "Fig 5.8: storage vs checkout-time frontier",
        "Fig. 5.8(a–f) — LyreSplit vs Agglo vs KMeans",
    );
    let specs = [
        DatasetSpec::sci("SCI_10K", 1000, 100, 10),
        DatasetSpec::sci("SCI_50K", 1000, 100, 50),
        DatasetSpec::cur("CUR_10K", 1000, 100, 10),
        DatasetSpec::cur("CUR_50K", 1000, 100, 50),
    ];
    for spec in specs {
        let dataset = generate(&spec);
        let cvd = dataset_to_cvd(&dataset);
        let tree = cvd.tree();
        let bipartite = cvd.bipartite();
        println!("--- {} ---", spec.name);
        bench::header(&["algorithm", "param", "parts", "S (records)", "checkout ms"]);

        for delta in [0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0] {
            let res = lyresplit(&tree, delta);
            let (s, t, parts) = checkout_time_ms(&cvd, res.partitioning);
            bench::row(&[
                "LyreSplit".into(),
                format!("δ={delta}"),
                parts.to_string(),
                s.to_string(),
                format!("{t:.2}"),
            ]);
        }
        let r = bipartite.num_records();
        for cap_factor in [8u64, 4, 2, 1] {
            let p = agglo_partition(
                &bipartite,
                AggloParams {
                    capacity: (r / cap_factor).max(1),
                    ..AggloParams::default()
                },
            );
            let (s, t, parts) = checkout_time_ms(&cvd, p);
            bench::row(&[
                "Agglo".into(),
                format!("BC=R/{cap_factor}"),
                parts.to_string(),
                s.to_string(),
                format!("{t:.2}"),
            ]);
        }
        for k in [2usize, 5, 10, 20] {
            let p = kmeans_partition(
                &bipartite,
                KmeansParams {
                    k,
                    iterations: 5,
                    ..KmeansParams::default()
                },
            );
            let (s, t, parts) = checkout_time_ms(&cvd, p);
            bench::row(&[
                "KMeans".into(),
                format!("k={k}"),
                parts.to_string(),
                s.to_string(),
                format!("{t:.2}"),
            ]);
        }
        let _ = ms(std::time::Duration::ZERO);
        println!();
    }
}
