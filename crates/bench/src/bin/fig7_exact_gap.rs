//! Chapter 7 heuristic quality (§7.5): optimality gap of LMG and MP
//! against the exact branch-and-bound solver on small instances (the
//! paper's ILP reference, §7.2.3).

use deltastore::exact::{solve_exact, ExactProblem};
use deltastore::lmg::{lmg_min_storage, lmg_min_sum_recreation};
use deltastore::mp::mp_min_storage;
use deltastore::spanning::{dijkstra_spt, min_storage_tree};
use deltastore::{GenConfig, GraphShape};

fn main() {
    bench::banner(
        "Ch. 7: heuristics vs exact solver",
        "§7.5 — optimality gap of LMG (P3/P5) and MP (P6) on 10-version instances",
    );
    bench::header(&["seed", "P5 gap", "P3 gap", "P6 gap"]);
    let mut worst = [1.0f64; 3];
    let mut sums = [0.0f64; 3];
    let seeds: Vec<u64> = (1..=10).collect();
    for &seed in &seeds {
        let g = GenConfig {
            versions: 10,
            shape: GraphShape::Random,
            base_items: 300,
            adds_per_step: 40,
            removes_per_step: 10,
            extra_edges: 20,
            directed: true,
            decouple_phi: false,
            seed,
        }
        .build();
        let spt = dijkstra_spt(&g);
        let mst = min_storage_tree(&g);

        let theta = spt.sum_recreation() * 3 / 2;
        let exact = solve_exact(&g, ExactProblem::MinStorageSumRecreation { theta }).unwrap();
        let p5_gap = lmg_min_storage(&g, theta).storage_cost() as f64 / exact.storage_cost() as f64;

        let beta = mst.storage_cost() * 3 / 2;
        let exact = solve_exact(&g, ExactProblem::MinSumRecreationStorage { beta }).unwrap();
        let p3_gap = lmg_min_sum_recreation(&g, beta).sum_recreation() as f64
            / exact.sum_recreation() as f64;

        let theta = spt.max_recreation() * 2;
        let exact = solve_exact(&g, ExactProblem::MinStorageMaxRecreation { theta }).unwrap();
        let p6_gap =
            mp_min_storage(&g, theta).unwrap().storage_cost() as f64 / exact.storage_cost() as f64;

        for (i, gap) in [p5_gap, p3_gap, p6_gap].into_iter().enumerate() {
            worst[i] = worst[i].max(gap);
            sums[i] += gap;
        }
        bench::row(&[
            seed.to_string(),
            format!("{p5_gap:.3}"),
            format!("{p3_gap:.3}"),
            format!("{p6_gap:.3}"),
        ]);
    }
    let n = seeds.len() as f64;
    println!();
    println!(
        "average gaps: P5 {:.3}, P3 {:.3}, P6 {:.3}; worst: P5 {:.3}, P3 {:.3}, P6 {:.3}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        worst[0],
        worst[1],
        worst[2],
    );
}
