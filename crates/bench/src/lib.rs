//! Shared experiment harness: dataset loading, timing, and table output.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); this library
//! holds the plumbing they share.

pub mod gate;

use benchgen::VersionedDataset;
use orpheus_core::cvd::Cvd;
use orpheus_core::models::{load_cvd, ModelKind, VersioningModel};
use partition::Vid;
use relstore::{Column, DataType, Database, Schema, Value};
use std::time::{Duration, Instant};

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Millisecond rendering with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Convert a generated benchmark dataset into a CVD by replaying every
/// version as a commit (the record manager re-derives rids under the
/// no-cross-version-diff rule; contents are identical so the structure
/// mirrors the generator's).
pub fn dataset_to_cvd(d: &VersionedDataset) -> Cvd {
    let mut cols = vec![Column::new("k", DataType::Int64)];
    for i in 1..d.spec.num_attrs {
        cols.push(Column::new(format!("a{i}"), DataType::Int64));
    }
    let schema = Schema::new(cols);
    let to_rows = |v: Vid| -> Vec<Vec<Value>> {
        d.version_records(v)
            .iter()
            .map(|&rid| d.record(rid).iter().map(|&x| Value::Int64(x)).collect())
            .collect()
    };
    let (mut cvd, _) = Cvd::init(
        d.spec.name.clone(),
        schema,
        vec!["k".into()],
        to_rows(Vid(0)),
        "generator",
    )
    .expect("init cvd");
    for v in d.versions().skip(1) {
        let parents: Vec<Vid> = d.graph.parents(v).to_vec();
        cvd.commit(&parents, to_rows(v), "replay", "generator")
            .expect("replay commit");
    }
    cvd
}

/// Load a CVD into a fresh database under the given physical model.
pub fn load_model(kind: ModelKind, cvd: &Cvd) -> (Database, Box<dyn VersioningModel>) {
    let mut db = Database::new();
    let mut model = kind.build(cvd.name());
    load_cvd(model.as_mut(), &mut db, cvd).expect("load model");
    (db, model)
}

/// Evenly spaced sample of `n` version ids (the paper samples 100 versions
/// per dataset for checkout timing).
pub fn sample_versions(num_versions: usize, n: usize) -> Vec<Vid> {
    let n = n.min(num_versions).max(1);
    (0..n).map(|i| Vid((i * num_versions / n) as u32)).collect()
}

/// Print a row of fixed-width columns.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Print a header row followed by a rule.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cells.len()));
}

/// Standard banner for experiment binaries.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("reproduces: {paper_ref}\n");
}

/// Directory experiment outputs land in: `$ORPHEUS_RESULTS_DIR` when set,
/// `results/` otherwise. CI points this at the git-ignored `results/ci/`
/// so gate runs never dirty the checked-in result files.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("ORPHEUS_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Write a metrics registry snapshot to `metrics_<name>.json` under
/// [`results_dir`] so every experiment run leaves a machine-readable
/// record next to its text output. Returns the path written.
pub fn write_metrics_snapshot(
    name: &str,
    registry: &obs::Registry,
) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("metrics_{name}.json"));
    std::fs::write(&path, registry.to_json().to_string_pretty())?;
    Ok(path)
}

/// Write an experiment's text table to `<name>.txt` under [`results_dir`].
pub fn write_text_result(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.txt"));
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::{generate, DatasetSpec};

    #[test]
    fn dataset_replay_preserves_structure() {
        let d = generate(&DatasetSpec::sci("T", 30, 5, 10));
        let cvd = dataset_to_cvd(&d);
        assert_eq!(cvd.num_versions(), d.num_versions());
        // Record counts match: replay reassigns rids but the dedup
        // structure is identical.
        assert_eq!(cvd.num_records() as u64, d.num_records());
        for v in d.versions() {
            assert_eq!(
                cvd.version_records(v).unwrap().len(),
                d.version_records(v).len(),
                "version {v} size mismatch"
            );
        }
    }

    #[test]
    fn sampling() {
        assert_eq!(sample_versions(10, 3), vec![Vid(0), Vid(3), Vid(6)]);
        assert_eq!(sample_versions(2, 5).len(), 2);
    }
}
