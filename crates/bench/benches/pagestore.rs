//! Criterion micro-benchmarks for the paged storage layer: slotted-page
//! operations, buffer-pool hit/miss paths, and heap scans that overflow
//! the pool (eviction + write-back churn).

use criterion::{criterion_group, criterion_main, Criterion};
use pagestore::{BufferPool, HeapFile, Page};
use std::hint::black_box;

fn bench_page_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("page");
    group.sample_size(20);
    group.bench_function("insert_until_full", |b| {
        let tuple = [7u8; 64];
        b.iter(|| {
            let mut page = Page::new();
            let mut n = 0u32;
            while page.insert(&tuple).is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.bench_function("scan_full_page", |b| {
        let mut page = Page::new();
        while page.insert(&[7u8; 64]).is_some() {}
        b.iter(|| {
            let total: usize = page.live_tuples().map(|(_, t)| t.len()).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    // 256 pages of data over pools on either side of the working set.
    let n_pages = 256u32;
    let build = |frames: usize| {
        let pool = BufferPool::in_memory(frames);
        for _ in 0..n_pages {
            let (_, mut page) = pool.allocate_pinned().unwrap();
            page.insert(&[1u8; 128]).unwrap_or(0);
        }
        pool
    };
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);
    group.bench_function("fetch_all_hits", |b| {
        let pool = build(n_pages as usize);
        b.iter(|| {
            let mut sum = 0usize;
            for id in 0..n_pages {
                sum += pool.fetch(id).unwrap().live_count();
            }
            black_box(sum)
        })
    });
    group.bench_function("fetch_with_eviction", |b| {
        let pool = build(n_pages as usize / 8);
        b.iter(|| {
            let mut sum = 0usize;
            for id in 0..n_pages {
                sum += pool.fetch(id).unwrap().live_count();
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.sample_size(10);
    group.bench_function("insert_10k_small_pool", |b| {
        b.iter(|| {
            let pool = BufferPool::in_memory(8);
            let mut heap = HeapFile::new();
            for i in 0..10_000u32 {
                heap.insert(&pool, &i.to_le_bytes()).unwrap();
            }
            black_box(heap.num_pages())
        })
    });
    group.bench_function("scan_larger_than_pool", |b| {
        let pool = BufferPool::in_memory(8);
        let mut heap = HeapFile::new();
        for i in 0..10_000u32 {
            heap.insert(&pool, &[i as u8; 64]).unwrap();
        }
        b.iter(|| {
            let mut tuples = 0usize;
            for ord in 0..heap.num_pages() {
                tuples += heap.tuples_on_page(&pool, ord).unwrap().len();
            }
            black_box(tuples)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_page_ops, bench_buffer_pool, bench_heap);
criterion_main!(benches);
