//! Commit-latency cost of crash safety: checkpointing a batch of dirty
//! pages through a file-backed pool **with** a write-ahead log (append +
//! fsync + write-back + truncate) versus the same pool **without** one
//! (plain write-back + fsync). The delta is the WAL overhead a durable
//! `commit` pays; EXPERIMENTS.md records the measured numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use pagestore::{BufferPool, FilePager, Wal};
use std::hint::black_box;
use std::path::PathBuf;

const DIRTY_PAGES: u32 = 64;
const POOL_FRAMES: usize = 128;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagestore-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Dirty `DIRTY_PAGES` pages (first run allocates them) so the following
/// `flush_all` has a full batch to write.
fn dirty_batch(pool: &BufferPool) {
    for id in 0..DIRTY_PAGES {
        if id < pool.num_pages() {
            pool.fetch_mut(id).unwrap().insert(&[0xAB; 64]).unwrap_or(0);
        } else {
            pool.allocate_pinned()
                .unwrap()
                .1
                .insert(&[0xAB; 64])
                .unwrap();
        }
    }
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_64_dirty_pages");
    group.sample_size(20);

    group.bench_function("file_pool_no_wal", |b| {
        let dir = scratch_dir("nowal");
        let pager = FilePager::open(dir.join("pages.db")).unwrap();
        let pool = BufferPool::new(Box::new(pager), POOL_FRAMES);
        b.iter(|| {
            dirty_batch(&pool);
            pool.flush_all().unwrap();
            black_box(pool.stats().flushed_writes)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function("file_pool_wal", |b| {
        let dir = scratch_dir("wal");
        let pager = FilePager::open(dir.join("pages.db")).unwrap();
        let wal = Wal::open_file(dir.join("wal.log")).unwrap();
        let pool = BufferPool::with_wal(Box::new(pager), wal, POOL_FRAMES);
        b.iter(|| {
            dirty_batch(&pool);
            pool.flush_all().unwrap();
            black_box(pool.stats().checkpoints)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

/// The end-to-end surface: a full OrpheusDB `commit` (checkout → modify →
/// commit) on an in-memory instance versus a durable one, so the WAL cost
/// is seen in proportion to the versioning work around it.
fn bench_commit_path(c: &mut Criterion) {
    use orpheus_core::{OrpheusDb, Vid};
    use relstore::{Column, DataType, Schema, Value};

    let rows: Vec<Vec<Value>> = (0..512)
        .map(|i| vec![Value::Int64(i), Value::Int64(i * 7)])
        .collect();
    let schema = || {
        Schema::new(vec![
            Column::new("id", DataType::Int64),
            Column::new("x", DataType::Int64),
        ])
    };
    let seed = |odb: &mut OrpheusDb| {
        odb.create_user("bench").unwrap();
        odb.login("bench").unwrap();
        odb.init_cvd("cvd", schema(), vec!["id".into()], rows.clone())
            .unwrap();
    };
    let commit_once = |odb: &mut OrpheusDb, i: i64| {
        let table = format!("w{i}");
        odb.checkout("cvd", &[Vid(0)], &table).unwrap();
        odb.staging_table_mut(&table)
            .unwrap()
            .insert(vec![Value::Int64(100_000 + i), Value::Int64(i)])
            .unwrap();
        black_box(odb.commit(&table, "bench").unwrap().vid)
    };

    let mut group = c.benchmark_group("orpheus_commit");
    group.sample_size(20);

    group.bench_function("in_memory", |b| {
        let mut odb = OrpheusDb::new();
        seed(&mut odb);
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            commit_once(&mut odb, i)
        })
    });

    group.bench_function("durable_wal", |b| {
        let dir = scratch_dir("commit");
        let (mut odb, _) = OrpheusDb::open_durable(&dir, 512).unwrap();
        seed(&mut odb);
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            commit_once(&mut odb, i)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint, bench_commit_path);
criterion_main!(benches);
