//! Criterion micro-benchmarks for the Chapter 7 solvers and the delta
//! encoder.

use criterion::{criterion_group, criterion_main, Criterion};
use deltastore::{
    p1_min_storage, p2_min_recreation, p3_min_sum_recreation, p5_min_storage_sum,
    p6_min_storage_max, Delta, GenConfig, GraphShape, VersionContent,
};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let g = GenConfig {
        versions: 300,
        shape: GraphShape::Random,
        extra_edges: 600,
        seed: 3,
        ..GenConfig::default()
    }
    .build();
    let mst = p1_min_storage(&g);
    let spt = p2_min_recreation(&g);

    let mut group = c.benchmark_group("deltastore_solvers");
    group.sample_size(10);
    group.bench_function("p1_arborescence", |b| {
        b.iter(|| black_box(p1_min_storage(&g)))
    });
    group.bench_function("p2_spt", |b| b.iter(|| black_box(p2_min_recreation(&g))));
    let beta = mst.storage_cost() * 2;
    group.bench_function("p3_lmg", |b| {
        b.iter(|| black_box(p3_min_sum_recreation(&g, beta)))
    });
    let theta_sum = spt.sum_recreation() * 2;
    group.bench_function("p5_lmg", |b| {
        b.iter(|| black_box(p5_min_storage_sum(&g, theta_sum)))
    });
    let theta_max = spt.max_recreation() * 2;
    group.bench_function("p6_mp", |b| {
        b.iter(|| black_box(p6_min_storage_max(&g, theta_max)))
    });
    group.finish();

    let base = VersionContent::new((0..50_000).collect(), 100);
    let target = VersionContent::new((5_000..55_000).collect(), 100);
    let mut group = c.benchmark_group("delta_encoding");
    group.bench_function("between_50k", |b| {
        b.iter(|| black_box(Delta::between(&base, &target)))
    });
    let d = Delta::between(&base, &target);
    group.bench_function("apply_50k", |b| b.iter(|| black_box(d.apply(&base))));
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
