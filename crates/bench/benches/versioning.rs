//! Criterion micro-benchmarks for the primitive versioning operations the
//! Chapter 4 figures are built from: per-model commit and checkout.

use bench::{dataset_to_cvd, load_model};
use benchgen::{generate, DatasetSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use orpheus_core::models::ModelKind;
use partition::Rid;
use relstore::ExecContext;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let dataset = generate(&DatasetSpec::sci("SCI_5K", 200, 20, 25));
    let mut cvd = dataset_to_cvd(&dataset);
    let latest = cvd.latest_version();
    let rows: Vec<relstore::Row> = cvd
        .checkout_rows(&[latest])
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let res = cvd.commit(&[latest], rows, "bench", "b").unwrap();
    let new_rids: Vec<Rid> = {
        let total = cvd.num_records();
        ((total - res.new_records)..total)
            .map(|i| Rid(i as u64))
            .collect()
    };

    let mut checkout = c.benchmark_group("checkout");
    checkout.sample_size(10);
    for kind in ModelKind::all() {
        let (db, model) = load_model(kind, &cvd);
        checkout.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new();
                black_box(model.checkout(&db, &cvd, latest, &mut ctx).unwrap())
            })
        });
    }
    checkout.finish();

    let mut commit = c.benchmark_group("commit");
    commit.sample_size(10);
    for kind in ModelKind::all() {
        commit.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    // Fresh store without the final version.
                    let mut db = relstore::Database::new();
                    let mut model = kind.build(cvd.name());
                    model.init(&mut db, &cvd).unwrap();
                    let mut seen: std::collections::HashSet<Rid> = Default::default();
                    for v in cvd.graph().versions() {
                        if v == res.vid {
                            continue;
                        }
                        let fresh: Vec<Rid> = cvd
                            .version_records(v)
                            .unwrap()
                            .iter()
                            .copied()
                            .filter(|r| seen.insert(*r))
                            .collect();
                        model
                            .apply_commit(
                                &mut db,
                                &cvd,
                                v,
                                &fresh,
                                &mut relstore::CostTracker::new(),
                            )
                            .unwrap();
                    }
                    (db, model)
                },
                |(mut db, mut model)| {
                    model
                        .apply_commit(
                            &mut db,
                            &cvd,
                            res.vid,
                            &new_rids,
                            &mut relstore::CostTracker::new(),
                        )
                        .unwrap();
                    // Return the store so its drop is not timed.
                    black_box((db, model))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    commit.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
