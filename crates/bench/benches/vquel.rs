//! Criterion micro-benchmarks for VQuel parsing and evaluation, and
//! provenance inference.

use criterion::{criterion_group, criterion_main, Criterion};
use provenance::{infer_lineage, synthesize, InferConfig, SynthConfig};
use std::hint::black_box;
use vquel::model::example_repository;
use vquel::{execute, parse};

fn bench_vquel(c: &mut Criterion) {
    let repo = example_repository();
    let query = r#"
        range of V is Version
        range of E is V.Relations(name = "Employee").Tuples
        retrieve V.commit_id
        where count(E.employee_id where E.last_name = "Smith") = 2
    "#;

    let mut g = c.benchmark_group("vquel");
    g.bench_function("parse", |b| b.iter(|| black_box(parse(query).unwrap())));
    g.bench_function("execute_aggregate", |b| {
        b.iter(|| black_box(execute(&repo, query).unwrap()))
    });
    g.finish();

    let w = synthesize(SynthConfig {
        derivations: 30,
        ..SynthConfig::default()
    });
    let mut g = c.benchmark_group("provenance");
    g.sample_size(10);
    g.bench_function("infer_30_artifacts", |b| {
        b.iter(|| black_box(infer_lineage(&w.repo, InferConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench_vquel);
criterion_main!(benches);
