//! Criterion micro-benchmarks for the Chapter 5 partitioners: LyreSplit vs
//! the NScale baselines, and partitioned checkout.

use bench::dataset_to_cvd;
use benchgen::{generate, DatasetSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use orpheus_core::partitioned::PartitionedStore;
use partition::{
    agglo_partition, kmeans_partition, lyresplit, lyresplit_for_budget, AggloParams, KmeansParams,
    Vid,
};
use relstore::ExecContext;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let dataset = generate(&DatasetSpec::sci("SCI_10K", 1000, 100, 10));
    let tree = dataset.tree();
    let bipartite = &dataset.bipartite;

    let mut g = c.benchmark_group("partitioning");
    g.sample_size(10);
    g.bench_function("lyresplit_delta_0.1", |b| {
        b.iter(|| black_box(lyresplit(&tree, 0.1)))
    });
    g.bench_function("lyresplit_budget_2R", |b| {
        b.iter(|| black_box(lyresplit_for_budget(&tree, 2 * dataset.num_records())))
    });
    g.bench_function("agglo", |b| {
        b.iter(|| black_box(agglo_partition(bipartite, AggloParams::default())))
    });
    g.bench_function("kmeans_k8", |b| {
        b.iter(|| {
            black_box(kmeans_partition(
                bipartite,
                KmeansParams {
                    iterations: 3,
                    ..KmeansParams::default()
                },
            ))
        })
    });
    g.finish();

    // Checkout through a partitioned store vs single partition.
    let cvd = dataset_to_cvd(&dataset);
    let res = lyresplit_for_budget(&tree, 2 * dataset.num_records());
    let mut db = relstore::Database::new();
    let store = PartitionedStore::build(&mut db, &cvd, res.partitioning).unwrap();
    let mut db_single = relstore::Database::new();
    let single = PartitionedStore::build(
        &mut db_single,
        &cvd,
        partition::Partitioning::single(cvd.num_versions()),
    )
    .unwrap();
    let v = Vid(cvd.num_versions() as u32 / 2);

    let mut g = c.benchmark_group("partitioned_checkout");
    g.sample_size(20);
    g.bench_function("lyresplit_partitions", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            black_box(store.checkout(&db, v, &mut ctx).unwrap())
        })
    });
    g.bench_function("single_partition", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            black_box(single.checkout(&db_single, v, &mut ctx).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
