//! Dataset specifications and summary statistics (Table 5.2).

use std::fmt;

/// Which benchmark workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Scientists branching for isolated analysis — version tree.
    Sci,
    /// Curated canonical dataset with branch-and-merge — version DAG.
    Cur,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Workload::Sci => "SCI",
            Workload::Cur => "CUR",
        })
    }
}

/// Generator parameters (Table 5.2 columns).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub name: String,
    pub workload: Workload,
    /// Target number of versions `|V|`.
    pub num_versions: usize,
    /// Number of branches `B`.
    pub branches: usize,
    /// Modifications (inserts or updates) per commit `I`.
    pub mods_per_commit: usize,
    /// Attributes per record; the first attribute is the primary key.
    /// The paper uses 100 4-byte integers; we default to 20.
    pub num_attrs: usize,
    pub seed: u64,
}

impl DatasetSpec {
    pub fn sci(
        name: impl Into<String>,
        num_versions: usize,
        branches: usize,
        mods_per_commit: usize,
    ) -> Self {
        DatasetSpec {
            name: name.into(),
            workload: Workload::Sci,
            num_versions,
            branches,
            mods_per_commit,
            num_attrs: 20,
            seed: 0x0_5C1,
        }
    }

    pub fn cur(
        name: impl Into<String>,
        num_versions: usize,
        branches: usize,
        mods_per_commit: usize,
    ) -> Self {
        DatasetSpec {
            name: name.into(),
            workload: Workload::Cur,
            num_versions,
            branches,
            mods_per_commit,
            num_attrs: 20,
            seed: 0x0_C04,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_attrs(mut self, num_attrs: usize) -> Self {
        assert!(num_attrs >= 1, "records need at least the key attribute");
        self.num_attrs = num_attrs;
        self
    }

    /// The scaled stand-ins for the paper's benchmark datasets
    /// (Table 5.2, divided by ~100 in record count — see EXPERIMENTS.md).
    pub fn presets() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::sci("SCI_10K", 1000, 100, 10),
            DatasetSpec::sci("SCI_20K", 1000, 100, 20),
            DatasetSpec::sci("SCI_50K", 1000, 100, 50),
            DatasetSpec::sci("SCI_80K", 1000, 100, 80),
            DatasetSpec::sci("SCI_100K", 2000, 200, 50),
            DatasetSpec::cur("CUR_10K", 1000, 100, 10),
            DatasetSpec::cur("CUR_50K", 1000, 100, 50),
            DatasetSpec::cur("CUR_100K", 2000, 200, 50),
        ]
    }

    /// The full-scale tier: 1M+ records across thousands of versions
    /// (|R| ≈ |V| × I), used by the storage/recreation frontier bench.
    /// Too large for the CI smoke gate — `frontier` runs these only when
    /// `ORPHEUS_FRONTIER_TIER=full` (see EXPERIMENTS.md).
    pub fn scale_presets() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::sci("SCI_1M", 4000, 400, 270),
            // CUR spends one version per cycle on a merge (which creates
            // no records), so it needs a higher I to clear 1M records.
            DatasetSpec::cur("CUR_1M", 4000, 400, 300),
        ]
    }
}

/// Realized dataset statistics — one row of Table 5.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    pub name: String,
    /// `|V|`
    pub versions: usize,
    /// `|R|` (distinct records)
    pub records: u64,
    /// `|E|` (version–record memberships)
    pub edges: u64,
    /// `B`
    pub branches: usize,
    /// `I`
    pub mods_per_commit: usize,
    /// `|R̂|` — records duplicated by the DAG→tree transform (CUR only).
    pub rhat: u64,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} |V|={:<6} |R|={:<9} |E|={:<10} B={:<5} I={:<5} |R̂|={}",
            self.name,
            self.versions,
            self.records,
            self.edges,
            self.branches,
            self.mods_per_commit,
            self.rhat
        )
    }
}
