//! The SCI/CUR dataset generators.

use crate::spec::{DatasetSpec, DatasetStats, Workload};
use partition::{Bipartite, Rid, VersionGraph, VersionTree, Vid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A generated versioned dataset: the version graph, the record membership
/// of every version, and the record payloads themselves.
#[derive(Debug, Clone)]
pub struct VersionedDataset {
    pub spec: DatasetSpec,
    pub graph: VersionGraph,
    pub bipartite: Bipartite,
    /// Record payloads indexed by `rid`: `num_attrs` integers, the first of
    /// which is the logical primary key.
    pub records: Vec<Vec<i64>>,
}

impl VersionedDataset {
    pub fn num_versions(&self) -> usize {
        self.graph.num_versions()
    }

    pub fn num_records(&self) -> u64 {
        self.records.len() as u64
    }

    /// Sorted record ids of a version.
    pub fn version_records(&self, v: Vid) -> &[Rid] {
        self.bipartite.records(v)
    }

    /// Record payload by rid.
    pub fn record(&self, r: Rid) -> &[i64] {
        &self.records[r.idx()]
    }

    /// The version tree (§5.3.1 transform if the graph has merges),
    /// with exact duplicated-record counts.
    pub fn tree(&self) -> VersionTree {
        self.graph.to_tree(Some(&self.bipartite))
    }

    /// One row of Table 5.2 for this dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.spec.name.clone(),
            versions: self.num_versions(),
            records: self.num_records(),
            edges: self.bipartite.num_edges(),
            branches: self.spec.branches,
            mods_per_commit: self.spec.mods_per_commit,
            rhat: self.tree().rhat,
        }
    }

    /// Version ids of the dataset in commit order.
    pub fn versions(&self) -> impl Iterator<Item = Vid> + '_ {
        self.graph.versions()
    }
}

/// Deterministic attribute payload for a record: `attrs[0]` is the entity
/// (primary) key; the rest are derived from the rid so that updated records
/// differ from their predecessors.
fn make_record(rid: u64, entity: i64, num_attrs: usize) -> Vec<i64> {
    let mut attrs = Vec::with_capacity(num_attrs);
    attrs.push(entity);
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
    for _ in 1..num_attrs {
        x ^= x >> 27;
        x = x.wrapping_mul(0x3C79AC492BA7B653);
        x ^= x >> 33;
        attrs.push((x % 10_000) as i64);
    }
    attrs
}

/// Mutable generation state.
struct GenState {
    rng: StdRng,
    records: Vec<Vec<i64>>,
    /// record set per version, sorted.
    version_records: Vec<Vec<Rid>>,
    graph: VersionGraph,
    next_entity: i64,
}

impl GenState {
    fn new(seed: u64) -> Self {
        GenState {
            rng: StdRng::seed_from_u64(seed),
            records: Vec::new(),
            version_records: Vec::new(),
            graph: VersionGraph::new(),
            next_entity: 0,
        }
    }

    fn new_record(&mut self, entity: i64, num_attrs: usize) -> Rid {
        let rid = Rid(self.records.len() as u64);
        self.records.push(make_record(rid.0, entity, num_attrs));
        rid
    }

    fn fresh_entity(&mut self) -> i64 {
        let e = self.next_entity;
        self.next_entity += 1;
        e
    }

    /// Register a version with the given sorted record set and parents;
    /// parent edge weights are computed exactly.
    fn add_version(&mut self, records: Vec<Rid>, parents: &[Vid]) -> Vid {
        debug_assert!(records.windows(2).all(|w| w[0] < w[1]));
        let edges: Vec<(Vid, u64)> = parents
            .iter()
            .map(|&p| {
                let w = partition::graph::intersect_count(&self.version_records[p.idx()], &records);
                (p, w)
            })
            .collect();
        let vid = self.graph.add_version(records.len() as u64, &edges);
        self.version_records.push(records);
        vid
    }

    /// Derive a child from `parent` with `mods` modifications split into
    /// (insert, update, delete) fractions. Updates replace a record with a
    /// new rid carrying the same entity key; deletes drop records; inserts
    /// add records for fresh entities.
    fn derive(
        &mut self,
        parent: Vid,
        mods: usize,
        fracs: (f64, f64, f64),
        num_attrs: usize,
    ) -> Vid {
        let (fi, fu, _fd) = fracs;
        let n_ins = (mods as f64 * fi).round() as usize;
        let n_upd = (mods as f64 * fu).round() as usize;
        let n_del = mods.saturating_sub(n_ins + n_upd);
        let mut working = self.version_records[parent.idx()].clone();

        // Deletes and updates pick distinct random positions in the parent.
        let mut victim_count = (n_upd + n_del).min(working.len());
        let mut victims: Vec<usize> = Vec::with_capacity(victim_count);
        {
            let mut seen = std::collections::HashSet::new();
            while victims.len() < victim_count {
                let i = self.rng.random_range(0..working.len());
                if seen.insert(i) {
                    victims.push(i);
                }
                if seen.len() == working.len() {
                    break;
                }
            }
            victim_count = victims.len();
        }
        victims.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
        let n_upd_eff = n_upd.min(victim_count);
        let mut updated_entities = Vec::with_capacity(n_upd_eff);
        for (k, &i) in victims.iter().enumerate() {
            let old = working.remove(i);
            if k < n_upd_eff {
                updated_entities.push(self.records[old.idx()][0]);
            }
        }
        let mut additions = Vec::with_capacity(n_ins + n_upd_eff);
        for e in updated_entities {
            additions.push(self.new_record(e, num_attrs));
        }
        for _ in 0..n_ins {
            let e = self.fresh_entity();
            additions.push(self.new_record(e, num_attrs));
        }
        working.extend(additions);
        working.sort_unstable();
        self.add_version(working, &[parent])
    }

    /// Union two versions' records with primary-key precedence: records of
    /// `first` win over records of `second` with the same entity key
    /// (§3.3.1's precedence-based merge).
    fn merge_records(&self, first: Vid, second: Vid) -> Vec<Rid> {
        let mut by_entity: HashMap<i64, Rid> = HashMap::new();
        for &r in &self.version_records[second.idx()] {
            by_entity.insert(self.records[r.idx()][0], r);
        }
        for &r in &self.version_records[first.idx()] {
            by_entity.insert(self.records[r.idx()][0], r);
        }
        let mut out: Vec<Rid> = by_entity.into_values().collect();
        out.sort_unstable();
        out
    }
}

/// Generate a dataset from its spec.
pub fn generate(spec: &DatasetSpec) -> VersionedDataset {
    match spec.workload {
        Workload::Sci => generate_sci(spec),
        Workload::Cur => generate_cur(spec),
    }
}

/// SCI: a mainline chain plus branches forked from random existing
/// versions (mainline or branch). Mainline commits mostly insert; branch
/// commits mostly update.
fn generate_sci(spec: &DatasetSpec) -> VersionedDataset {
    let mut st = GenState::new(spec.seed);
    let i = spec.mods_per_commit.max(1);

    // Root version: I fresh records.
    let mut root_records = Vec::with_capacity(i);
    for _ in 0..i {
        let e = st.fresh_entity();
        root_records.push(st.new_record(e, spec.num_attrs));
    }
    root_records.sort_unstable();
    let root = st.add_version(root_records, &[]);

    // Mainline: one commit per branch point, roughly.
    let mainline_len = (spec.num_versions / spec.branches.max(1)).clamp(2, spec.num_versions);
    let mut mainline = vec![root];
    for _ in 1..mainline_len {
        let tip = *mainline.last().unwrap();
        let v = st.derive(tip, i, (0.85, 0.13, 0.02), spec.num_attrs);
        mainline.push(v);
    }

    // Branches: fork from a uniformly random existing version; branch
    // commits mostly update (isolated analysis).
    while st.graph.num_versions() < spec.num_versions {
        let remaining = spec.num_versions - st.graph.num_versions();
        let avg_branch = ((spec.num_versions - mainline_len) / spec.branches.max(1)).max(1);
        let len = remaining.min(1 + st.rng.random_range(0..(2 * avg_branch).max(1)));
        let fork = Vid(st.rng.random_range(0..st.graph.num_versions() as u32));
        let mut tip = fork;
        for _ in 0..len {
            tip = st.derive(tip, i, (0.30, 0.65, 0.05), spec.num_attrs);
            if st.graph.num_versions() >= spec.num_versions {
                break;
            }
        }
    }

    finish(spec, st)
}

/// CUR: a canonical mainline that branches fork from and merge back into.
/// Most contributors fork from the canonical tip and merge straight back
/// (little divergence); occasionally a contributor works from a *stale*
/// canonical version, whose merge then re-introduces records the canonical
/// line evolved past — the source of the duplicated records `|R̂|` that the
/// paper reports at 7–10% of `|R|`.
fn generate_cur(spec: &DatasetSpec) -> VersionedDataset {
    let mut st = GenState::new(spec.seed);
    let i = spec.mods_per_commit.max(1);

    // Canonical root: larger initial dataset (contributors curate an
    // existing corpus), ~20 commits' worth of records.
    let initial = 20 * i;
    let mut root_records = Vec::with_capacity(initial);
    for _ in 0..initial {
        let e = st.fresh_entity();
        root_records.push(st.new_record(e, spec.num_attrs));
    }
    root_records.sort_unstable();
    let mut canonical = st.add_version(root_records, &[]);
    let mut previous_canonical = canonical;

    // Branch length such that B branches (each branch_len commits + one
    // merge) total num_versions.
    let cycle = (spec.num_versions / spec.branches.max(1)).max(2);
    let branch_len = cycle - 1;

    while st.graph.num_versions() + 1 < spec.num_versions {
        // ~12% of contributors work from a stale canonical version.
        let stale = st.rng.random_range(0..100u32) < 12 && previous_canonical != canonical;
        let fork = if stale { previous_canonical } else { canonical };
        let mut tip = fork;
        for _ in 0..branch_len {
            if st.graph.num_versions() + 1 >= spec.num_versions {
                break;
            }
            tip = st.derive(tip, i, (0.03, 0.92, 0.05), spec.num_attrs);
        }
        if tip == fork || st.graph.num_versions() >= spec.num_versions {
            break;
        }
        // Merge with branch precedence: the contributor's changes win on
        // primary-key conflicts (checkout -v tip, canonical; §3.3.1).
        let merged = st.merge_records(tip, canonical);
        previous_canonical = canonical;
        canonical = st.add_version(merged, &[canonical, tip]);
    }
    // The branch/merge cycle can stop one version short of the target when
    // the boundary falls mid-branch; pad with plain canonical commits.
    while st.graph.num_versions() < spec.num_versions {
        canonical = st.derive(canonical, i, (0.03, 0.92, 0.05), spec.num_attrs);
    }

    finish(spec, st)
}

fn finish(spec: &DatasetSpec, st: GenState) -> VersionedDataset {
    let mut bipartite = Bipartite::new(st.records.len() as u64);
    for records in st.version_records {
        bipartite.push_version(records);
    }
    VersionedDataset {
        spec: spec.clone(),
        graph: st.graph,
        bipartite,
        records: st.records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sci() -> VersionedDataset {
        generate(&DatasetSpec::sci("SCI_TEST", 100, 10, 20))
    }

    fn small_cur() -> VersionedDataset {
        generate(&DatasetSpec::cur("CUR_TEST", 100, 10, 20))
    }

    #[test]
    fn sci_is_a_tree() {
        let d = small_sci();
        assert_eq!(d.num_versions(), 100);
        assert!(!d.graph.has_merges());
        // Exactly one root.
        let roots = d
            .versions()
            .filter(|&v| d.graph.parents(v).is_empty())
            .count();
        assert_eq!(roots, 1);
        assert_eq!(d.tree().rhat, 0);
    }

    #[test]
    fn cur_is_a_dag_with_merges() {
        let d = small_cur();
        assert_eq!(d.num_versions(), 100);
        assert!(d.graph.has_merges());
        // R̂ is a modest fraction of |R| (the paper reports 7–10%).
        let rhat = d.tree().rhat;
        assert!(rhat > 0);
        assert!(
            (rhat as f64) < 0.35 * d.num_records() as f64,
            "rhat {} too large for |R| {}",
            rhat,
            d.num_records()
        );
    }

    #[test]
    fn record_count_tracks_v_times_i() {
        // |R| ≈ |V| × I under mostly-insert/update workloads.
        let d = small_sci();
        let expect = (100 * 20) as f64;
        let got = d.num_records() as f64;
        assert!(
            got > 0.5 * expect && got < 1.5 * expect,
            "|R| = {got}, expected ≈ {expect}"
        );
    }

    #[test]
    fn edge_weights_match_bipartite_intersections() {
        let d = small_sci();
        for v in d.versions() {
            for &p in d.graph.parents(v) {
                assert_eq!(
                    d.graph.weight(p, v),
                    d.bipartite.common_records(p, v),
                    "weight mismatch on edge ({p}, {v})"
                );
            }
        }
    }

    #[test]
    fn versions_respect_primary_key() {
        // Within any version, no two records share an entity key (§3.1).
        for d in [small_sci(), small_cur()] {
            for v in d.versions() {
                let mut keys: Vec<i64> = d
                    .version_records(v)
                    .iter()
                    .map(|&r| d.record(r)[0])
                    .collect();
                let n = keys.len();
                keys.sort_unstable();
                keys.dedup();
                assert_eq!(keys.len(), n, "duplicate pk in {v} of {}", d.spec.name);
            }
        }
    }

    #[test]
    fn updates_preserve_entity_keys() {
        let d = small_sci();
        // Some entity should appear under multiple rids (an update).
        let mut by_entity: std::collections::HashMap<i64, u32> = Default::default();
        for r in &d.records {
            *by_entity.entry(r[0]).or_insert(0) += 1;
        }
        assert!(by_entity.values().any(|&c| c > 1), "no updates generated");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&DatasetSpec::sci("A", 50, 5, 10));
        let b = generate(&DatasetSpec::sci("A", 50, 5, 10));
        assert_eq!(a.records, b.records);
        for v in a.versions() {
            assert_eq!(a.version_records(v), b.version_records(v));
        }
        let c = generate(&DatasetSpec::sci("A", 50, 5, 10).with_seed(99));
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn cur_merge_respects_precedence() {
        let d = small_cur();
        // For every merge node, each record comes from one of its parents
        // or… nothing else (merges create no fresh records).
        for v in d.versions() {
            let ps = d.graph.parents(v);
            if ps.len() < 2 {
                continue;
            }
            for &r in d.version_records(v) {
                let in_some_parent = ps
                    .iter()
                    .any(|&p| d.version_records(p).binary_search(&r).is_ok());
                assert!(in_some_parent, "merge {v} invented record {r}");
            }
        }
    }

    #[test]
    fn stats_row_is_consistent() {
        let d = small_sci();
        let s = d.stats();
        assert_eq!(s.versions, 100);
        assert_eq!(s.records, d.num_records());
        assert_eq!(s.edges, d.bipartite.num_edges());
        assert_eq!(s.rhat, 0);
    }
}
