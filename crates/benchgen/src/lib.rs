//! # benchgen — versioning benchmark workloads (§5.5.1)
//!
//! Re-implementation of the versioning benchmark of Maddox et al. (the
//! Decibel benchmark), from which the paper draws its `SCI_*` and `CUR_*`
//! datasets:
//!
//! * **SCI** simulates data scientists taking copies of an evolving dataset
//!   for isolated analysis: a mainline with branches forked at different
//!   points (from the mainline and from other branches). The version graph
//!   is a tree.
//! * **CUR** simulates a curated canonical dataset that contributors branch
//!   from and periodically merge back into. The version graph is a DAG.
//!
//! Parameters follow the paper's Table 5.2: number of versions `|V|`,
//! branches `B`, and modifications per commit `I` (inserts/updates from the
//! parent version). Records carry `num_attrs` integer attributes whose
//! first attribute is the logical primary key; updates produce a new record
//! (fresh `rid`) with the same primary key, per the immutable-record rule of
//! §3.1 and the no-cross-version-diff rule of §3.3.1.

// Index-based loops are kept where they mirror the paper's pseudocode
// (graph algorithms over parallel arrays).
#![allow(clippy::needless_range_loop)]

pub mod generator;
pub mod spec;

pub use generator::{generate, VersionedDataset};
pub use spec::{DatasetSpec, DatasetStats, Workload};
