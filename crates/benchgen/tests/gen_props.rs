//! Property-based tests: the SCI/CUR generators uphold the paper's
//! structural invariants for arbitrary parameters.

use benchgen::{generate, DatasetSpec, Workload};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = DatasetSpec> {
    (
        prop_oneof![Just(Workload::Sci), Just(Workload::Cur)],
        10usize..120, // versions
        2usize..12,   // branches
        2usize..30,   // mods per commit
        0u64..1000,   // seed
    )
        .prop_map(|(w, v, b, i, seed)| {
            let spec = match w {
                Workload::Sci => DatasetSpec::sci("P", v, b, i),
                Workload::Cur => DatasetSpec::cur("P", v, b, i),
            };
            spec.with_seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_invariants(spec in spec_strategy()) {
        let d = generate(&spec);
        // Exact version count.
        prop_assert_eq!(d.num_versions(), spec.num_versions);

        // Versions arrive in topological order; SCI graphs are trees.
        for v in d.versions() {
            for &p in d.graph.parents(v) {
                prop_assert!(p < v);
            }
            if spec.workload == Workload::Sci {
                prop_assert!(d.graph.parents(v).len() <= 1);
            }
        }

        // Every edge weight equals the true record intersection.
        for v in d.versions() {
            for &p in d.graph.parents(v) {
                prop_assert_eq!(d.graph.weight(p, v), d.bipartite.common_records(p, v));
            }
        }

        // Per-version primary keys are unique (§3.1).
        for v in d.versions() {
            let mut keys: Vec<i64> =
                d.version_records(v).iter().map(|&r| d.record(r)[0]).collect();
            let n = keys.len();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), n);
        }

        // Every record belongs to at least one version and payload width
        // matches the spec.
        let mut seen = vec![false; d.num_records() as usize];
        for v in d.versions() {
            for &r in d.version_records(v) {
                seen[r.idx()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert!(d.records.iter().all(|r| r.len() == spec.num_attrs));

        // Eq. 5.4 holds on the derived tree: |R| + |R̂| = Σ|R(v)| − Σw.
        let tree = d.tree();
        prop_assert_eq!(tree.num_records(), d.num_records() + tree.rhat);

        // CUR merges never invent records.
        for v in d.versions() {
            let ps = d.graph.parents(v);
            if ps.len() < 2 {
                continue;
            }
            for &r in d.version_records(v) {
                prop_assert!(ps
                    .iter()
                    .any(|&p| d.version_records(p).binary_search(&r).is_ok()));
            }
        }
    }
}
