fn main() {
    for spec in benchgen::DatasetSpec::presets() {
        let d = benchgen::generate(&spec);
        let s = d.stats();
        let ratio = s.rhat as f64 / s.records as f64 * 100.0;
        println!(
            "{s}   rhat/R = {ratio:.1}%   E/V = {:.0}",
            s.edges as f64 / s.versions as f64
        );
    }
}
