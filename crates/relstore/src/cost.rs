//! PostgreSQL-style cost accounting.
//!
//! The Chapter 5 experiments (notably Fig. 5.7, the checkout-cost-model
//! validation) depend on the *relationship* between the amount of data an
//! operator touches and the time it takes: sequential scans are linear in
//! pages read, index probes into an unclustered table cost a random page
//! each, and hundreds of thousands of random I/Os degrade into the
//! equivalent of a full sequential scan. We reproduce those relationships by
//! charging each operator with PostgreSQL's default cost constants and
//! reporting accumulated cost units alongside wall-clock time.
//!
//! Since the heap moved onto `pagestore`'s buffer pool, every tracker also
//! carries a [`measured`](CostTracker::measured) snapshot of *actual* page
//! traffic (logical reads, buffer misses, evictions, write-backs) diffed
//! from the pool around each table access — the estimated and measured
//! sides of the same operator can be compared directly.

use pagestore::IoStats;

/// Cost-model constants (PostgreSQL defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of reading one page sequentially (`seq_page_cost`).
    pub seq_page: f64,
    /// Cost of reading one page at a random location (`random_page_cost`).
    pub random_page: f64,
    /// CPU cost of processing one tuple (`cpu_tuple_cost`).
    pub cpu_tuple: f64,
    /// CPU cost of processing one index entry (`cpu_index_tuple_cost`).
    pub cpu_index_tuple: f64,
    /// CPU cost of one operator/function evaluation (`cpu_operator_cost`).
    pub cpu_operator: f64,
    /// Rows per heap page. With ~100 4-byte attributes the paper's rows are
    /// ≈400 bytes, ~20 per 8 KB page; our scaled rows (20 ints = 160 B) fit
    /// ~50 per page.
    pub rows_per_page: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page: 1.0,
            random_page: 4.0,
            cpu_tuple: 0.01,
            cpu_index_tuple: 0.005,
            cpu_operator: 0.0025,
            rows_per_page: 50,
        }
    }
}

/// Conversion used when experiments want a deterministic pseudo-time:
/// one cost unit ≈ this many simulated milliseconds. Calibrated so a
/// 1M-row sequential scan (20k pages) ≈ 2 simulated seconds, in the same
/// ballpark as the paper's measurements.
pub const RC_PER_COST_UNIT: f64 = 0.1;

/// Accumulates the raw I/O and CPU counters of executed operators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostTracker {
    /// Pages read sequentially.
    pub seq_pages: u64,
    /// Pages read at random offsets (index heap fetches on unclustered data).
    pub random_pages: u64,
    /// Tuples materialized/emitted by operators.
    pub tuples: u64,
    /// Index entries traversed.
    pub index_tuples: u64,
    /// Scalar operator evaluations (comparisons, hash probes, array ops).
    pub operator_evals: u64,
    /// Measured buffer-pool traffic for the operations charged above
    /// (filled in by `Table` heap accesses; zero for purely estimated use).
    pub measured: IoStats,
}

impl CostTracker {
    pub fn new() -> Self {
        CostTracker::default()
    }

    /// Record a sequential scan over `rows` rows.
    pub fn seq_scan(&mut self, rows: u64, model: &CostModel) {
        self.seq_pages += rows.div_ceil(model.rows_per_page as u64);
        self.tuples += rows;
    }

    /// Record `n` random heap fetches (one page each).
    pub fn random_fetches(&mut self, n: u64) {
        self.random_pages += n;
        self.tuples += n;
    }

    /// Record fetches of `n` rows that are physically clustered together,
    /// i.e. one initial seek plus a sequential run.
    pub fn clustered_fetches(&mut self, n: u64, model: &CostModel) {
        if n == 0 {
            return;
        }
        self.random_pages += 1;
        self.seq_pages += n.div_ceil(model.rows_per_page as u64).saturating_sub(1);
        self.tuples += n;
    }

    pub fn index_probes(&mut self, n: u64) {
        self.index_tuples += n;
    }

    pub fn ops(&mut self, n: u64) {
        self.operator_evals += n;
    }

    pub fn emit(&mut self, n: u64) {
        self.tuples += n;
    }

    /// Total cost in PostgreSQL cost units.
    pub fn total(&self, model: &CostModel) -> f64 {
        self.seq_pages as f64 * model.seq_page
            + self.random_pages as f64 * model.random_page
            + self.tuples as f64 * model.cpu_tuple
            + self.index_tuples as f64 * model.cpu_index_tuple
            + self.operator_evals as f64 * model.cpu_operator
    }

    /// Total cost assuming the CPU-side work is spread over `workers`
    /// morsel workers while the page I/O stays serial on the coordinator
    /// (the buffer pool is single-threaded). This is the Amdahl-style
    /// term the planner uses to cost a parallel scan: I/O terms are
    /// unchanged, CPU terms divide by the worker count.
    pub fn total_parallel(&self, model: &CostModel, workers: usize) -> f64 {
        let io =
            self.seq_pages as f64 * model.seq_page + self.random_pages as f64 * model.random_page;
        let cpu = self.tuples as f64 * model.cpu_tuple
            + self.index_tuples as f64 * model.cpu_index_tuple
            + self.operator_evals as f64 * model.cpu_operator;
        io + cpu / workers.max(1) as f64
    }

    /// Deterministic pseudo-milliseconds for this cost.
    pub fn simulated_millis(&self, model: &CostModel) -> f64 {
        self.total(model) * RC_PER_COST_UNIT
    }

    /// Estimated pages read (sequential + random), for comparison against
    /// `measured.logical_reads`.
    pub fn estimated_pages(&self) -> u64 {
        self.seq_pages + self.random_pages
    }

    /// Merge another tracker's counters into this one.
    pub fn absorb(&mut self, other: &CostTracker) {
        self.seq_pages += other.seq_pages;
        self.random_pages += other.random_pages;
        self.tuples += other.tuples;
        self.index_tuples += other.index_tuples;
        self.operator_evals += other.operator_evals;
        self.measured.absorb(&other.measured);
    }

    /// Publish the estimated counters into a metrics registry under
    /// `relstore.tracker.*`. Counters are *set* (not added), so
    /// republishing a cumulative tracker is idempotent. The `measured`
    /// side publishes through [`IoStats::publish`] on the pool's own
    /// cumulative stats instead, to avoid double counting.
    pub fn publish(&self, registry: &obs::Registry) {
        registry.counter_set("relstore.tracker.seq_pages", self.seq_pages);
        registry.counter_set("relstore.tracker.random_pages", self.random_pages);
        registry.counter_set("relstore.tracker.tuples", self.tuples);
        registry.counter_set("relstore.tracker.index_tuples", self.index_tuples);
        registry.counter_set("relstore.tracker.operator_evals", self.operator_evals);
    }

    /// Difference since an earlier snapshot. Saturates at zero so that a
    /// snapshot taken before a counter reset (e.g. the CLI's
    /// `stats reset`) diffs to nothing instead of panicking or wrapping.
    pub fn since(&self, earlier: &CostTracker) -> CostTracker {
        CostTracker {
            seq_pages: self.seq_pages.saturating_sub(earlier.seq_pages),
            random_pages: self.random_pages.saturating_sub(earlier.random_pages),
            tuples: self.tuples.saturating_sub(earlier.tuples),
            index_tuples: self.index_tuples.saturating_sub(earlier.index_tuples),
            operator_evals: self.operator_evals.saturating_sub(earlier.operator_evals),
            measured: self.measured.since(&earlier.measured),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_pages_round_up() {
        let m = CostModel::default();
        let mut t = CostTracker::new();
        t.seq_scan(51, &m);
        assert_eq!(t.seq_pages, 2);
        assert_eq!(t.tuples, 51);
    }

    #[test]
    fn random_vs_sequential_cost() {
        let m = CostModel::default();
        let mut rand = CostTracker::new();
        rand.random_fetches(1000);
        let mut seq = CostTracker::new();
        seq.seq_scan(1000, &m);
        // 1000 random fetches must cost far more than scanning 1000 rows.
        assert!(rand.total(&m) > 10.0 * seq.total(&m));
    }

    #[test]
    fn clustered_fetch_is_nearly_sequential() {
        let m = CostModel::default();
        let mut clustered = CostTracker::new();
        clustered.clustered_fetches(500, &m);
        let mut rand = CostTracker::new();
        rand.random_fetches(500);
        assert!(clustered.total(&m) < rand.total(&m) / 5.0);
    }

    #[test]
    fn parallel_total_divides_cpu_but_not_io() {
        let m = CostModel::default();
        let mut t = CostTracker::new();
        t.seq_scan(1000, &m); // 20 seq pages + 1000 tuples
        t.ops(4000);
        let serial = t.total(&m);
        let par4 = t.total_parallel(&m, 4);
        assert_eq!(t.total_parallel(&m, 1), serial);
        assert_eq!(t.total_parallel(&m, 0), serial, "workers clamp to one");
        assert!(par4 < serial);
        // The I/O floor survives any worker count.
        let io = t.seq_pages as f64 * m.seq_page;
        assert!(t.total_parallel(&m, 1_000_000) >= io);
    }

    #[test]
    fn absorb_and_since() {
        let mut a = CostTracker::new();
        a.ops(5);
        let snap = a;
        a.ops(7);
        assert_eq!(a.since(&snap).operator_evals, 7);
        let mut b = CostTracker::new();
        b.absorb(&a);
        assert_eq!(b.operator_evals, 12);
    }

    #[test]
    fn publish_exports_estimated_counters() {
        let m = CostModel::default();
        let mut t = CostTracker::new();
        t.seq_scan(100, &m);
        t.index_probes(4);
        let reg = obs::Registry::new();
        t.publish(&reg);
        assert_eq!(reg.counter("relstore.tracker.seq_pages"), 2);
        assert_eq!(reg.counter("relstore.tracker.tuples"), 100);
        assert_eq!(reg.counter("relstore.tracker.index_tuples"), 4);
        t.publish(&reg); // idempotent republish of the same snapshot
        assert_eq!(reg.counter("relstore.tracker.tuples"), 100);
    }

    /// Regression: diffing a fresh tracker against a snapshot from before
    /// a reset used unchecked `u64` subtraction — panic in debug, wrap in
    /// release. It must saturate to zero.
    #[test]
    fn since_saturates_across_a_reset() {
        let m = CostModel::default();
        let mut t = CostTracker::new();
        t.seq_scan(100, &m);
        t.random_fetches(5);
        t.index_probes(3);
        t.ops(9);
        t.measured.logical_reads = 11;
        let pre_reset_snapshot = t;
        let after_reset = CostTracker::new(); // counters zeroed
        let d = after_reset.since(&pre_reset_snapshot);
        assert_eq!(d.seq_pages, 0);
        assert_eq!(d.random_pages, 0);
        assert_eq!(d.tuples, 0);
        assert_eq!(d.index_tuples, 0);
        assert_eq!(d.operator_evals, 0);
        assert_eq!(d.measured, pagestore::IoStats::default());
        assert_eq!(d.total(&m), 0.0);
    }
}
