//! On-page tuple encoding.
//!
//! Tables store rows as byte tuples in `pagestore` heap files. A tuple is
//! self-describing so that a physical page scan can reconstruct rows
//! without consulting the table's in-memory directory:
//!
//! ```text
//! row_id   u64 LE     heap row id (stable until re-clustering)
//! count    u16 LE     number of values
//! values   count ×    tag u8, then tag-specific payload
//! ```
//!
//! Value payloads (all little-endian):
//!
//! | tag | type     | payload                      |
//! |-----|----------|------------------------------|
//! | 0   | Null     | none                         |
//! | 1   | Int64    | 8 bytes                      |
//! | 2   | Float64  | 8 bytes (IEEE-754 bits)      |
//! | 3   | Text     | u32 length + UTF-8 bytes     |
//! | 4   | Bool     | 1 byte (0/1)                 |
//! | 5   | IntArray | u32 count + count × 8 bytes  |

use crate::error::{Error, Result};
use crate::table::{Row, RowId};
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT64: u8 = 1;
const TAG_FLOAT64: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_INT_ARRAY: u8 = 5;

/// Serialize a row for heap storage.
pub fn encode_row(id: RowId, row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + row.len() * 9);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int64(x) => {
                out.push(TAG_INT64);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float64(x) => {
                out.push(TAG_FLOAT64);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
            Value::IntArray(a) => {
                out.push(TAG_INT_ARRAY);
                out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                for x in a {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos + n;
        if end > self.bytes.len() {
            return Err(Error::Storage("truncated tuple".into()));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Fixed-width field as an array; `take` already guarantees the
    /// width, so a mismatch can only mean a corrupt tuple.
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| Error::Storage("truncated tuple field".into()))
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }
}

/// Deserialize a heap tuple back into `(row_id, row)`.
pub fn decode_row(bytes: &[u8]) -> Result<(RowId, Row)> {
    let mut r = Reader { bytes, pos: 0 };
    let id = r.u64()?;
    let count = r.u16()? as usize;
    let mut row = Vec::with_capacity(count);
    for _ in 0..count {
        let v = match r.u8()? {
            TAG_NULL => Value::Null,
            TAG_INT64 => Value::Int64(r.i64()?),
            TAG_FLOAT64 => Value::Float64(f64::from_le_bytes(r.array()?)),
            TAG_TEXT => {
                let len = r.u32()? as usize;
                let s = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| Error::Storage("tuple text is not UTF-8".into()))?;
                Value::Text(s.to_owned())
            }
            TAG_BOOL => Value::Bool(r.u8()? != 0),
            TAG_INT_ARRAY => {
                let n = r.u32()? as usize;
                let mut a = Vec::with_capacity(n);
                for _ in 0..n {
                    a.push(r.i64()?);
                }
                Value::IntArray(a)
            }
            tag => return Err(Error::Storage(format!("unknown value tag {tag}"))),
        };
        row.push(v);
    }
    if r.pos != bytes.len() {
        return Err(Error::Storage("trailing bytes after tuple".into()));
    }
    Ok((id, row))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_type() {
        let row: Row = vec![
            Value::Int64(-7),
            Value::Float64(2.5),
            Value::Text("héllo, wörld".into()),
            Value::Bool(true),
            Value::IntArray(vec![1, -2, i64::MAX]),
            Value::Null,
            Value::Text(String::new()),
            Value::IntArray(vec![]),
        ];
        let bytes = encode_row(42, &row);
        let (id, back) = decode_row(&bytes).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, row);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let bytes = encode_row(1, &vec![Value::Int64(5)]);
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[10] = 99; // first value tag
        assert!(decode_row(&bad).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_row(&trailing).is_err());
    }

    #[test]
    fn truncation_inside_fixed_width_fields_is_a_typed_error() {
        // Cutting the buffer in the middle of an 8-byte value must surface
        // as Error::Storage, never as a slice/try_into panic.
        let bytes = encode_row(3, &vec![Value::Int64(0x0102_0304), Value::Float64(9.25)]);
        for cut in 1..bytes.len() {
            match decode_row(&bytes[..cut]) {
                Err(Error::Storage(_)) => {}
                other => panic!("cut at {cut}: expected Storage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for f in [0.0, -0.0, f64::MIN_POSITIVE, f64::NAN, 1.0 / 3.0] {
            let bytes = encode_row(0, &vec![Value::Float64(f)]);
            let (_, row) = decode_row(&bytes).unwrap();
            match row[0] {
                Value::Float64(g) => assert_eq!(f.to_bits(), g.to_bits()),
                _ => panic!("wrong type"),
            }
        }
    }
}
